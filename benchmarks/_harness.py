"""Shared plumbing for the benchmark suite.

Every bench regenerates one row-group of the paper's Table 1 (or one of
the two tradeoff-frontier figures implied by the theorems):

* it runs the relevant algorithm/experiment over a sweep,
* prints a paper-vs-measured table (visible with ``pytest -s``),
* writes the same table under ``benchmarks/results/`` so EXPERIMENTS.md
  can reference concrete artifacts,
* asserts the *shape* claims (fitted exponents, orderings, bound
  domination) — the benches double as end-to-end verification.

Wall-clock timing is taken once per bench via ``benchmark.pedantic`` —
the interesting output is the tables, not the timings, so we do not
re-run expensive sweeps for statistical timing confidence.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Optional

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(
    path: str,
    bench: str,
    metrics: Dict[str, float],
    *,
    smoke: bool,
    directions: Optional[Dict[str, str]] = None,
    info: Optional[Dict[str, object]] = None,
) -> None:
    """Write one ``BENCH_<name>.json`` trajectory artifact.

    ``metrics`` must be *seed-deterministic* quantities (message/round
    counts, rates) — ``benchmarks/check_regression.py`` compares them
    against the checked-in ``benchmarks/baselines/`` copy with a relative
    threshold.  ``directions`` marks metrics where higher is better
    (default: lower is better).  Machine-dependent observations (wall
    times) belong in ``info``, which the comparator ignores.
    """
    payload = {
        "bench": bench,
        "smoke": smoke,
        "metrics": metrics,
        "directions": directions or {},
        "info": info or {},
    }
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {target}")


def bench_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The sweeps inside benches are deterministic, so a single timed pass
    is representative; warmup/extra rounds would multiply multi-second
    sweeps for no informational gain.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
