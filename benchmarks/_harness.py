"""Shared plumbing for the benchmark suite.

Every bench regenerates one row-group of the paper's Table 1 (or one of
the two tradeoff-frontier figures implied by the theorems):

* it runs the relevant algorithm/experiment over a sweep,
* prints a paper-vs-measured table (visible with ``pytest -s``),
* writes the same table under ``benchmarks/results/`` so EXPERIMENTS.md
  can reference concrete artifacts,
* asserts the *shape* claims (fitted exponents, orderings, bound
  domination) — the benches double as end-to-end verification.

Wall-clock timing is taken once per bench via ``benchmark.pedantic`` —
the interesting output is the tables, not the timings, so we do not
re-run expensive sweeps for statistical timing confidence.
"""

from __future__ import annotations

import pathlib
from typing import Callable

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def bench_once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The sweeps inside benches are deterministic, so a single timed pass
    is representative; warmup/extra rounds would multiply multi-second
    sweeps for no informational gain.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
