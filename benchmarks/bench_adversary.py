"""Byzantine adversary sweeps — quorum resilience, split-brain, overhead.

Three sweeps over the adversary subsystem (``src/repro/adversary/``):

* **Quorum resilience**: ``quorum_reelect`` under ``f`` slander victims
  plus one real crash, on both object engines, for every admissible
  ``f`` (victims + crash stay below the majority line).  Every cell
  must end with a unique surviving leader — the acceptance bar "survives
  f < n/2 combined crash + slander adversaries".
* **Split-brain ablation**: the ``partition_heal`` scenario with and
  without ``QuorumPolicy`` gating.  With quorum the minority component
  elects nobody (split-brain metric exactly 0); without it the
  partition act mints one leader per component (metric >= 1).  This is
  the ROADMAP "majority-quorum variants suppress minority-component
  elections" item, measured.
* **Honest vs Byzantine overhead**: the S3 curve — the same election
  with and without a slander+forge adversary.  Byzantine runs must cost
  more (the extra epoch + quorum acks) but stay within a small constant
  factor: tolerating the adversary is a tax, not a blowup.

Run standalone (CI smoke): ``python benchmarks/bench_adversary.py --smoke``;
``--json PATH`` writes the BENCH_*.json trajectory artifact gated by
``check_regression.py`` against ``benchmarks/baselines/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.adversary import AdversaryPlan, SlanderWindow, TamperRule
from repro.analysis import Table
from repro.faults import CrashFault, DetectorSpec, FaultPlan, run_failover_trial
from repro.scenarios import ScenarioRunner, get_scenario

from _harness import bench_once, emit, emit_json

NS = [8, 16]
SEEDS = [0, 1, 2]
SMOKE_NS = [8, 12]
SMOKE_SEEDS = [0, 1]
ENGINES = ["sync", "async"]

#: Initial clique size of the split-brain ablation (odd: a 4/5 split has
#: a real majority side, so the quorum run still elects during the
#: partition window).
SPLIT_N = 9

#: Byzantine overhead must stay within this factor of the honest run.
MAX_OVERHEAD = 3.0


def _factory(engine, quorum=True):
    if engine == "sync":
        if quorum:
            from repro.adversary import QuorumReElectionElection

            return lambda: QuorumReElectionElection()
        from repro.faults import ReElectionElection

        return lambda: ReElectionElection()
    if quorum:
        from repro.adversary import AsyncQuorumReElectionElection

        return lambda: AsyncQuorumReElectionElection()
    from repro.faults import AsyncReElectionElection

    return lambda: AsyncReElectionElection()


def _trial(engine, n, plan, seed, quorum=True):
    kwargs = {}
    if engine == "async":
        kwargs["wake_times"] = {u: 0.0 for u in range(n)}
        kwargs["max_events"] = 20_000_000
    return run_failover_trial(
        engine, n, _factory(engine, quorum), plan, seed=seed, **kwargs
    )


def admissible_fs(n):
    """Slander-victim counts that keep (victims + 1 crash) below majority."""
    return [f for f in (1, n // 2 - 2) if f >= 1 and n - f - 1 >= n // 2 + 1]


def run_resilience(ns, seeds):
    """quorum_reelect vs f slander victims + 1 crash, both engines."""
    table = Table(
        ["engine", "n", "f", "converged", "mean msgs"],
        title="Quorum resilience: f slander victims + 1 crash (f + 1 < n/2)",
    )
    rows = []
    for engine in ENGINES:
        for n in ns:
            for f in admissible_fs(n):
                plan = FaultPlan(
                    crashes=(CrashFault(node=1, at=4.0),),
                    detector=DetectorSpec(kind="perfect", lag=1.0),
                    adversary=AdversaryPlan(
                        byzantine=(0,),
                        slanders=(
                            SlanderWindow(
                                accuser=0, victims=tuple(range(n - f, n)), start=2.0
                            ),
                        ),
                    ),
                )
                results = [_trial(engine, n, plan, seed) for seed in seeds]
                converged = sum(r.unique_surviving_leader for r in results)
                msgs = sum(r.record.messages for r in results) / len(results)
                rows.append((engine, n, f, converged, len(seeds), msgs))
                table.add_row(
                    engine, n, f, f"{converged}/{len(seeds)}", f"{msgs:.0f}"
                )
    return table, rows


def run_split_brain(seeds):
    """partition_heal with vs without quorum gating (the ablation)."""
    table = Table(
        ["gating", "split-brain acts", "partition leaders", "final agreed"],
        title=f"Split-brain ablation: partition_heal (n={SPLIT_N}, sync engine)",
    )
    rows = []
    for quorum in (True, False):
        split = 0
        partition_leaders = []
        agreed = 0
        for seed in seeds:
            result = ScenarioRunner(
                get_scenario("partition_heal", SPLIT_N), SPLIT_N,
                engine="sync", seed=seed, quorum=quorum,
            ).run()
            split += result.metrics.split_brain_acts
            agreed += result.metrics.final_agreed
            for epoch in result.epochs:
                if epoch.trigger == "partition":
                    partition_leaders.append(len(epoch.leader_ids))
        rows.append((quorum, split, tuple(partition_leaders), agreed, len(seeds)))
        table.add_row(
            "quorum" if quorum else "plain", split,
            "+".join(str(c) for c in partition_leaders),
            f"{agreed}/{len(seeds)}",
        )
    return table, rows


def run_overhead(ns, seeds):
    """Honest vs Byzantine message cost of quorum_reelect (S3 curve)."""
    table = Table(
        ["n", "honest msgs", "byzantine msgs", "overhead", "tampered"],
        title="Honest vs Byzantine overhead (sync quorum_reelect, slander+forge)",
    )
    rows = []
    for n in ns:
        detector = DetectorSpec(kind="perfect", lag=1.0)
        honest_plan = FaultPlan(detector=detector)
        byz_plan = FaultPlan(
            detector=detector,
            adversary=AdversaryPlan(
                byzantine=(0,),
                tampers=(TamperRule(mode="forge", kinds=("compete",)),),
                slanders=(SlanderWindow(accuser=0, victims=(n - 1,), start=2.0),),
            ),
        )
        h_msgs, b_msgs, tampered = [], [], 0
        converged = True
        for seed in seeds:
            honest = _trial("sync", n, honest_plan, seed)
            byz = _trial("sync", n, byz_plan, seed)
            converged &= honest.unique_surviving_leader
            converged &= byz.unique_surviving_leader
            h_msgs.append(honest.record.messages)
            b_msgs.append(byz.record.messages)
            fm = byz.record.extra["result"].fault_metrics
            tampered += fm.tampered_messages if fm else 0
        hm = sum(h_msgs) / len(h_msgs)
        bm = sum(b_msgs) / len(b_msgs)
        rows.append((n, hm, bm, bm / max(hm, 1.0), tampered, converged))
        table.add_row(n, f"{hm:.0f}", f"{bm:.0f}", f"{bm / max(hm, 1.0):.2f}x", tampered)
    return table, rows


def check(resilience_rows, split_rows, overhead_rows):
    # Every resilience cell converged on every seed, both engines.
    for engine, n, f, converged, total, _msgs in resilience_rows:
        assert converged == total, (engine, n, f, converged, total)
    # Quorum gating: split brain exactly 0, partition acts elect once;
    # plain wrapper: the partition act really splits (2 leaders).
    for quorum, split, partition_leaders, agreed, total in split_rows:
        if quorum:
            assert split == 0, split
            assert all(c == 1 for c in partition_leaders), partition_leaders
        else:
            assert split >= 1, split
            assert all(c == 2 for c in partition_leaders), partition_leaders
        assert agreed == total, (quorum, agreed, total)
    # Byzantine overhead exists but is bounded.
    for n, hm, bm, overhead, tampered, converged in overhead_rows:
        assert converged, n
        assert tampered > 0, n
        assert bm > hm, (n, hm, bm)
        assert overhead <= MAX_OVERHEAD, (n, overhead)


def metrics_from(resilience_rows, split_rows, overhead_rows):
    """Seed-deterministic metrics (+ directions) for the regression gate."""
    metrics = {}
    directions = {}
    for engine, n, f, converged, total, msgs in resilience_rows:
        key = f"resilience/{engine}/n={n}/f={f}"
        metrics[f"{key}/messages"] = msgs
        metrics[f"{key}/converged"] = converged / total
        directions[f"{key}/converged"] = "higher"
    for quorum, split, _partition_leaders, agreed, total in split_rows:
        key = f"split_brain/{'quorum' if quorum else 'plain'}"
        metrics[f"{key}/acts"] = split
        metrics[f"{key}/agreed"] = agreed / total
        directions[f"{key}/agreed"] = "higher"
    for n, hm, bm, overhead, _tampered, _converged in overhead_rows:
        metrics[f"overhead/n={n}/honest_messages"] = hm
        metrics[f"overhead/n={n}/byzantine_messages"] = bm
        metrics[f"overhead/n={n}/ratio"] = round(overhead, 4)
    return metrics, directions


def run_all(ns, seeds):
    r_table, r_rows = run_resilience(ns, seeds)
    s_table, s_rows = run_split_brain(seeds)
    o_table, o_rows = run_overhead(ns, seeds)
    text = "\n\n".join([r_table.render(), s_table.render(), o_table.render()])
    return text, r_rows, s_rows, o_rows


def test_bench_adversary(benchmark):
    text, r_rows, s_rows, o_rows = bench_once(benchmark, lambda: run_all(NS, SEEDS))
    emit("adversary", text)
    check(r_rows, s_rows, o_rows)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    ns = SMOKE_NS if args.smoke else NS
    seeds = SMOKE_SEEDS if args.smoke else SEEDS
    text, r_rows, s_rows, o_rows = run_all(ns, seeds)
    print(text)
    check(r_rows, s_rows, o_rows)
    if args.json:
        metrics, directions = metrics_from(r_rows, s_rows, o_rows)
        emit_json(args.json, "adversary", metrics,
                  smoke=args.smoke, directions=directions)
    print("OK: quorum_reelect survived every f < n/2 crash+slander cell, "
          "split-brain 0 under quorum gating, Byzantine overhead bounded")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
