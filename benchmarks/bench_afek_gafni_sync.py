"""T1.4 — Table 1 row "Algorithm [1]" (Afek–Gafni baseline, sync det).

Paper claim (for [1]): for any ``ℓ ≥ 2``, time ``ℓ`` and messages
``O(ℓ·n^(1 + 2/ℓ))``, under adversarial wake-up.

Reproduced shape:
* fitted exponent per ℓ matches ``1 + 2/ℓ``;
* head-to-head with Theorem 3.10 at equal round budgets: the improved
  algorithm sends strictly fewer messages, with the gap growing as a
  power of n (the paper's §3.3 comparison).
"""

from repro.analysis import Table, fit_power_law, sweep_sync
from repro.core import AfekGafniElection, ImprovedTradeoffElection
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import bounds

from _harness import bench_once, emit

NS = [256, 512, 1024, 2048]
ELLS = [4, 6, 8]


def ids_for_n(n, rng):
    return assign_random(tradeoff_universe(n), n, rng)


def run_sweep():
    table = Table(
        ["ell", "n", "rounds", "messages", "paper bound", "thm310 same-odd-ell msgs"],
        title="Afek-Gafni [1] baseline vs Theorem 3.10 (same round budget)",
    )
    fits = {}
    for ell in ELLS:
        records = sweep_sync(
            NS,
            lambda n: (lambda: AfekGafniElection(ell=ell)),
            seeds=[0],
            ids_for_n=ids_for_n,
        )
        improved = sweep_sync(
            NS,
            lambda n: (lambda: ImprovedTradeoffElection(ell=ell + 1)),
            seeds=[0],
            ids_for_n=ids_for_n,
        )
        for r, imp in zip(records, improved):
            assert r.unique_leader and imp.unique_leader
            assert r.messages <= 3 * bounds.ag_messages(r.n, ell)
            table.add_row(
                ell, r.n, int(r.time), r.messages, bounds.ag_messages(r.n, ell), imp.messages
            )
        fit = fit_power_law([r.n for r in records], [r.messages for r in records])
        fits[ell] = (fit, records, improved)
        table.add_section(
            f"ell={ell}: fitted {fit}; theory exponent {1 + 2 / ell:.3f}"
        )
    return table, fits


def test_bench_afek_gafni(benchmark):
    table, fits = bench_once(benchmark, run_sweep)
    emit("afek_gafni_sync", table.render())
    for ell, (fit, records, improved) in fits.items():
        assert abs(fit.exponent - (1 + 2 / ell)) < 0.2, (ell, fit.exponent)
        # Theorem 3.10 with one extra round (odd ell+1) must beat AG at
        # every n — and the advantage must trend upward with n (integer
        # referee-count ceilings add small non-monotone wiggles, so we
        # compare the endpoints rather than demand strict monotonicity).
        ratios = [imp.messages / r.messages for r, imp in zip(records, improved)]
        assert all(ratio < 1.0 for ratio in ratios), (ell, ratios)
        assert ratios[-1] < ratios[0], (ell, ratios)
