"""T1.14 — Table 1 row "Algorithm, Theorem 5.14" (async AG, sim wake-up).

Paper claim: a deterministic asynchronous algorithm with ``O(log n)``
time (counted from the last spontaneous wake-up) and ``O(n log n)``
messages — answering Afek–Gafni's open problem about asynchronizing
their tradeoff without linear time.

Reproduced shape:
* unique leader on every run (deterministic safety);
* messages/(n·log2 n) bounded by a fixed constant across the sweep;
* unit-delay time grows like c·log2(n) with small c;
* correctness holds under the rushing and per-link adversaries too.
"""

import math

from repro.analysis import Table, fit_power_law, sweep_async
from repro.asyncnet import PerLinkDelayScheduler, RushScheduler, UnitDelayScheduler
from repro.core import AsyncAfekGafniElection
from repro.lowerbound import bounds

from _harness import bench_once, emit

NS = [256, 1024, 4096]


def simultaneous(n, rng):
    return {u: 0.0 for u in range(n)}


def run_sweep():
    table = Table(
        ["n", "messages", "n*log2(n)", "msgs ratio", "time", "log2(n)", "time ratio"],
        title="Theorem 5.14: asynchronous Afek-Gafni under simultaneous wake-up",
    )
    rows = []
    for n in NS:
        records = sweep_async(
            [n],
            lambda n_: AsyncAfekGafniElection,
            seeds=[0, 1],
            scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
            wake_times_for_n=simultaneous,
            max_events=8_000_000,
        )
        for r in records:
            assert r.unique_leader
        worst = max(records, key=lambda r: r.messages)
        nlogn = bounds.thm514_messages(n)
        table.add_row(
            n,
            worst.messages,
            nlogn,
            worst.messages / nlogn,
            worst.time,
            math.log2(n),
            worst.time / math.log2(n),
        )
        rows.append((n, worst))
    fit = fit_power_law(NS, [r.messages for _, r in rows])
    table.add_section(f"message fit: {fit} (theory: n log n, exponent ~1.0-1.2)")
    return table, rows, fit


def run_adversary_grid():
    n = 512
    table = Table(
        ["delay adversary", "unique leader", "messages", "time"],
        title=f"Theorem 5.14 under hostile delay schedulers (n={n})",
    )
    outcomes = []
    for name, make in (
        ("unit", lambda rng: UnitDelayScheduler()),
        ("rush", lambda rng: RushScheduler()),
        ("per-link", lambda rng: PerLinkDelayScheduler(rng)),
    ):
        records = sweep_async(
            [n],
            lambda n_: AsyncAfekGafniElection,
            seeds=[0, 1, 2],
            scheduler_for_n=lambda n_, rng, mk=make: mk(rng),
            wake_times_for_n=simultaneous,
            max_events=8_000_000,
        )
        ok = all(r.unique_leader for r in records)
        outcomes.append(ok)
        worst = max(records, key=lambda r: r.messages)
        table.add_row(name, ok, worst.messages, worst.time)
    return table, outcomes


def run_tradeoff_schedule():
    """§5.4's full tradeoff: K capture waves, O(K·n^(1+1/K)) messages."""
    n = 1024
    table = Table(
        ["K (waves)", "messages", "K*n^(1+1/K)", "time", "~4K+4"],
        title=f"Asynchronous Afek-Gafni general schedule at n={n}",
    )
    curve = []
    for K in (2, 3, 5, 8):
        records = sweep_async(
            [n],
            lambda n_: (lambda: AsyncAfekGafniElection(iterations=K)),
            seeds=[0, 1],
            scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
            wake_times_for_n=simultaneous,
            max_events=12_000_000,
        )
        for r in records:
            assert r.unique_leader
        worst = max(records, key=lambda r: r.messages)
        theory = K * n ** (1 + 1 / K)
        table.add_row(K, worst.messages, theory, worst.time, 4 * K + 4)
        curve.append((K, worst.messages, worst.time, theory))
    return table, curve


def test_bench_thm514(benchmark):
    table, rows, fit = bench_once(benchmark, run_sweep)
    emit("thm514_async_afek_gafni", table.render())
    for n, worst in rows:
        assert worst.messages <= 16 * bounds.thm514_messages(n), (n, worst.messages)
        assert worst.time <= 5 * math.log2(n) + 3, (n, worst.time)
    assert 0.95 <= fit.exponent <= 1.3, fit


def test_bench_thm514_tradeoff_schedule(benchmark):
    from repro.core import AsyncAfekGafniElection  # noqa: F811 (bench-local)

    table, curve = bench_once(benchmark, run_tradeoff_schedule)
    emit("thm514_tradeoff_schedule", table.render())
    msgs = [m for _K, m, _t, _th in curve]
    assert msgs == sorted(msgs, reverse=True), msgs  # fewer messages as K grows
    for K, measured, _time, theory in curve:
        assert measured <= 4 * theory, (K, measured, theory)


def test_bench_thm514_adversaries(benchmark):
    table, outcomes = bench_once(benchmark, run_adversary_grid)
    emit("thm514_delay_adversaries", table.render())
    assert all(outcomes)
