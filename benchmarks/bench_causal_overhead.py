"""Observability overhead guard — spooling must stay near-free.

PR 9's observability plane rides along with every sharded sweep: each
cell appends one JSON snapshot to a per-worker spool file, and the
collector (:func:`repro.obs.collect`) rebuilds the merged metrics from
the shards alone.  The durable side channel is only worth having if it
costs (almost) nothing, so this bench pins three budgets on a mixed
object-engine grid (the PR 7 parallel-sweep shape, sized so the sync
cells dominate and the per-cell file append is the only delta):

* **spool budget** (full mode): the spooled arm
  (``sweep(grid, spool_dir=...)``) stays within **15%** wall time of
  the identical unspooled sweep — one ``open``/``write`` per cell;
* **collector fidelity** (every mode, seed-deterministic, CI-gated):
  the report rebuilt from the spool shards alone must match the live
  parent registry *bit exactly* — record and message counters — so the
  regression gate fails on any skew (``spool/drift`` pins to 0);
* **causal shape** (every mode, seed-deterministic, CI-gated): the
  happens-before graph of the reference ``improved_tradeoff`` trace
  keeps its event/edge counts, maximum Lamport clock and critical-path
  round length — the exact-mode invariant ``round_length ==
  decide_round`` is asserted outright.

Wall-clock ratios are machine-dependent and go in the ungated ``info``
section; the gated ``metrics`` carry the drift count (always 0) plus
the workload's record/message totals and the causal-graph shape.

Run standalone::

    python benchmarks/bench_causal_overhead.py            # full grid
    python benchmarks/bench_causal_overhead.py --smoke    # CI-sized
    python benchmarks/bench_causal_overhead.py --smoke --json \
        bench-artifacts/BENCH_causal_overhead.json
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from _harness import bench_once, emit, emit_json

#: Full-mode wall-clock budget: spooled sweep vs identical unspooled one.
MAX_SPOOL_RATIO = 1.15

#: Interleaved timing repetitions per arm (median is reported).
FULL_REPS = 3
SMOKE_REPS = 1


def full_grid():
    from repro.analysis import RunSpec

    return [
        RunSpec(algorithm="improved_tradeoff", n=256, seeds=tuple(range(6)),
                params={"ell": 3}),
        RunSpec(algorithm="afek_gafni", n=256, seeds=tuple(range(4))),
        RunSpec(algorithm="las_vegas", n=128, seeds=tuple(range(4))),
    ]


def smoke_grid():
    from repro.analysis import RunSpec

    return [
        RunSpec(algorithm="improved_tradeoff", n=64, seeds=(0, 1),
                params={"ell": 3}),
        RunSpec(algorithm="afek_gafni", n=64, seeds=(0, 1)),
        RunSpec(algorithm="las_vegas", n=32, seeds=(0,)),
    ]


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_comparison(grid, *, workers: int, reps: int):
    """Unspooled vs spooled execution of one grid, plus causal shape."""
    from repro.analysis import Table, sweep
    from repro.obs import collect
    from repro.telemetry.metrics import MetricsRegistry

    off_times, on_times = [], []
    off_registry = None
    report = None
    reports = []
    with tempfile.TemporaryDirectory(prefix="bench-causal-") as tmp:
        # Interleave the arms so drift in machine load hits both.
        for rep in range(reps):
            off_registry = MetricsRegistry()
            t0 = time.perf_counter()
            sweep(grid, workers=workers, registry=off_registry)
            off_times.append(time.perf_counter() - t0)

            spool = os.path.join(tmp, f"spool-{rep}")
            t0 = time.perf_counter()
            sweep(grid, workers=workers, spool_dir=spool)
            on_times.append(time.perf_counter() - t0)
            report = collect(spool)
            reports.append(report.canonical_bytes())

    # Collector fidelity: the spool shards alone reproduce the live
    # parent's counters, and the canonical report is rep-stable.
    live = off_registry.as_dict()["counters"]
    canonical = report.canonical()["counters"]
    drift = abs(canonical.get("sweep.records", 0) - live.get("sweep.records", 0))
    drift += abs(
        canonical.get("sweep.messages", 0) - live.get("sweep.messages", 0)
    )
    drift += sum(blob != reports[0] for blob in reports[1:])

    off_s, on_s = _median(off_times), _median(on_times)
    ratio = on_s / off_s if off_s > 0 else float("inf")
    table = Table(
        ["arm", "wall s", "ratio", "cells", "records", "messages", "drift"],
        title=f"Spooling overhead, {workers} workers over {len(grid)} specs",
    )
    table.add_row("unspooled", f"{off_s:.3f}", "1.00x", report.cells,
                  live.get("sweep.records", 0), live.get("sweep.messages", 0),
                  "-")
    table.add_row("spooled", f"{on_s:.3f}", f"{ratio:.2f}x", report.cells,
                  report.records, report.messages, drift)
    result = {
        "off_s": off_s,
        "on_s": on_s,
        "ratio": ratio,
        "drift": drift,
        "records": report.records,
        "messages": report.messages,
        "workers": workers,
    }
    return table, result


def run_causal(n: int):
    """Graph the reference trace; its shape is seed-deterministic."""
    from repro.analysis import RunSpec, execute_spec
    from repro.telemetry import build_graph, critical_path, load_trace

    with tempfile.TemporaryDirectory(prefix="bench-causal-") as tmp:
        out = os.path.join(tmp, "trace.jsonl")
        execute_spec(
            RunSpec(algorithm="improved_tradeoff", n=n, seeds=(0,),
                    params={"ell": 3}, trace=out)
        )
        trace = load_trace(out)
    t0 = time.perf_counter()
    graph = build_graph(trace)
    path = critical_path(trace, graph)
    build_s = time.perf_counter() - t0
    assert path.round_length == path.decide_round, (
        "exact-mode critical path must span exactly the decide rounds",
        path.round_length, path.decide_round,
    )
    return {
        "n": n,
        "events": len(trace.events),
        "message_edges": len(graph.message_edges),
        "max_clock": max(graph.clocks),
        "round_length": path.round_length,
        "build_s": build_s,
    }


def check(result, *, require_budget: bool) -> None:
    assert result["drift"] == 0, (
        "spool-collected counters drifted from the live registry",
        result["drift"],
    )
    if require_budget:
        assert result["ratio"] <= MAX_SPOOL_RATIO, (
            f"spooled sweep must stay within {MAX_SPOOL_RATIO:.2f}x of the "
            f"unspooled arm; measured {result['ratio']:.2f}x "
            f"({result['on_s']:.2f}s vs {result['off_s']:.2f}s)"
        )


def metrics_from(result, causal):
    metrics = {
        "sweep/records": result["records"],
        "sweep/messages": result["messages"],
        "spool/drift": result["drift"],
        f"causal/n={causal['n']}/events": causal["events"],
        f"causal/n={causal['n']}/message_edges": causal["message_edges"],
        f"causal/n={causal['n']}/max_clock": causal["max_clock"],
        f"causal/n={causal['n']}/round_length": causal["round_length"],
    }
    info = {
        "wall_s": {"unspooled": result["off_s"], "spooled": result["on_s"]},
        "spool_ratio": result["ratio"],
        "graph_build_s": causal["build_s"],
        "workers": result["workers"],
        "cpu_count": os.cpu_count(),
    }
    return metrics, info


def test_bench_causal_overhead(benchmark):
    table, result = bench_once(
        benchmark,
        lambda: run_comparison(smoke_grid(), workers=2, reps=SMOKE_REPS),
    )
    emit("causal_overhead", table.render())
    check(result, require_budget=False)
    causal = run_causal(64)
    assert causal["round_length"] >= 1


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized grid")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for both arms (default: 2)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    grid = smoke_grid() if args.smoke else full_grid()
    reps = SMOKE_REPS if args.smoke else FULL_REPS
    table, result = run_comparison(grid, workers=args.workers, reps=reps)
    print(table.render())
    causal = run_causal(64 if args.smoke else 256)
    print(
        f"causal n={causal['n']}: {causal['events']} events, "
        f"{causal['message_edges']} message edges, max clock "
        f"{causal['max_clock']}, critical path {causal['round_length']} "
        f"rounds (graph built in {causal['build_s'] * 1e3:.1f}ms)"
    )
    # The spool budget is asserted on the full grid only — smoke cells
    # are too brief for the ratio to mean anything on shared CI boxes.
    check(result, require_budget=not args.smoke)
    if args.json:
        metrics, info = metrics_from(result, causal)
        emit_json(args.json, "causal_overhead", metrics, smoke=args.smoke,
                  info=info)
    print(f"OK: spool drift 0 at workers={result['workers']}; "
          f"measured spool ratio {result['ratio']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
