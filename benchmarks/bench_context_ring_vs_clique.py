"""Context bench (§1.2) — rings vs cliques, the related-work frame.

Not a Table 1 row, but the comparison the paper's introduction and §1.2
use to position the results:

* rings pay the Frederickson–Lynch Ω(n log n) message floor (our HS
  baseline realizes Θ(n log n); LCR degrades to Θ(n²) adversarially);
* cliques escape the generic Ω(m) bound — m = Θ(n²) links, yet
  Korach–Moran–Zaks style costs of O(n log n) and below are achievable,
  down to o(n log n) with a linear ID universe (Theorem 3.15).
"""

import math
import random

from repro.analysis import Table
from repro.core import ImprovedTradeoffElection, SmallIdElection
from repro.ids import assign_random, small_universe, tradeoff_universe
from repro.ring import ChangRoberts, HirschbergSinclair, RingNetwork
from repro.sync.engine import SyncNetwork

from _harness import bench_once, emit

NS = [128, 512, 2048]


def run_comparison():
    table = Table(
        ["n", "system", "messages", "n*log2(n)", "m = n(n-1)/2"],
        title="Rings vs cliques: the Section 1.2 positioning",
    )
    rows = []
    for n in NS:
        rng = random.Random(n)
        ids = assign_random(tradeoff_universe(n), n, rng)
        nlogn = n * math.log2(n)
        m_edges = n * (n - 1) // 2

        lcr_adversarial = RingNetwork(
            n, ChangRoberts, ids=sorted(ids, reverse=True)
        ).run()
        hs = RingNetwork(n, HirschbergSinclair, ids=ids).run()
        clique = SyncNetwork(
            n, lambda: ImprovedTradeoffElection(ell=5), ids=ids, seed=0
        ).run()
        small_ids = assign_random(small_universe(n, 1), n, rng)
        small = SyncNetwork(
            n, lambda: SmallIdElection(d=2, g=1), ids=small_ids, seed=0
        ).run()

        for label, result in (
            ("ring LCR (adversarial order)", lcr_adversarial),
            ("ring Hirschberg-Sinclair", hs),
            ("clique Thm 3.10 (ell=5)", clique),
            ("clique Thm 3.15 (d=2, small IDs)", small),
        ):
            assert result.unique_leader
            table.add_row(n, label, result.messages, nlogn, m_edges)
        rows.append((n, lcr_adversarial, hs, clique, small, nlogn, m_edges))
        table.add_section(f"n={n}")
    return table, rows


def test_bench_ring_vs_clique(benchmark):
    table, rows = bench_once(benchmark, run_comparison)
    emit("context_ring_vs_clique", table.render())
    for n, lcr, hs, clique, small, nlogn, m_edges in rows:
        # Frederickson-Lynch floor is real on rings...
        assert hs.messages >= nlogn / 2
        assert lcr.messages >= n * (n - 1) // 2
        # ...while cliques go below m by a widening factor...
        assert clique.messages < m_edges / 2
        # ...and below n log n with a small ID universe.
        assert small.messages < nlogn
