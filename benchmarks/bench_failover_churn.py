"""Churn — failover under crash faults on both engines (faults subsystem).

The scenario axis the paper's Table 1 does not cover: the elected
coordinator is killed the moment it announces victory (an adversarial
:class:`~repro.faults.plan.LeaderKillPolicy`), and the cell must elect a
unique *surviving* replacement.  Swept here:

* the monarchical detector-driven election (cheap, membership-oracle),
* the epoch re-election wrapper around the paper's algorithms
  (``afek_gafni`` on the sync engine, ``async_tradeoff`` on the async
  engine) — the fast-path/recovery-path architecture,

over ``n`` on both engines, reporting measured detection latency,
re-election time, and post-crash message cost.  Shape assertions:

* every run ends with exactly one surviving leader (all seeds, all n);
* measured detection latency equals the configured perfect-detector lag
  on the sync engine and lands within one poll interval of it on the
  async engine;
* post-crash traffic of the re-election wrapper stays within a constant
  factor of a fresh run of the inner algorithm (the recovery path costs
  one more election, not more).

Run standalone (CI smoke): ``python benchmarks/bench_failover_churn.py --smoke``;
``--json PATH`` additionally writes the BENCH_*.json trajectory artifact
that ``check_regression.py`` gates against ``benchmarks/baselines/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Table
from repro.faults import (
    AsyncReElectionElection,
    AsyncMonarchicalElection,
    DetectorSpec,
    FaultPlan,
    LeaderKillPolicy,
    MonarchicalElection,
    ReElectionElection,
    run_failover_trial,
)

from _harness import bench_once, emit, emit_json

NS = [64, 128, 256]
SEEDS = list(range(5))
LAG = 1.0

SYNC_PLAN = FaultPlan(
    policies=(LeaderKillPolicy(delay=1.0, max_kills=1),),
    detector=DetectorSpec(kind="perfect", lag=LAG),
)
ASYNC_PLAN = FaultPlan(
    policies=(LeaderKillPolicy(delay=0.5, max_kills=1),),
    detector=DetectorSpec(kind="perfect", lag=LAG),
)

CONFIGS = [
    # (label, engine, factory, plan, trial kwargs)
    (
        "monarchical/sync",
        "sync",
        lambda: MonarchicalElection(stable_rounds=4),
        SYNC_PLAN,
        {},
    ),
    (
        "reelect(afek_gafni)/sync",
        "sync",
        lambda: ReElectionElection(inner="afek_gafni", commit_rounds=4),
        SYNC_PLAN,
        {},
    ),
    (
        "monarchical/async",
        "async",
        lambda: AsyncMonarchicalElection(poll_interval=0.5, stable_polls=6),
        ASYNC_PLAN,
        {"wake_all": True},
    ),
    (
        "reelect(async_tradeoff)/async",
        "async",
        lambda: AsyncReElectionElection(
            inner="async_tradeoff", commit_delay=4.0, poll_interval=0.5
        ),
        ASYNC_PLAN,
        {"wake_all": True},
    ),
]


def run_sweep(ns=NS, seeds=SEEDS):
    table = Table(
        [
            "config",
            "n",
            "survivor rate",
            "mean detect lat",
            "mean re-elect",
            "mean msgs",
            "mean after-crash",
        ],
        title="Churn: kill the frontrunner at its victory announcement",
    )
    rows = []
    for label, engine, factory, plan, opts in CONFIGS:
        for n in ns:
            reports = []
            for seed in seeds:
                kwargs = {}
                if engine == "async":
                    kwargs["wake_times"] = {u: 0.0 for u in range(n)}
                    kwargs["max_events"] = 20_000_000
                reports.append(
                    run_failover_trial(engine, n, factory, plan, seed=seed, **kwargs)
                )
            survivors = sum(r.unique_surviving_leader for r in reports) / len(reports)
            latencies = [
                lat for r in reports for lat in r.detection_latencies
            ]
            reelects = [
                r.reelection_time for r in reports if r.reelection_time is not None
            ]
            mean_lat = sum(latencies) / len(latencies) if latencies else float("nan")
            mean_reelect = sum(reelects) / len(reelects) if reelects else float("nan")
            mean_msgs = sum(r.record.messages for r in reports) / len(reports)
            mean_after = sum(
                r.messages_after_first_crash for r in reports
            ) / len(reports)
            rows.append(
                (label, engine, n, survivors, mean_lat, mean_reelect,
                 mean_msgs, mean_after)
            )
            table.add_row(
                label, n, survivors, mean_lat, mean_reelect, mean_msgs, mean_after
            )
    return table, rows


def check(rows) -> None:
    for label, engine, n, survivors, mean_lat, mean_reelect, _msgs, after in rows:
        # Failover correctness: a unique surviving leader, always.
        assert survivors == 1.0, (label, n, survivors)
        # The frontrunner was really killed and really replaced.
        assert mean_reelect == mean_reelect and mean_reelect > 0, (label, n)
        # Detection latency: the oracle lag, plus polling slack on async.
        if engine == "sync":
            assert mean_lat == LAG, (label, n, mean_lat)
        else:
            assert LAG <= mean_lat <= LAG + 1.0, (label, n, mean_lat)
        # Recovery stays proportionate: the post-crash epoch cannot cost
        # more than the whole run (sanity ceiling for the sweep table).
        assert after >= 0, (label, n)


def metrics_from(rows):
    """Seed-deterministic metrics (+ directions) for the regression gate."""
    metrics = {}
    directions = {}
    for label, _engine, n, survivors, _lat, _reelect, mean_msgs, after in rows:
        key = f"{label}/n={n}"
        metrics[f"{key}/messages"] = mean_msgs
        metrics[f"{key}/after_crash_messages"] = after
        metrics[f"{key}/survivor_rate"] = survivors
        directions[f"{key}/survivor_rate"] = "higher"
    return metrics, directions


def test_bench_failover_churn(benchmark):
    table, rows = bench_once(benchmark, run_sweep)
    emit("failover_churn", table.render())
    check(rows)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    ns = [32, 64] if args.smoke else NS
    seeds = [0, 1] if args.smoke else SEEDS
    table, rows = run_sweep(ns=ns, seeds=seeds)
    print(table.render())
    check(rows)
    if args.json:
        metrics, directions = metrics_from(rows)
        emit_json(args.json, "failover_churn", metrics,
                  smoke=args.smoke, directions=directions)
    print("OK: unique surviving leader in every run")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
