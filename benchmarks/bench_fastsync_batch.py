"""Batched multi-election sweeps — many seeds per engine run.

The paper's headline curves (Thm 3.10 sync tradeoff, Thm 5.1 async
tradeoff) are sweeps over many seeds per ``(n, algorithm)`` point;
PR 2's vectorized engine still paid full per-seed setup, Python-loop and
sampling overhead per run.  The batch axis
(``FastSyncNetwork(n, seeds=[...])``) executes a whole seed-batch in one
engine run on a faster int32 sampling/scatter pipeline, which this bench
quantifies against the one-seed-per-run path.  Shape assertions:

* **speedup** (full mode): a ``batch = 64`` run of ``improved_tradeoff``
  at ``n = 10^5`` is at least **3x faster per seed** than sequential
  one-seed runs of the same configuration (the PR 2 path, measured
  interleaved in the same process);
* **bit-exactness**: in exact mode the batched lanes reproduce the
  sequential single runs field by field (messages, rounds, winners,
  per-kind counts), and every lane elects the max ID;
* scale-mode lanes are deterministic per ``(n, seed)`` and keep the
  Theorem 3.10 message bound.

Run standalone::

    python benchmarks/bench_fastsync_batch.py            # full: n = 10^5, batch 64
    python benchmarks/bench_fastsync_batch.py --smoke    # CI-sized
    python benchmarks/bench_fastsync_batch.py --smoke --json \
        bench-artifacts/BENCH_fastsync_batch.json

The ``--json`` artifact carries the seed-deterministic per-point metrics
that ``benchmarks/check_regression.py`` gates in CI against
``benchmarks/baselines/BENCH_fastsync_batch.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from _harness import bench_once, emit, emit_json

#: (n, ell, batch) sweep points.  Smoke covers both port-model modes
#: (512 resolves to exact, 4096 to scale) with small batches.
FULL_POINTS = [(100_000, 3, 64)]
SMOKE_POINTS = [(512, 5, 8), (4096, 5, 8)]

#: Full mode measures the legacy path on this many seeds (it is slow —
#: that is the point); smoke measures the whole batch's worth.
FULL_LEGACY_SEEDS = 2

#: The acceptance floor for the headline full-mode point.
MIN_SPEEDUP = 3.0


def run_sweep(points, legacy_seeds=None):
    from repro.analysis import Table, run_fast_batch, run_fast_trial

    table = Table(
        ["n", "ell", "batch", "mode", "mean messages", "rounds",
         "legacy s/seed", "batched s/seed", "speedup"],
        title="Batched fast engine vs the one-seed-per-run path",
    )
    rows = []
    for n, ell, batch in points:
        seeds = list(range(batch))
        t0 = time.perf_counter()
        lanes = run_fast_batch(n, "improved_tradeoff", seeds=seeds,
                               params={"ell": ell})
        batched_per_seed = (time.perf_counter() - t0) / batch
        probe = seeds if legacy_seeds is None else seeds[:legacy_seeds]
        t0 = time.perf_counter()
        singles = [
            run_fast_trial(n, "improved_tradeoff", seed=s, params={"ell": ell})
            for s in probe
        ]
        legacy_per_seed = (time.perf_counter() - t0) / len(probe)
        speedup = legacy_per_seed / batched_per_seed
        rows.append(
            {
                "n": n,
                "ell": ell,
                "batch": batch,
                "mode": lanes[0].extra["mode"],
                "lanes": lanes,
                "singles": singles,
                "messages": sum(r.messages for r in lanes) / len(lanes),
                "rounds": sum(r.time for r in lanes) / len(lanes),
                "legacy_per_seed": legacy_per_seed,
                "batched_per_seed": batched_per_seed,
                "speedup": speedup,
            }
        )
        table.add_row(
            n, ell, batch, rows[-1]["mode"], round(rows[-1]["messages"]),
            rows[-1]["rounds"], f"{legacy_per_seed:.3f}",
            f"{batched_per_seed:.3f}", f"{speedup:.2f}x",
        )
    return table, rows


def check(rows, *, require_speedup: bool) -> None:
    from repro.lowerbound import bounds

    for row in rows:
        lanes = row["lanes"]
        assert all(r.unique_leader for r in lanes), ("no unique leader", row["n"])
        # Default 1..n IDs: the deterministic algorithm elects n.
        assert all(r.elected_id == row["n"] for r in lanes), row["n"]
        bound = bounds.thm310_messages(row["n"], row["ell"])
        assert row["messages"] <= 2 * bound, (
            "message bound exceeded", row["n"], row["messages"], bound,
        )
        if row["mode"] == "exact":
            # Bit-exactness: batched lanes replay the sequential runs.
            for single, lane in zip(row["singles"], lanes):
                assert single.messages == lane.messages, (single, lane)
                assert single.time == lane.time
                assert single.elected_id == lane.elected_id
                assert single.extra["rounds_executed"] == lane.extra["rounds_executed"]
    if require_speedup:
        for row in rows:
            assert row["speedup"] >= MIN_SPEEDUP, (
                f"batched per-seed time must be >= {MIN_SPEEDUP}x faster than "
                f"the one-seed-per-run path at n={row['n']}; measured "
                f"{row['speedup']:.2f}x ({row['legacy_per_seed']:.3f}s vs "
                f"{row['batched_per_seed']:.3f}s per seed)"
            )


def metrics_from(rows):
    metrics = {}
    info = {"per_seed_wall_s": {}, "speedup": {}}
    for row in rows:
        key = f"improved_tradeoff/ell={row['ell']}/n={row['n']}/batch={row['batch']}"
        metrics[f"{key}/mean_messages"] = row["messages"]
        metrics[f"{key}/rounds"] = row["rounds"]
        info["per_seed_wall_s"][key] = {
            "legacy": row["legacy_per_seed"],
            "batched": row["batched_per_seed"],
        }
        info["speedup"][key] = row["speedup"]
    return metrics, info


def test_bench_fastsync_batch(benchmark):
    import pytest

    pytest.importorskip("numpy")
    table, rows = bench_once(benchmark, lambda: run_sweep(SMOKE_POINTS))
    emit("fastsync_batch", table.render())
    check(rows, require_speedup=False)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("bench_fastsync_batch needs numpy (pip install numpy, "
              "or pip install -e '.[fast]')", file=sys.stderr)
        return 2
    if args.smoke:
        table, rows = run_sweep(SMOKE_POINTS)
    else:
        table, rows = run_sweep(FULL_POINTS, legacy_seeds=FULL_LEGACY_SEEDS)
    print(table.render())
    # The wall-clock speedup floor is asserted in full mode only — smoke
    # points are too small for stable timing and CI machines too noisy.
    check(rows, require_speedup=not args.smoke)
    if args.json:
        metrics, info = metrics_from(rows)
        emit_json(args.json, "fastsync_batch", metrics, smoke=args.smoke, info=info)
    best = max(rows, key=lambda r: r["speedup"])
    print(f"OK: bit-exact lanes; best per-seed speedup {best['speedup']:.2f}x "
          f"at n={best['n']} (batch={best['batch']})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
