"""Scale sweep — the paper's tradeoff frontier at ``n ≥ 10^5``.

The object-model engines top out around ``n ≈ 10^3``; the vectorized
engine (:mod:`repro.fastsync`) pushes the Theorem 3.10 / Afek–Gafni /
Theorem 3.16 comparison two orders of magnitude further, where the
frontier separation the paper proves (message exponent ``1 + 2/(ℓ+1)``
vs ``1 + 2/ℓ``, and the ``O(n)`` Las Vegas floor) is visually obvious.
Swept per ``(algorithm, ℓ, n, seed)``: total messages, rounds and
per-run wall time.  Shape assertions:

* every run elects a unique leader (and the deterministic algorithms
  elect the max ID);
* measured messages stay under the paper's Theorem 3.10 / AG bound
  formulas (sanity ceiling, constant 2);
* the round/message *frontier* is monotone at the largest ``n``: a
  larger round budget ``ℓ`` buys strictly fewer messages, and Theorem
  3.10 beats Afek–Gafni at the matched budget.

Run standalone::

    python benchmarks/bench_fastsync_scale.py            # full: n up to 10^5
    python benchmarks/bench_fastsync_scale.py --smoke    # CI-sized
    python benchmarks/bench_fastsync_scale.py --smoke --json \
        bench-artifacts/BENCH_fastsync_scale.json

The ``--json`` artifact carries the seed-deterministic metrics that
``benchmarks/check_regression.py`` gates in CI against
``benchmarks/baselines/BENCH_fastsync_scale.json``.
"""

from __future__ import annotations

import argparse
import sys

from _harness import bench_once, emit, emit_json

# (registry name, params, label) — the ell sweep is the frontier axis.
CONFIGS = [
    ("improved_tradeoff", {"ell": 3}, "improved_tradeoff/ell=3"),
    ("improved_tradeoff", {"ell": 5}, "improved_tradeoff/ell=5"),
    ("improved_tradeoff", {"ell": 9}, "improved_tradeoff/ell=9"),
    ("afek_gafni", {"ell": 4}, "afek_gafni/ell=4"),
    ("las_vegas", {}, "las_vegas"),
]

FULL_NS = [10_000, 100_000]
FULL_SEEDS = [0, 1]
# Smoke covers both port-model modes: 512 resolves to exact, 4096 to scale.
SMOKE_NS = [512, 4096]
SMOKE_SEEDS = [0, 1]


def run_sweep(ns=FULL_NS, seeds=FULL_SEEDS, batch=False):
    from repro.analysis import Table, run_fast_batch, run_fast_trial

    table = Table(
        ["algorithm", "n", "mode", "messages", "rounds", "unique", "wall s/run"],
        title="Vectorized engine: rounds-vs-messages frontier at scale",
    )
    rows = []
    for name, params, label in CONFIGS:
        for n in ns:
            if batch:
                # One batched engine run per (algorithm, n) point: the
                # whole seed sweep shares setup and the faster batched
                # sampler (see bench_fastsync_batch.py for the ratio).
                records = run_fast_batch(n, name, seeds=list(seeds), params=params)
            else:
                records = [
                    run_fast_trial(n, name, seed=seed, params=params) for seed in seeds
                ]
            messages = sum(r.messages for r in records) / len(records)
            rounds = sum(r.time for r in records) / len(records)
            wall = sum(r.extra["wall_time_s"] for r in records) / len(records)
            unique = all(r.unique_leader for r in records)
            rows.append(
                {
                    "label": label,
                    "name": name,
                    "params": params,
                    "n": n,
                    "mode": records[0].extra["mode"],
                    "messages": messages,
                    "rounds": rounds,
                    "wall_time_s": wall,
                    "unique": unique,
                    "elected": [r.elected_id for r in records],
                }
            )
            table.add_row(
                label,
                n,
                records[0].extra["mode"],
                round(messages),
                rounds,
                "yes" if unique else "NO",
                f"{wall:.3f}",
            )
    return table, rows


def check(rows) -> None:
    from repro.lowerbound import bounds

    for row in rows:
        assert row["unique"], ("no unique leader", row["label"], row["n"])
        if row["name"] in ("improved_tradeoff", "afek_gafni"):
            # Default 1..n IDs: the deterministic algorithms elect n.
            assert all(e == row["n"] for e in row["elected"]), row
            ell = row["params"]["ell"]
            bound = (
                bounds.thm310_messages(row["n"], ell)
                if row["name"] == "improved_tradeoff"
                else bounds.ag_messages(row["n"], ell)
            )
            assert row["messages"] <= 2 * bound, (
                "message bound exceeded", row["label"], row["n"], row["messages"], bound,
            )
    # Frontier shape at the largest swept n: more rounds, fewer messages.
    top = max(r["n"] for r in rows)
    at_top = {r["label"]: r["messages"] for r in rows if r["n"] == top}
    assert at_top["improved_tradeoff/ell=3"] > at_top["improved_tradeoff/ell=5"]
    assert at_top["improved_tradeoff/ell=5"] > at_top["improved_tradeoff/ell=9"]
    # Matched budget: Thm 3.10 with ell=3 sends less than AG needs for
    # the same two iterations (ell=4), per the 2/(ell+1) vs 2/ell gap.
    assert at_top["improved_tradeoff/ell=3"] < at_top["afek_gafni/ell=4"]


def metrics_from(rows):
    metrics = {}
    info = {"wall_time_s": {}}
    for row in rows:
        key = f"{row['label']}/n={row['n']}"
        metrics[f"{key}/messages"] = row["messages"]
        metrics[f"{key}/rounds"] = row["rounds"]
        info["wall_time_s"][key] = row["wall_time_s"]
    return metrics, info


def test_bench_fastsync_scale(benchmark):
    import pytest

    pytest.importorskip("numpy")
    table, rows = bench_once(benchmark, lambda: run_sweep(SMOKE_NS, SMOKE_SEEDS))
    emit("fastsync_scale", table.render())
    check(rows)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    parser.add_argument("--batch", action="store_true",
                        help="dispatch each (algorithm, n) point's seeds as one "
                        "batched engine run (several times faster end-to-end at "
                        "n = 10^5; scale-mode counts differ from the unbatched "
                        "baseline, so the CI gate runs unbatched)")
    args = parser.parse_args(argv)
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("bench_fastsync_scale needs numpy (pip install numpy, "
              "or pip install -e '.[fast]')", file=sys.stderr)
        return 2
    ns = SMOKE_NS if args.smoke else FULL_NS
    seeds = SMOKE_SEEDS if args.smoke else FULL_SEEDS
    table, rows = run_sweep(ns=ns, seeds=seeds, batch=args.batch)
    print(table.render())
    check(rows)
    if args.json:
        metrics, info = metrics_from(rows)
        emit_json(args.json, "fastsync_scale", metrics, smoke=args.smoke, info=info)
    top = max(r["n"] for r in rows)
    wall = {r["label"]: r["wall_time_s"] for r in rows if r["n"] == top}
    print(f"OK: unique leader everywhere; n={top} per-run wall times: "
          + ", ".join(f"{k}={v:.2f}s" for k, v in wall.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
