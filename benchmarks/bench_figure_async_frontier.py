"""F2 — the asynchronous tradeoff frontier (messages vs time).

Theorem 5.1's tradeoff rendered as a curve over k at fixed n: measured
(time, messages) pairs for k = 2..8, with the two anchor points the paper
highlights:

* k = 2 → 10 time units and ~n^(3/2) messages, matching the Theorem 4.2
  lower-bound point;
* k = Θ(log n/log log n) → ~O(log n) time and n·polylog messages,
  approaching the [14] singular-optimality reference row.

The frontier must be monotone: more time, fewer messages.
"""

from repro.analysis import Table, sweep_async
from repro.asyncnet import UnitDelayScheduler
from repro.core import AsyncTradeoffElection
from repro.lowerbound import bounds

from _harness import bench_once, emit

N = 2048
KS = [2, 3, 4, 5, 6, 8]
SEEDS = [0, 1, 2]


def run_frontier():
    table = Table(
        ["k", "k+8 budget", "measured time (max)", "mean msgs", "O(n^(1+1/k))", "Thm 4.2 floor (k=2 only)"],
        title=f"Figure F2: async messages-vs-time frontier at n={N}",
    )
    curve = []
    for k in KS:
        records = sweep_async(
            [N],
            lambda n_: (lambda: AsyncTradeoffElection(k=k)),
            seeds=SEEDS,
            scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
            max_events=8_000_000,
        )
        assert all(r.leaders <= 1 for r in records)
        ok = [r for r in records if r.unique_leader]
        assert ok, f"no successful run at k={k}"
        mean_msgs = sum(r.messages for r in ok) / len(ok)
        max_time = max(r.time for r in ok)
        floor = bounds.thm42_message_lb(N) if k == 2 else float("nan")
        table.add_row(k, bounds.thm51_time(k), max_time, mean_msgs, bounds.thm51_messages(N, k), floor)
        curve.append((k, max_time, mean_msgs))
    return table, curve


def test_bench_async_frontier(benchmark):
    table, curve = bench_once(benchmark, run_frontier)
    emit("figure_async_frontier", table.render())
    msgs = [m for _, _, m in curve]
    # monotone frontier: larger k never costs more messages.
    assert all(a >= b for a, b in zip(msgs, msgs[1:])), msgs
    # anchor 1: k=2 sits at/above the Omega(n^{3/2}) point.
    assert msgs[0] >= bounds.thm42_message_lb(N) / 2
    # anchor 2: largest k is within n * polylog.
    import math

    assert msgs[-1] <= N * math.log2(N) ** 2
    # time budgets respected (+1 announcement hop).
    for k, max_time, _ in curve:
        assert max_time <= bounds.thm51_time(k) + 1, (k, max_time)
