"""F1 — the synchronous tradeoff frontier (messages vs rounds).

The paper states this figure as formulas: for a fixed n, the Theorem 3.8
lower-bound curve, the Theorem 3.10 upper-bound curve and Afek–Gafni's
older upper bound, as functions of the round budget ℓ.  This bench
renders the three curves with *measured* points for the two algorithms,
which is the paper's central "who wins, by how much, where" picture:

* measured Thm 3.10 points sit between the Thm 3.8 LB and the AG curve;
* the LB/UB gap narrows as ℓ grows (the bounds nearly match);
* the improved-vs-AG advantage shrinks with ℓ (it is a polynomial
  improvement for constant ℓ).

Also serves as DESIGN.md ablation #1 (referee-count schedule): the AG
schedule with K=⌈ℓ/2⌉ iterations versus the improved K=k-1 schedule is
exactly the difference between the two measured curves.
"""

from repro.analysis import Table
from repro.core import AfekGafniElection, ImprovedTradeoffElection
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import bounds
from repro.sync.engine import SyncNetwork

from _harness import bench_once, emit

N = 2048
ELLS = [3, 5, 7, 9, 11, 13]


def run_frontier():
    import random

    ids = assign_random(tradeoff_universe(N), N, random.Random(99))
    table = Table(
        ["rounds ell", "Thm 3.8 LB", "Thm 3.10 measured", "Thm 3.10 bound", "AG measured", "AG bound"],
        title=f"Figure F1: messages-vs-rounds frontier at n={N}",
    )
    points = []
    for ell in ELLS:
        improved = SyncNetwork(
            N, lambda: ImprovedTradeoffElection(ell=ell), ids=ids, seed=0
        ).run()
        ag = SyncNetwork(N, lambda: AfekGafniElection(ell=ell - 1), ids=ids, seed=0).run()
        assert improved.unique_leader and ag.unique_leader
        lb = bounds.thm38_message_lb(N, ell)
        table.add_row(
            ell,
            lb,
            improved.messages,
            bounds.thm310_messages(N, ell),
            ag.messages,
            bounds.ag_messages(N, ell - 1),
        )
        points.append((ell, lb, improved.messages, ag.messages))
    return table, points


def test_bench_sync_frontier(benchmark):
    table, points = bench_once(benchmark, run_frontier)
    emit("figure_sync_frontier", table.render())
    gaps = []
    advantages = []
    for ell, lb, improved, ag in points:
        # frontier ordering: LB/const <= improved < AG (who wins).
        assert improved >= lb / (4 * ell), (ell, improved, lb)
        assert improved < ag, (ell, improved, ag)
        gaps.append(improved / lb)
        advantages.append(ag / improved)
    # crossover structure: the improvement factor decays with ell.
    assert advantages[0] > advantages[-1], advantages
    # The measured curve falls steeply over the small-ell range (where
    # the exponent differences are polynomial) and flattens out near the
    # curve's minimum (the bound ell*n^(1+2/(ell+1)) is U-shaped with a
    # minimum near ell ~ 2 ln n; integer referee-count ceilings add
    # +-10% wiggles there).
    msgs = [p[2] for p in points]
    assert msgs[1] < msgs[0] and msgs[2] < msgs[1] and msgs[3] < msgs[2], msgs
    for m0, m1 in zip(msgs, msgs[1:]):
        assert m1 < 1.1 * m0, msgs  # never meaningfully increases
