"""T1.8 — Table 1 row "Algorithm [16]" (2-round Monte Carlo baseline).

Paper claim (for [16]): 2 rounds, ``O(√n·log^(3/2) n)`` messages, succeeds
whp — the Monte Carlo point that Theorem 3.16 contrasts with the Ω(n)
Las Vegas bound (a polynomial gap).

Reproduced shape:
* 2 message rounds exactly;
* success rate ≥ 0.9 across seeds at every n;
* messages fit ``√n`` after dividing out the fixed ``log^(3/2)`` factor
  (exponent ≈ 0.5);
* the gap row: measured [16] messages / n → 0 as n grows, while the Las
  Vegas floor is n.
"""

from repro.analysis import Table, fit_polylog, sweep_sync
from repro.core import Kutten16Election
from repro.lowerbound import bounds

from _harness import bench_once, emit

NS = [1024, 4096, 16384, 65536]
SEEDS = list(range(5))


def run_sweep():
    table = Table(
        ["n", "success rate", "mean msgs", "paper curve", "LV floor Omega(n)", "msgs/n"],
        title="Kutten et al. [16]: 2-round Monte Carlo election",
    )
    means = []
    for n in NS:
        records = sweep_sync(
            [n], lambda n_: (lambda: Kutten16Election()), seeds=SEEDS
        )
        ok = sum(r.unique_leader for r in records) / len(records)
        mean = sum(r.messages for r in records) / len(records)
        means.append(mean)
        for r in records:
            assert r.time <= 2
            assert r.leaders <= 1
        table.add_row(
            n, ok, mean, bounds.kutten16_messages(n), bounds.thm316_las_vegas_lb(n), mean / n
        )
    fit = fit_polylog(NS, means, log_power=1.5)
    table.add_section(f"fit (log^1.5 factored out): {fit}; theory exponent 0.5")
    return table, means, fit


def test_bench_kutten16(benchmark):
    table, means, fit = bench_once(benchmark, run_sweep)
    emit("kutten16_monte_carlo", table.render())
    assert abs(fit.exponent - 0.5) < 0.2, fit
    # The Monte Carlo vs Las Vegas polynomial gap: relative cost shrinks.
    ratios = [m / n for m, n in zip(means, NS)]
    assert ratios[-1] < ratios[0] / 2, ratios
