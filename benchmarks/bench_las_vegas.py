"""T1.6 + T1.7 — Table 1 rows "Algorithm/Lower Bound, Theorem 3.16".

Paper claims: any Las Vegas algorithm needs Ω(n) messages in expectation;
and 3 rounds / O(n) messages (whp) are achievable.

Reproduced shape:
* every run (all seeds, all n) ends with exactly one leader — Las Vegas
  means *never* wrong;
* ≥ 90% of runs finish in exactly 3 rounds;
* mean messages are Θ(n): above the Ω(n) floor, below a fixed multiple;
* the candidate-probability ablation: larger candidate constants buy
  fewer restarts for more compete messages (DESIGN.md ablation #3).
"""

from repro.analysis import Table, sweep_sync
from repro.core import LasVegasElection
from repro.lowerbound import bounds

from _harness import bench_once, emit

NS = [512, 2048, 8192]
SEEDS = list(range(8))


def run_sweep():
    table = Table(
        ["n", "3-round rate", "mean msgs", "Omega(n) floor", "mean/n", "max rounds seen"],
        title="Theorem 3.16: Las Vegas 3-round election, O(n) messages",
    )
    stats = []
    for n in NS:
        records = sweep_sync([n], lambda n_: (lambda: LasVegasElection()), seeds=SEEDS)
        assert all(r.unique_leader for r in records)
        three_round = sum(r.time == 3 for r in records) / len(records)
        mean = sum(r.messages for r in records) / len(records)
        stats.append((n, three_round, mean))
        table.add_row(
            n,
            three_round,
            mean,
            bounds.thm316_las_vegas_lb(n),
            mean / n,
            max(int(r.time) for r in records),
        )
    return table, stats


def run_ablation():
    n = 2048
    table = Table(
        ["candidate coeff", "mean msgs", "3-round rate"],
        title="Ablation: candidate probability constant (c * ln n / n)",
    )
    for coeff in (0.5, 2.0, 8.0):
        records = sweep_sync(
            [n],
            lambda n_: (lambda: LasVegasElection(candidate_coeff=coeff)),
            seeds=list(range(8)),
        )
        assert all(r.unique_leader for r in records)
        mean = sum(r.messages for r in records) / len(records)
        rate = sum(r.time == 3 for r in records) / len(records)
        table.add_row(coeff, mean, rate)
    return table


def test_bench_las_vegas(benchmark):
    table, stats = bench_once(benchmark, run_sweep)
    emit("thm316_las_vegas", table.render())
    for n, three_round, mean in stats:
        assert three_round >= 0.85, (n, three_round)
        assert bounds.thm316_las_vegas_lb(n) - 1 <= mean <= 25 * n, (n, mean)


def test_bench_las_vegas_ablation(benchmark):
    table = bench_once(benchmark, run_ablation)
    emit("thm316_las_vegas_ablation", table.render())
