"""Monitor overhead guard — observability must stay out of the hot path.

The monitor layer attaches to sweeps at two seams: a post-hoc
``SweepMonitor`` pass over the flattened records (invariants + envelope
conformance + ledger) and scheduler ``progress`` callbacks.  Neither
touches the per-round engine loop, so the budgets are tight, pinned on
the PR 7 ``sweep()`` workload (``las_vegas`` + ``improved_tradeoff``
spec grids):

* **off-arm parity** (full mode): ``sweep(...)`` with monitoring left
  off stays within **5%** of an interleaved reference measurement of
  the identical unmonitored sweep — the seam is a ``None`` check;
* **on-arm budget** (full mode): attaching a ``SweepMonitor`` plus a
  silent ``SweepProgress`` listener costs at most **15%** over the
  off arm;
* **conformance gate** (every mode, seed-deterministic, CI-gated): the
  monitored arm must report zero violations and 100% envelope
  conformance on this fault-free workload, and the record counts and
  message means must match the unmonitored arms bit-exactly.

Wall-clock ratios are machine-dependent and go in the ungated ``info``
section; the gated ``metrics`` carry violation/conformance counts and
the workload's message/round means.

Run standalone::

    python benchmarks/bench_monitor_overhead.py            # full: n = 2048
    python benchmarks/bench_monitor_overhead.py --smoke    # CI-sized
    python benchmarks/bench_monitor_overhead.py --smoke --json \
        bench-artifacts/BENCH_monitor_overhead.json
"""

from __future__ import annotations

import argparse
import sys
import time

from _harness import bench_once, emit, emit_json

#: (n, seeds) sweep points; each point runs both algorithms.
FULL_POINTS = [(2048, 8)]
SMOKE_POINTS = [(64, 2), (256, 2)]

ALGORITHMS = ["las_vegas", "improved_tradeoff"]

#: Interleaved timing repetitions per arm (median is reported).
FULL_REPS = 3
SMOKE_REPS = 1

#: Full-mode wall-clock budgets.
MAX_OFF_RATIO = 1.05      # monitoring off vs interleaved reference
MAX_ON_RATIO = 1.15       # SweepMonitor + progress vs off arm


def _best(values):
    # Minimum over interleaved reps: the least-noise estimate of each
    # arm's true cost (scheduler hiccups and GC pauses only ever add).
    return min(values)


def run_sweep(points, reps):
    from repro.analysis import Table
    from repro.monitor import SweepMonitor, SweepProgress
    from repro.sweep import RunSpec, sweep

    table = Table(
        ["n", "seeds", "ref s/run", "off s/run", "on s/run",
         "off ratio", "on ratio", "viol", "conform"],
        title="Monitor overhead on the RunSpec sweep path",
    )
    rows = []
    for n, seed_count in points:
        seeds = tuple(range(seed_count))
        specs = [
            RunSpec(algorithm=name, n=n, seeds=seeds) for name in ALGORITHMS
        ]
        runs = len(specs) * seed_count

        def _timed(**extra):
            t0 = time.perf_counter()
            records = sweep(specs, **extra)
            return (time.perf_counter() - t0) / runs, records

        _timed()  # warmup: allocator and import costs land outside timing

        # Interleave the arms so drift in machine load hits all three.
        ref_times, off_times, on_times = [], [], []
        monitor = None
        arm_records = {}
        for _ in range(reps):
            ref_time, arm_records["ref"] = _timed()
            ref_times.append(ref_time)
            off_time, arm_records["off"] = _timed(monitor=None, progress=None)
            off_times.append(off_time)
            monitor = SweepMonitor(context={"bench": "monitor_overhead"})
            on_time, arm_records["on"] = _timed(
                monitor=monitor, progress=SweepProgress(live=False)
            )
            on_times.append(on_time)

        # The monitored arm must change nothing about the records.
        drift = 0
        for arm in ("off", "on"):
            drift += int(len(arm_records[arm]) != len(arm_records["ref"]))
            drift += sum(
                int(a.messages != b.messages or a.time != b.time)
                for a, b in zip(arm_records[arm], arm_records["ref"])
            )

        ref_s, off_s, on_s = map(_best, (ref_times, off_times, on_times))
        rows.append(
            {
                "n": n,
                "seeds": seed_count,
                "runs": runs,
                "records": arm_records["on"],
                "monitor": monitor,
                "drift": drift,
                "messages": sum(r.messages for r in arm_records["on"]) / runs,
                "rounds": sum(r.time for r in arm_records["on"]) / runs,
                "ref_per_run": ref_s,
                "off_per_run": off_s,
                "on_per_run": on_s,
                "off_ratio": off_s / ref_s,
                "on_ratio": on_s / off_s,
            }
        )
        table.add_row(
            n, seed_count, f"{ref_s:.4f}", f"{off_s:.4f}", f"{on_s:.4f}",
            f"{rows[-1]['off_ratio']:.3f}", f"{rows[-1]['on_ratio']:.3f}",
            len(monitor.violations),
            f"{monitor.conformance.conforming}/{monitor.conformance.total}",
        )
    return table, rows


def check(rows, *, require_budget: bool) -> None:
    for row in rows:
        monitor = row["monitor"]
        assert row["drift"] == 0, (
            "monitoring changed the sweep's records", row["n"],
        )
        assert monitor.violations == [], (
            "fault-free workload tripped an invariant",
            [str(v) for v in monitor.violations],
        )
        assert monitor.conformance.ok, (
            "fault-free workload left its theory envelope",
            [str(f) for f in monitor.conformance.failures],
        )
        assert monitor.conformance.total == row["runs"]
        assert all(r.unique_leader for r in row["records"]), row["n"]
    # Wall-clock budgets are asserted in full mode only — smoke points
    # are too small for stable timing and CI machines too noisy.
    if require_budget:
        for row in rows:
            assert row["off_ratio"] <= MAX_OFF_RATIO, (
                f"unmonitored sweep must stay within {MAX_OFF_RATIO:.0%} of "
                f"the PR 7 baseline at n={row['n']}; measured "
                f"{row['off_ratio']:.3f}x"
            )
            assert row["on_ratio"] <= MAX_ON_RATIO, (
                f"monitoring must cost <= {MAX_ON_RATIO - 1:.0%} at "
                f"n={row['n']}; measured {row['on_ratio']:.3f}x"
            )


def metrics_from(rows):
    metrics = {}
    info = {"per_run_wall_s": {}, "ratios": {}}
    for row in rows:
        monitor = row["monitor"]
        key = f"sweep/n={row['n']}/seeds={row['seeds']}"
        metrics[f"{key}/mean_messages"] = row["messages"]
        metrics[f"{key}/mean_rounds"] = row["rounds"]
        metrics[f"{key}/violations"] = len(monitor.violations)
        metrics[f"{key}/conforming"] = monitor.conformance.conforming
        metrics[f"{key}/record_drift"] = row["drift"]
        info["per_run_wall_s"][key] = {
            "reference": row["ref_per_run"],
            "monitor_off": row["off_per_run"],
            "monitor_on": row["on_per_run"],
        }
        info["ratios"][key] = {
            "off_vs_reference": row["off_ratio"],
            "on_vs_off": row["on_ratio"],
        }
    return metrics, info


def test_bench_monitor_overhead(benchmark):
    table, rows = bench_once(
        benchmark, lambda: run_sweep(SMOKE_POINTS, SMOKE_REPS)
    )
    emit("monitor_overhead", table.render())
    check(rows, require_budget=False)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    if args.smoke:
        table, rows = run_sweep(SMOKE_POINTS, SMOKE_REPS)
    else:
        table, rows = run_sweep(FULL_POINTS, FULL_REPS)
    print(table.render())
    check(rows, require_budget=not args.smoke)
    if args.json:
        metrics, info = metrics_from(rows)
        emit_json(args.json, "monitor_overhead", metrics, smoke=args.smoke,
                  info=info)
    worst = max(rows, key=lambda r: r["on_ratio"])
    print(f"OK: zero violations, {worst['monitor'].conformance.conforming}"
          f"/{worst['monitor'].conformance.total} conforming; worst "
          f"monitor-on cost {worst['on_ratio']:.3f}x at n={worst['n']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
