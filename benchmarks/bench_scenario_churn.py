"""Scenario churn — the workload layer swept end to end (scenarios subsystem).

Runs every named scenario (``partition_heal``, ``rolling_restart``,
``flapping_leader``, ``staggered_joins``, ``election_storm``) on both
object engines over a grid of clique sizes and seeds, reporting the
per-epoch convergence metrics the ROADMAP churn items ask for: failover
latency, leadership-agreement fraction, epoch churn, and message
overhead versus a fault-free election.  Shape assertions:

* every scenario run re-converges — exactly one agreed leader at the
  end, on every engine, every n, every seed;
* disruption scenarios really churn: partition runs mint one epoch per
  component plus the heal epoch, flapping runs burn one epoch per kill;
* overhead is proportionate: k disruptions cost within a constant
  factor of k + 1 fault-free elections (the recovery path re-elects,
  it does not thrash);
* **ablation #4** (detector lag vs failover latency): sweeping the
  perfect-detector lag on ``rolling_restart`` shifts measured failover
  latency by exactly the lag delta — detection and re-election costs
  compose additively, so the detector budget is a pure latency knob.

Run standalone (CI smoke): ``python benchmarks/bench_scenario_churn.py --smoke``;
``--json PATH`` writes the BENCH_*.json trajectory artifact that
``check_regression.py`` gates against ``benchmarks/baselines/``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import Table
from repro.scenarios import ScenarioRunner, get_scenario

from _harness import bench_once, emit, emit_json

NS = [32, 64]
SEEDS = [0, 1, 2]
SMOKE_NS = [16, 32]
SMOKE_SEEDS = [0, 1]

SCENARIOS = [
    "partition_heal",
    "rolling_restart",
    "flapping_leader",
    "staggered_joins",
    "election_storm",
]
ENGINES = ["sync", "async"]
ABLATION_LAGS = [1.0, 2.0, 4.0]


def run_sweep(ns=NS, seeds=SEEDS):
    table = Table(
        [
            "scenario",
            "engine",
            "n",
            "agreed runs",
            "epoch churn",
            "mean failover",
            "agreed frac",
            "mean msgs",
            "overhead",
        ],
        title="Scenario churn: every named scenario on both engines",
    )
    rows = []
    for name in SCENARIOS:
        for engine in ENGINES:
            for n in ns:
                results = [
                    ScenarioRunner(
                        get_scenario(name, n), n, engine=engine, seed=seed
                    ).run()
                    for seed in seeds
                ]
                agreed = sum(r.metrics.final_agreed for r in results) / len(results)
                churn = sum(r.metrics.epoch_churn for r in results) / len(results)
                failovers = [
                    lat for r in results for lat in r.metrics.failover_latencies
                ]
                mean_failover = (
                    sum(failovers) / len(failovers) if failovers else float("nan")
                )
                agreed_frac = sum(
                    r.metrics.agreed_fraction for r in results
                ) / len(results)
                mean_msgs = sum(
                    r.metrics.total_messages for r in results
                ) / len(results)
                overhead = sum(
                    r.metrics.message_overhead for r in results
                ) / len(results)
                elections = sum(r.metrics.elections for r in results) / len(results)
                rows.append(
                    (name, engine, n, agreed, churn, mean_failover,
                     agreed_frac, mean_msgs, overhead, elections)
                )
                table.add_row(
                    name, engine, n, agreed, churn,
                    f"{mean_failover:.2f}", f"{agreed_frac:.2f}",
                    f"{mean_msgs:.0f}", f"{overhead:.2f}",
                )
    return table, rows


def run_lag_ablation(ns, seeds):
    """Ablation #4: detector lag vs measured failover latency."""
    table = Table(
        ["lag", "n", "mean failover", "epoch churn"],
        title="Ablation #4: perfect-detector lag vs failover latency "
        "(rolling_restart, sync engine)",
    )
    rows = []
    n = ns[-1]
    for lag in ABLATION_LAGS:
        results = [
            ScenarioRunner(
                get_scenario("rolling_restart", n), n, engine="sync",
                seed=seed, lag=lag,
            ).run()
            for seed in seeds
        ]
        failovers = [lat for r in results for lat in r.metrics.failover_latencies]
        mean_failover = sum(failovers) / len(failovers)
        churn = sum(r.metrics.epoch_churn for r in results) / len(results)
        rows.append((lag, n, mean_failover, churn))
        table.add_row(lag, n, f"{mean_failover:.2f}", churn)
    return table, rows


def check(rows, ablation_rows) -> None:
    for (name, engine, n, agreed, churn, mean_failover,
         agreed_frac, _msgs, overhead, elections) in rows:
        # Re-convergence: one agreed leader at the end of every run.
        assert agreed == 1.0, (name, engine, n, agreed)
        # Disruption scenarios really churn epochs.
        if name == "partition_heal":
            assert churn >= 4, (name, engine, n, churn)  # initial + 2 + heal
            assert mean_failover == mean_failover and mean_failover > 0
        if name == "flapping_leader":
            assert churn >= 4, (name, engine, n, churn)  # 3 kills + survivor
        if name == "election_storm":
            # Elections without disruption keep agreement almost always.
            assert agreed_frac > 0.5, (name, engine, n, agreed_frac)
        # Proportionate recovery: total traffic stays within a constant
        # factor of one fault-free election per minted epoch (in-act
        # kill churn included), so the recovery path re-elects rather
        # than thrashing.
        assert elections >= 1
        assert overhead <= 2.5 * churn, (name, engine, n, overhead, churn)
    # Ablation #4: failover latency composes additively with the lag —
    # monotone in the lag, with a slope of about one per lag unit.
    latencies = [latency for _lag, _n, latency, _churn in ablation_rows]
    lags = [lag for lag, _n, _latency, _churn in ablation_rows]
    for (lo_lag, lo), (hi_lag, hi) in zip(
        zip(lags, latencies), zip(lags[1:], latencies[1:])
    ):
        assert hi > lo, (lo_lag, lo, hi_lag, hi)
        delta = (hi - lo) / (hi_lag - lo_lag)
        assert 0.5 <= delta <= 2.0, (lo_lag, hi_lag, delta)


def metrics_from(rows, ablation_rows):
    """Seed-deterministic metrics (+ directions) for the regression gate."""
    metrics = {}
    directions = {}
    for (name, engine, n, agreed, churn, mean_failover,
         agreed_frac, mean_msgs, _overhead, _elections) in rows:
        key = f"{name}/{engine}/n={n}"
        metrics[f"{key}/messages"] = mean_msgs
        metrics[f"{key}/epoch_churn"] = churn
        metrics[f"{key}/agreed_runs"] = agreed
        directions[f"{key}/agreed_runs"] = "higher"
        metrics[f"{key}/agreed_fraction"] = round(agreed_frac, 4)
        directions[f"{key}/agreed_fraction"] = "higher"
        if mean_failover == mean_failover:  # not NaN
            metrics[f"{key}/mean_failover_latency"] = mean_failover
    for lag, n, latency, _churn in ablation_rows:
        metrics[f"ablation/lag={lag:g}/n={n}/mean_failover_latency"] = latency
    return metrics, directions


def test_bench_scenario_churn(benchmark):
    table, rows = bench_once(benchmark, run_sweep)
    ablation_table, ablation_rows = run_lag_ablation(NS, SEEDS)
    emit("scenario_churn", table.render() + "\n\n" + ablation_table.render())
    check(rows, ablation_rows)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    ns = SMOKE_NS if args.smoke else NS
    seeds = SMOKE_SEEDS if args.smoke else SEEDS
    table, rows = run_sweep(ns=ns, seeds=seeds)
    ablation_table, ablation_rows = run_lag_ablation(ns, seeds)
    print(table.render())
    print(ablation_table.render())
    check(rows, ablation_rows)
    if args.json:
        metrics, directions = metrics_from(rows, ablation_rows)
        emit_json(args.json, "scenario_churn", metrics,
                  smoke=args.smoke, directions=directions)
    print("OK: every scenario re-converged to one agreed leader")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
