"""Scenario fleets on the vectorized fault runtime — speedup and drift.

The fast engine now runs *faulted* scenario acts (partitions, kill
policies, adversary slander) through the vectorized fault runtime, so a
whole scenario timeline executes without falling back to the object
engines.  This bench pins the two claims that make that useful:

* **zero cross-engine drift** — for every scenario in the head-to-head
  set, the fast and sync executions of the same ``(scenario, n, seed)``
  produce the same act structure (trigger sequence, participating
  members, member IDs), the same churn accounting, and the same agreed
  final leader.  The drift count is exported as a baseline metric with
  value 0, so *any* divergence fails the regression gate outright;
* **>= 3x per-seed speedup** — at the head-to-head size the vectorized
  run beats the object engine by far more than 3x (measured here at two
  orders of magnitude), and at the fleet size ``n = 10^4`` the object
  engine is lower-bounded by its (monotone-in-n) head-size wall time,
  so the 3x bound holds there too.  A direct sync run at n=10^4
  exceeds 600 s — infeasible in CI, which is precisely the point.

``flapping_leader`` is deliberately absent from the drift set: its
in-run kill policy churns the *in-act* leadership, where the object
wrapper (detector-driven re-election) and the bare vectorized election
legitimately diverge — see DESIGN.md "Vectorized fault runtime".

Run standalone (CI smoke): ``python benchmarks/bench_scenario_fast.py --smoke``;
``--json PATH`` writes the BENCH_*.json trajectory artifact that
``check_regression.py`` gates against ``benchmarks/baselines/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import Table
from repro.scenarios import ScenarioRunner, get_scenario

from _harness import bench_once, emit, emit_json

#: Cross-engine drift is asserted on these invariants of a ScenarioResult.
DRIFT_FIELDS = (
    "final_leader_id",
    "final_agreed",
    "triggers",
    "members",
    "member_ids",
    "crashes",
    "recoveries",
    "joins",
)

SCENARIOS = ["partition_heal", "rolling_restart", "slandered_leader"]

HEAD_N, HEAD_SEEDS = 1024, [0, 1]
SMOKE_HEAD_N, SMOKE_HEAD_SEEDS = 256, [0]
#: Anchor for the n=10^4 speedup bound: one sync partition_heal at this
#: size lower-bounds the object engine's 10^4 wall time (monotone in n).
ANCHOR_N, SMOKE_ANCHOR_N = 1024, 512
SCALE_N = 10_000
MIN_SPEEDUP = 3.0


def _invariants(result):
    return {
        "final_leader_id": result.metrics.final_leader_id,
        "final_agreed": result.metrics.final_agreed,
        "triggers": [e.trigger for e in result.epochs],
        "members": [e.members for e in result.epochs],
        "member_ids": [e.member_ids for e in result.epochs],
        "crashes": result.metrics.crashes,
        "recoveries": result.metrics.recoveries,
        "joins": result.metrics.joins,
    }


def _timed_run(name, n, engine, seed):
    t0 = time.perf_counter()
    result = ScenarioRunner(get_scenario(name, n), n, engine=engine, seed=seed).run()
    return result, time.perf_counter() - t0


def run_head_to_head(n, seeds):
    """Fast vs sync on every scenario: wall times and the drift census."""
    table = Table(
        ["scenario", "n", "seed", "sync s", "fast s", "speedup", "drift"],
        title="Faulted scenarios: vectorized fault runtime vs the object engine",
    )
    rows = []
    for name in SCENARIOS:
        for seed in seeds:
            sync_res, sync_t = _timed_run(name, n, "sync", seed)
            fast_res, fast_t = _timed_run(name, n, "fast", seed)
            sync_inv = _invariants(sync_res)
            fast_inv = _invariants(fast_res)
            drift = sum(sync_inv[f] != fast_inv[f] for f in DRIFT_FIELDS)
            speedup = sync_t / fast_t
            rows.append(
                {
                    "scenario": name,
                    "n": n,
                    "seed": seed,
                    "sync_t": sync_t,
                    "fast_t": fast_t,
                    "speedup": speedup,
                    "drift": drift,
                    "agreed": fast_res.metrics.final_agreed,
                    "messages": fast_res.metrics.total_messages,
                    "epochs": len(fast_res.epochs),
                }
            )
            table.add_row(
                name, n, seed, f"{sync_t:.2f}", f"{fast_t:.3f}",
                f"{speedup:.0f}x", drift,
            )
    return table, rows


def run_scale_leg(seeds, anchor_n):
    """The fleet size: fast at n=10^4, bounded against a sync anchor."""
    table = Table(
        ["leg", "n", "seed", "wall s", "agreed", "blocked"],
        title=f"Fleet size: partition_heal at n={SCALE_N} (fast engine)",
    )
    _, anchor_t = _timed_run("partition_heal", anchor_n, "sync", seeds[0])
    table.add_row("sync anchor", anchor_n, seeds[0], f"{anchor_t:.2f}", "-", "-")
    rows = []
    for seed in seeds:
        res, fast_t = _timed_run("partition_heal", SCALE_N, "fast", seed)
        split = next(e for e in res.epochs if e.trigger == "partition")
        rows.append(
            {
                "seed": seed,
                "fast_t": fast_t,
                "anchor_t": anchor_t,
                "agreed": res.metrics.final_agreed,
                "blocked": split.partition_blocked,
                "messages": res.metrics.total_messages,
            }
        )
        table.add_row(
            "fast", SCALE_N, seed, f"{fast_t:.2f}",
            res.metrics.final_agreed, split.partition_blocked,
        )
    return table, rows


def check(head_rows, scale_rows) -> None:
    for row in head_rows:
        # Zero cross-engine drift, run by run.
        assert row["drift"] == 0, row
        assert row["agreed"], row
        # The vectorized run beats the object engine by >= 3x per seed.
        assert row["speedup"] >= MIN_SPEEDUP, row
    for row in scale_rows:
        assert row["agreed"], row
        assert row["blocked"] > 0, row  # the partition really cut traffic
        # n=10^4 speedup bound: the object engine's wall time is monotone
        # in n, so its (smaller) anchor run lower-bounds sync at n=10^4.
        assert row["anchor_t"] >= MIN_SPEEDUP * row["fast_t"], row


def metrics_from(head_rows, scale_rows):
    """Seed-deterministic metrics (+ directions) for the regression gate."""
    metrics = {}
    directions = {}
    info = {}
    for row in head_rows:
        key = f"{row['scenario']}/n={row['n']}/seed={row['seed']}"
        metrics[f"{key}/drift"] = row["drift"]          # 0: any rise fails
        metrics[f"{key}/messages"] = row["messages"]
        metrics[f"{key}/epochs"] = row["epochs"]
        metrics[f"{key}/agreed"] = float(row["agreed"])
        directions[f"{key}/agreed"] = "higher"
        info[f"{key}/speedup"] = round(row["speedup"], 1)
    for row in scale_rows:
        key = f"partition_heal/n={SCALE_N}/seed={row['seed']}"
        metrics[f"{key}/messages"] = row["messages"]
        metrics[f"{key}/partition_blocked"] = row["blocked"]
        directions[f"{key}/partition_blocked"] = "higher"
        metrics[f"{key}/agreed"] = 1.0
        directions[f"{key}/agreed"] = "higher"
        info[f"{key}/wall_s"] = round(row["fast_t"], 3)
        info[f"{key}/sync_anchor_s"] = round(row["anchor_t"], 3)
    return metrics, directions, info


def test_bench_scenario_fast(benchmark):
    head_table, head_rows = bench_once(
        benchmark, lambda: run_head_to_head(SMOKE_HEAD_N, SMOKE_HEAD_SEEDS)
    )
    scale_table, scale_rows = run_scale_leg(SMOKE_HEAD_SEEDS, SMOKE_ANCHOR_N)
    emit("scenario_fast", head_table.render() + "\n\n" + scale_table.render())
    check(head_rows, scale_rows)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    head_n = SMOKE_HEAD_N if args.smoke else HEAD_N
    seeds = SMOKE_HEAD_SEEDS if args.smoke else HEAD_SEEDS
    anchor_n = SMOKE_ANCHOR_N if args.smoke else ANCHOR_N
    head_table, head_rows = run_head_to_head(head_n, seeds)
    scale_table, scale_rows = run_scale_leg(seeds, anchor_n)
    print(head_table.render())
    print(scale_table.render())
    check(head_rows, scale_rows)
    if args.json:
        metrics, directions, info = metrics_from(head_rows, scale_rows)
        emit_json(args.json, "scenario_fast", metrics,
                  smoke=args.smoke, directions=directions, info=info)
    print(
        f"OK: zero cross-engine drift, >= {MIN_SPEEDUP:g}x per-seed speedup "
        f"(head-to-head and at n={SCALE_N})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
