"""T1.9 — Algorithm 1 / Theorem 3.15 (small ID universes escape Ω(n log n)).

Paper claim: with IDs from ``{1..n·g(n)}``, Algorithm 1 elects in
``⌈n/d⌉`` rounds with ``≤ n·d·g(n)`` messages; for constant ``g`` and
``d = o(log n)`` this is ``o(n log n)`` messages in sublinear time —
showing the Theorem 3.11 universe requirement is necessary.

Reproduced shape:

* messages ≤ n·d·g and rounds ≤ ⌈n/d⌉ on every run;
* the d-knob trades time against messages monotonically;
* at ``d = 2, g = 1`` the measured messages sit *below* the Ω(n log n)
  curve that binds large-universe algorithms.
"""


from repro.analysis import Table, sweep_sync
from repro.core import SmallIdElection
from repro.ids import assign_random, small_universe
from repro.lowerbound import bounds

from _harness import bench_once, emit

G = 1
NS = [256, 1024, 4096]
DS = [2, 8, 32]


def run_sweep():
    table = Table(
        ["n", "d", "rounds", "round bound", "messages", "msg bound", "n*log2(n)"],
        title="Theorem 3.15: Algorithm 1 on the linear ID universe {1..n}",
    )
    rows = []
    for n in NS:
        for d in DS:
            records = sweep_sync(
                [n],
                lambda n_: (lambda: SmallIdElection(d=d, g=G)),
                seeds=[0, 1, 2],
                ids_for_n=lambda n_, rng: assign_random(small_universe(n_, G), n_, rng),
            )
            for r in records:
                assert r.unique_leader
                rows.append((n, d, r))
            worst = max(records, key=lambda r: r.messages)
            table.add_row(
                n,
                d,
                int(worst.time),
                bounds.thm315_rounds(n, d),
                worst.messages,
                bounds.thm315_messages(n, d, G),
                bounds.thm311_message_lb(n),
            )
    return table, rows


def run_worst_case_time():
    """Adversarial workload: IDs packed into the top of a {1..2n}
    universe, so every early window is empty and the algorithm pays its
    full ⌈n/d⌉-round time bound (the other end of the tradeoff)."""
    g = 2
    table = Table(
        ["n", "d", "rounds", "round bound", "messages", "msg bound"],
        title="Theorem 3.15 worst case: top-block IDs in {1..2n} (time-heavy end)",
    )
    rows = []
    for n in (1024, 4096):
        for d in (8, 64):
            ids = list(range(n * g - n + 1, n * g + 1))  # the top n IDs
            from repro.sync.engine import SyncNetwork

            result = SyncNetwork(
                n, lambda: SmallIdElection(d=d, g=g), ids=ids, seed=0, max_rounds=8 * n
            ).run()
            assert result.unique_leader and result.elected_id == min(ids)
            rows.append((n, d, g, result))
            table.add_row(
                n,
                d,
                result.last_send_round,
                bounds.thm315_rounds(n, d),
                result.messages,
                bounds.thm315_messages(n, d, g),
            )
    return table, rows


def test_bench_small_id(benchmark):
    table, rows = bench_once(benchmark, run_sweep)
    emit("thm315_small_id", table.render())
    for n, d, r in rows:
        assert r.messages <= bounds.thm315_messages(n, d, G)
        assert r.time <= bounds.thm315_rounds(n, d)
        if d == 2:
            # The escape from Theorem 3.11: o(n log n) messages.
            assert r.messages < bounds.thm311_message_lb(n), (n, r.messages)


def test_bench_small_id_worst_case_time(benchmark):
    table, rows = bench_once(benchmark, run_worst_case_time)
    emit("thm315_small_id_worst_case", table.render())
    for n, d, g, result in rows:
        assert result.last_send_round <= bounds.thm315_rounds(n, d)
        # The workload really does exercise the time dimension: the
        # election ends in the window of the minimum ID, deep into the
        # schedule.
        assert result.last_send_round >= (n + 1) // (d * g), (n, d, result.last_send_round)
        assert result.messages <= bounds.thm315_messages(n, d, g)
