"""Sharded sweep scheduler — wall-clock speedup with bit-identical output.

PR 7's scheduler (``repro.analysis.sweep(grid, workers=N)``) shards
``(n, algorithm, seed-block)`` cells across worker processes.  Because
every seed owns its RNG streams, the sharded records must be **bit
identical** to the sequential ones — parallelism buys wall-clock only.
This bench quantifies exactly that on a ragged mixed-engine grid (large
fast-engine cells next to small object-engine cells, the shape the
ragged-aware big-cells-first ordering exists for).  Shape assertions:

* **bit-identity** (every mode): ``sweep(grid, workers=N)`` equals the
  ``workers=1`` records field by field under
  ``repro.analysis.canonical_record`` (volatile wall-clock extras
  stripped), and the merged metric counters are identical too;
* **speedup** (full mode, ≥ 4 cores): ``workers=4`` completes the full
  grid at least **2.5x faster** than ``workers=1``.  The floor is only
  asserted when the host actually has 4 cores — on smaller machines (and
  in smoke mode, where cells are too brief to amortize pool startup) the
  bench still verifies bit-identity and reports the measured ratio.

Run standalone::

    python benchmarks/bench_sweep_parallel.py             # full grid, 4 workers
    python benchmarks/bench_sweep_parallel.py --smoke     # CI-sized, 2 workers
    python benchmarks/bench_sweep_parallel.py --smoke --workers 2 --json \
        bench-artifacts/BENCH_sweep_parallel.json

The ``--json`` artifact carries the seed-deterministic message totals
that ``benchmarks/check_regression.py`` gates in CI against
``benchmarks/baselines/BENCH_sweep_parallel.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from _harness import bench_once, emit, emit_json

#: The acceptance floor for the full-grid run at 4 workers.
MIN_SPEEDUP = 2.5

#: Cores the speedup assertion needs; below this the pool is oversubscribed
#: and the floor is reported, not asserted.
MIN_CORES = 4


def full_grid():
    from repro.analysis import RunSpec

    return [
        RunSpec(algorithm="improved_tradeoff", n=100_000, engine="fast",
                seeds=tuple(range(12)), params={"ell": 3}),
        RunSpec(algorithm="las_vegas", n=60_000, engine="fast",
                seeds=tuple(range(12))),
        RunSpec(algorithm="improved_tradeoff", n=1024, engine="sync",
                seeds=tuple(range(8)), params={"ell": 5}),
        RunSpec(algorithm="async_tradeoff", n=256, engine="async",
                seeds=tuple(range(4)), params={"k": 2}),
    ]


def smoke_grid():
    from repro.analysis import RunSpec

    return [
        RunSpec(algorithm="improved_tradeoff", n=4096, engine="fast",
                seeds=(0, 1, 2, 3), params={"ell": 5}),
        RunSpec(algorithm="las_vegas", n=2048, engine="fast", seeds=(0, 1)),
        RunSpec(algorithm="improved_tradeoff", n=128, engine="sync",
                seeds=(0, 1), params={"ell": 3}),
        RunSpec(algorithm="async_tradeoff", n=64, engine="async",
                seeds=(0,), params={"k": 2}),
    ]


def run_comparison(grid, workers: int):
    """Sequential vs sharded execution of one grid, with merged metrics."""
    from repro.analysis import Table, canonical_record, sweep
    from repro.telemetry.metrics import MetricsRegistry

    sequential_registry = MetricsRegistry()
    t0 = time.perf_counter()
    sequential = sweep(grid, workers=1, registry=sequential_registry)
    sequential_s = time.perf_counter() - t0

    sharded_registry = MetricsRegistry()
    t0 = time.perf_counter()
    sharded = sweep(grid, workers=workers, registry=sharded_registry)
    sharded_s = time.perf_counter() - t0

    speedup = sequential_s / sharded_s if sharded_s > 0 else float("inf")
    gauges = sharded_registry.as_dict()["gauges"]
    table = Table(
        ["spec", "engine", "records", "messages", "1-worker s",
         f"{workers}-worker s", "speedup", "steals"],
        title=f"Sharded sweep, {workers} workers over {len(grid)} specs",
    )
    rows = []
    cursor = 0
    for spec in grid:
        block = sequential[cursor : cursor + len(spec.seeds)]
        cursor += len(spec.seeds)
        rows.append(
            {
                "spec": spec,
                "records": len(block),
                "messages": sum(r.messages for r in block),
            }
        )
        table.add_row(
            f"{spec.algorithm}/n={spec.n}", spec.resolved_engine(),
            len(block), sum(r.messages for r in block),
            f"{sequential_s:.2f}", f"{sharded_s:.2f}",
            f"{speedup:.2f}x", gauges.get("sweep.steals", 0),
        )
    result = {
        "rows": rows,
        "sequential": [canonical_record(r) for r in sequential],
        "sharded": [canonical_record(r) for r in sharded],
        "sequential_counters": sequential_registry.as_dict()["counters"],
        "sharded_counters": sharded_registry.as_dict()["counters"],
        "sequential_s": sequential_s,
        "sharded_s": sharded_s,
        "speedup": speedup,
        "workers": workers,
        "gauges": gauges,
    }
    return table, result


def check(result, *, require_speedup: bool) -> None:
    assert result["sharded"] == result["sequential"], (
        "sharded sweep records differ from the sequential run"
    )
    assert result["sharded_counters"] == result["sequential_counters"], (
        "merged metric counters differ between worker counts",
        result["sharded_counters"], result["sequential_counters"],
    )
    if require_speedup:
        assert result["speedup"] >= MIN_SPEEDUP, (
            f"sweep(workers={result['workers']}) must be >= {MIN_SPEEDUP}x "
            f"faster than workers=1 on the full grid; measured "
            f"{result['speedup']:.2f}x ({result['sequential_s']:.2f}s vs "
            f"{result['sharded_s']:.2f}s)"
        )


def metrics_from(result):
    metrics = {}
    for row in result["rows"]:
        spec = row["spec"]
        key = f"{spec.algorithm}/{spec.resolved_engine()}/n={spec.n}"
        metrics[f"{key}/total_messages"] = row["messages"]
        metrics[f"{key}/records"] = row["records"]
    info = {
        "wall_s": {
            "workers=1": result["sequential_s"],
            f"workers={result['workers']}": result["sharded_s"],
        },
        "speedup": result["speedup"],
        "steals": result["gauges"].get("sweep.steals", 0),
        "cpu_count": os.cpu_count(),
    }
    return metrics, info


def test_bench_sweep_parallel(benchmark):
    import pytest

    pytest.importorskip("numpy")
    table, result = bench_once(
        benchmark, lambda: run_comparison(smoke_grid(), workers=2)
    )
    emit("sweep_parallel", table.render())
    check(result, require_speedup=False)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized grid")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: 2 smoke, 4 full)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("bench_sweep_parallel needs numpy (pip install numpy, "
              "or pip install -e '.[fast]')", file=sys.stderr)
        return 2
    workers = args.workers or (2 if args.smoke else 4)
    grid = smoke_grid() if args.smoke else full_grid()
    table, result = run_comparison(grid, workers)
    print(table.render())
    # The speedup floor is asserted on the full grid only, and only when
    # the host actually has the cores — smoke cells are too brief to
    # amortize pool startup, and 1-core CI boxes cannot parallelize.
    cores = os.cpu_count() or 1
    require_speedup = not args.smoke and cores >= MIN_CORES
    check(result, require_speedup=require_speedup)
    if not require_speedup and not args.smoke:
        print(f"note: speedup floor not asserted ({cores} cores < {MIN_CORES})")
    if args.json:
        metrics, info = metrics_from(result)
        emit_json(args.json, "sweep_parallel", metrics, smoke=args.smoke, info=info)
    print(f"OK: bit-identical records at workers={workers}; "
          f"measured speedup {result['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
