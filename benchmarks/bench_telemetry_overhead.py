"""Telemetry overhead guard — aggregate counters must stay near-free.

The fast engine's telemetry hooks live inside ``tick`` and the message-
accounting primitives, so every run pays for them: a ``None`` check when
telemetry is off, a constant number of O(1)/O(batch) tallies per round
when on.  This bench pins both budgets on the ``BENCH_fastsync_batch``
workload (batched ``improved_tradeoff`` sweeps):

* **off-arm parity** (full mode): the telemetry-disabled batched run
  stays within **5%** of an interleaved reference measurement of the
  identical PR 5 batch path (same ``run_fast_batch`` call — the disabled
  hooks are just ``None`` tests);
* **on-arm budget** (full mode): enabling :class:`FastTelemetry`
  aggregate counters costs at most **15%** per-seed wall time over the
  disabled arm;
* **drift gate** (every mode, seed-deterministic, CI-gated): the
  telemetry tallies must equal the engine's own result counters *bit
  exactly* — total messages, per-round totals, per-kind totals — so the
  regression gate fails on any counter skew, not just on slowdowns.

Wall-clock ratios are machine-dependent and go in the ungated ``info``
section; the gated ``metrics`` carry the drift counts (always 0) plus
the workload's message/round counts.

Run standalone::

    python benchmarks/bench_telemetry_overhead.py            # full: n = 10^5
    python benchmarks/bench_telemetry_overhead.py --smoke    # CI-sized
    python benchmarks/bench_telemetry_overhead.py --smoke --json \
        bench-artifacts/BENCH_telemetry_overhead.json
"""

from __future__ import annotations

import argparse
import sys
import time

from _harness import bench_once, emit, emit_json

#: (n, ell, batch) sweep points, mirroring bench_fastsync_batch.
FULL_POINTS = [(100_000, 3, 64)]
SMOKE_POINTS = [(512, 5, 8), (4096, 5, 8)]

#: Interleaved timing repetitions per arm (median is reported).
FULL_REPS = 3
SMOKE_REPS = 1

#: Full-mode wall-clock budgets.
MAX_OFF_RATIO = 1.05      # disabled telemetry vs interleaved reference
MAX_ON_RATIO = 1.15       # aggregate counters vs disabled telemetry


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_sweep(points, reps):
    from repro.analysis import Table, run_fast_batch
    from repro.telemetry import FastTelemetry

    table = Table(
        ["n", "ell", "batch", "mode", "ref s/seed", "off s/seed",
         "on s/seed", "off ratio", "on ratio", "drift"],
        title="Telemetry overhead on the batched fast engine",
    )
    rows = []
    for n, ell, batch in points:
        seeds = list(range(batch))
        kwargs = dict(seeds=seeds, params={"ell": ell})

        def _timed(**extra):
            t0 = time.perf_counter()
            records = run_fast_batch(n, "improved_tradeoff", **kwargs, **extra)
            return (time.perf_counter() - t0) / batch, records

        # Interleave the arms so drift in machine load hits all three.
        ref_times, off_times, on_times = [], [], []
        telemetries = []
        records = None
        for _ in range(reps):
            ref_times.append(_timed()[0])
            off_times.append(_timed()[0])
            telemetry = FastTelemetry()
            on_time, records = _timed(telemetry=telemetry, keep_result=True)
            on_times.append(on_time)
            telemetries.append(telemetry)

        # Counter drift vs the engine's own per-lane results (bit-exact
        # across every telemetry-enabled repetition).
        drift = 0
        for telemetry in telemetries:
            for lane, record in enumerate(records):
                result = record.extra["result"]
                totals = telemetry.sends_by_round(lane)
                drift += abs(sum(totals.values()) - record.messages)
                drift += int(totals != dict(result.sends_by_round))
                drift += int(
                    telemetry.messages_by_kind(lane)
                    != dict(result.messages_by_kind)
                )

        ref_s, off_s, on_s = map(_median, (ref_times, off_times, on_times))
        rows.append(
            {
                "n": n,
                "ell": ell,
                "batch": batch,
                "mode": records[0].extra["mode"],
                "records": records,
                "messages": sum(r.messages for r in records) / len(records),
                "rounds": sum(r.time for r in records) / len(records),
                "ref_per_seed": ref_s,
                "off_per_seed": off_s,
                "on_per_seed": on_s,
                "off_ratio": off_s / ref_s,
                "on_ratio": on_s / off_s,
                "drift": drift,
            }
        )
        table.add_row(
            n, ell, batch, rows[-1]["mode"], f"{ref_s:.3f}", f"{off_s:.3f}",
            f"{on_s:.3f}", f"{rows[-1]['off_ratio']:.3f}",
            f"{rows[-1]['on_ratio']:.3f}", drift,
        )
    return table, rows


def check(rows, *, require_budget: bool) -> None:
    for row in rows:
        assert row["drift"] == 0, (
            "telemetry counters drifted from the engine results", row,
        )
        assert all(r.unique_leader for r in row["records"]), row["n"]
    # Wall-clock budgets are asserted in full mode only — smoke points
    # are too small for stable timing and CI machines too noisy.
    if require_budget:
        for row in rows:
            assert row["off_ratio"] <= MAX_OFF_RATIO, (
                f"disabled telemetry must stay within {MAX_OFF_RATIO:.0%} of "
                f"the batch baseline at n={row['n']}; measured "
                f"{row['off_ratio']:.3f}x"
            )
            assert row["on_ratio"] <= MAX_ON_RATIO, (
                f"aggregate counters must cost <= {MAX_ON_RATIO - 1:.0%} at "
                f"n={row['n']}; measured {row['on_ratio']:.3f}x"
            )


def metrics_from(rows):
    metrics = {}
    info = {"per_seed_wall_s": {}, "ratios": {}}
    for row in rows:
        key = f"improved_tradeoff/ell={row['ell']}/n={row['n']}/batch={row['batch']}"
        metrics[f"{key}/mean_messages"] = row["messages"]
        metrics[f"{key}/rounds"] = row["rounds"]
        metrics[f"{key}/counter_drift"] = row["drift"]
        info["per_seed_wall_s"][key] = {
            "reference": row["ref_per_seed"],
            "telemetry_off": row["off_per_seed"],
            "telemetry_on": row["on_per_seed"],
        }
        info["ratios"][key] = {
            "off_vs_reference": row["off_ratio"],
            "on_vs_off": row["on_ratio"],
        }
    return metrics, info


def test_bench_telemetry_overhead(benchmark):
    import pytest

    pytest.importorskip("numpy")
    table, rows = bench_once(
        benchmark, lambda: run_sweep(SMOKE_POINTS, SMOKE_REPS)
    )
    emit("telemetry_overhead", table.render())
    check(rows, require_budget=False)


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized sweep")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a BENCH_*.json trajectory artifact")
    args = parser.parse_args(argv)
    try:
        import numpy  # noqa: F401
    except ImportError:
        print("bench_telemetry_overhead needs numpy (pip install numpy, "
              "or pip install -e '.[fast]')", file=sys.stderr)
        return 2
    if args.smoke:
        table, rows = run_sweep(SMOKE_POINTS, SMOKE_REPS)
    else:
        table, rows = run_sweep(FULL_POINTS, FULL_REPS)
    print(table.render())
    check(rows, require_budget=not args.smoke)
    if args.json:
        metrics, info = metrics_from(rows)
        emit_json(args.json, "telemetry_overhead", metrics, smoke=args.smoke,
                  info=info)
    worst = max(rows, key=lambda r: r["on_ratio"])
    print(f"OK: zero counter drift; worst telemetry-on cost "
          f"{worst['on_ratio']:.3f}x at n={worst['n']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
