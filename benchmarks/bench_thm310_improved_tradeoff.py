"""T1.3 — Table 1 row "Algorithm, Theorem 3.10" (sync det, simultaneous).

Paper claim: for any odd ``ℓ ≥ 3`` there is a deterministic algorithm
with time ``ℓ`` and messages ``O(ℓ·n^(1 + 2/(ℓ+1)))``.

Reproduced shape:
* measured rounds == ℓ exactly;
* measured messages stay below the bound formula (constant ≤ 2);
* the fitted message exponent over an n-sweep matches ``1 + 2/(ℓ+1)``.
"""


from repro.analysis import Table, fit_power_law, sweep_sync
from repro.core import ImprovedTradeoffElection
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import bounds

from _harness import bench_once, emit

NS = [256, 512, 1024, 2048, 4096]
ELLS = [3, 5, 7, 9]


def ids_for_n(n, rng):
    return assign_random(tradeoff_universe(n), n, rng)


def run_sweep():
    table = Table(
        ["ell", "n", "rounds", "messages", "paper bound", "used/bound"],
        title="Theorem 3.10: ell-round deterministic election, messages vs O(ell*n^(1+2/(ell+1)))",
    )
    fits = {}
    for ell in ELLS:
        records = sweep_sync(
            NS,
            lambda n: (lambda: ImprovedTradeoffElection(ell=ell)),
            seeds=[0],
            ids_for_n=ids_for_n,
        )
        for r in records:
            assert r.unique_leader
            assert r.time == ell
            bound = bounds.thm310_messages(r.n, ell)
            assert r.messages <= 2 * bound
            table.add_row(ell, r.n, int(r.time), r.messages, bound, r.messages / bound)
        fit = fit_power_law([r.n for r in records], [r.messages for r in records])
        fits[ell] = fit
        table.add_section(
            f"ell={ell}: fitted messages ~ {fit}; theory exponent {1 + 2 / (ell + 1):.3f}"
        )
    return table, fits


def test_bench_thm310(benchmark):
    table, fits = bench_once(benchmark, run_sweep)
    emit("thm310_improved_tradeoff", table.render())
    for ell, fit in fits.items():
        theory = 1 + 2 / (ell + 1)
        assert abs(fit.exponent - theory) < 0.2, (ell, fit.exponent, theory)
        assert fit.r_squared > 0.97
