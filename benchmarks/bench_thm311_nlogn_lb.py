"""T1.2 — Table 1 row "Lower Bound, Theorem 3.11" (Ω(n log n) time-bounded).

Theorem 3.11: with an ID universe of size ``n·log2(n)·T(n)^(log2 n - 1)``,
any ``T(n)``-time algorithm sends ``Ω(n log n)`` messages.  The proof
pipeline is (a) the Lemma 3.12 multicast→single-send reduction and (b) a
port-opening count against single-send algorithms.

Reproduced shape:

* the Lemma 3.12 transformation is *executed*: identical leader and
  message count, time dilated exactly n-fold (the reduction is lossless
  in messages — the step the theorem leans on);
* port-opens (the quantity Lemma 3.13/3.14 counts) of the deterministic
  algorithms sit above ``c·n·log2 n`` for the message-heavy regimes and
  the whole message count dominates the n·log n curve whenever the time
  budget is ``O(polylog)``;
* the universe-size requirement is tabulated — it explodes doubly fast,
  which is exactly why Algorithm 1 (linear universe, bench_small_id)
  escapes the bound.
"""

from repro.analysis import Table
from repro.core import ImprovedTradeoffElection
from repro.lowerbound import bounds, single_send_factory
from repro.net.ports import CanonicalPortMap
from repro.sync.engine import SyncNetwork

from _harness import bench_once, emit


def run_single_send_demo():
    rows = []
    for n in (16, 32, 64):
        direct = SyncNetwork(
            n, lambda: ImprovedTradeoffElection(ell=3), seed=0, port_map=CanonicalPortMap(n)
        ).run()
        wrapped = SyncNetwork(
            n,
            single_send_factory(lambda: ImprovedTradeoffElection(ell=3)),
            seed=0,
            port_map=CanonicalPortMap(n),
            max_rounds=64 * n,
        ).run()
        rows.append((n, direct, wrapped))
    table = Table(
        ["n", "direct msgs", "single-send msgs", "direct rounds", "single-send rounds", "dilation"],
        title="Lemma 3.12 transformation, executed (multicast -> single-send)",
    )
    for n, direct, wrapped in rows:
        table.add_row(
            n,
            direct.messages,
            wrapped.messages,
            direct.rounds_executed,
            wrapped.rounds_executed,
            wrapped.rounds_executed / direct.rounds_executed,
        )
    return table, rows


def run_nlogn_table():

    table = Table(
        ["n", "Omega(n log n)", "thm310 ell=3 msgs", "port opens", "universe log2-size (T=ell)"],
        title="Theorem 3.11: the n log n floor vs fast deterministic algorithms",
    )
    rows = []
    for n in (256, 1024, 4096):
        result = SyncNetwork(n, lambda: ImprovedTradeoffElection(ell=3), seed=0).run()
        floor = bounds.thm311_message_lb(n)
        table.add_row(
            n,
            floor,
            result.messages,
            result.metrics.port_opens,
            bounds.thm311_universe_log2_size(n, 3),
        )
        rows.append((n, floor, result))
    return table, rows


def test_bench_lemma312_reduction(benchmark):
    table, rows = bench_once(benchmark, run_single_send_demo)
    emit("thm311_single_send", table.render())
    for n, direct, wrapped in rows:
        assert wrapped.leaders == direct.leaders
        assert wrapped.messages == direct.messages  # lossless in messages
        assert (direct.rounds_executed - 1) * n < wrapped.rounds_executed
        assert wrapped.rounds_executed <= direct.rounds_executed * n + n


def test_bench_thm311_floor(benchmark):
    table, rows = bench_once(benchmark, run_nlogn_table)
    emit("thm311_nlogn_floor", table.render())
    for n, floor, result in rows:
        # Any O(1)-round deterministic algorithm must clear the floor
        # (here by a polynomial margin, since ell=3 costs ~n^1.5).
        assert result.messages >= floor / 4, (n, result.messages, floor)
