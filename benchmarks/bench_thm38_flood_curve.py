"""T1.1 (continued) — the empirical Theorem 3.8 tradeoff curve.

Theorem 3.8 (restated as a curve): with a per-node budget of ``f``
messages per round, a majority communication component — which any
correct deterministic algorithm must form before terminating
(Corollary 3.7) — needs at least ``(log2 n − 1)/(log2 f + 1) + 1``
rounds.

The flood probe spends exactly that budget as fast as ports allow, the
capacity adversary routes the ports, and we record the first round with
a majority component.  Expected shape:

* measured rounds-to-majority ≥ the theorem floor at every ``f``
  (the floor is sound);
* the measured curve *decreases* in ``f`` (the tradeoff direction);
* uniform budget spreading pays far above the floor — the greedy
  capacity-first adversary holds it to ~linear growth — whereas
  Theorem 3.10's survivor/referee concentration nearly meets the floor
  (compare: at ``f ≈ 3√n`` it reaches a majority in its final broadcast
  round, ℓ).  The gap is the paper's design lesson: concentrate the
  budget on few senders, don't spread it.
"""

from repro.analysis import Table
from repro.lowerbound.flood_experiment import flood_sweep

from _harness import bench_once, emit

N = 512
FS = [4, 8, 16, 32, 64]


def run_curve():
    outcomes = flood_sweep(N, FS)
    table = Table(
        ["f (msgs/node/round)", "measured rounds to majority", "Thm 3.8 floor", "total messages"],
        title=f"Empirical Theorem 3.8 curve at n={N} (uniform flooding vs capacity adversary)",
    )
    for out in outcomes:
        table.add_row(out.f, out.rounds_to_majority, out.theorem_floor, out.messages)
    return table, outcomes


def test_bench_thm38_flood_curve(benchmark):
    table, outcomes = bench_once(benchmark, run_curve)
    emit("thm38_flood_curve", table.render())
    rounds = []
    for out in outcomes:
        assert out.rounds_to_majority is not None
        # soundness of the floor:
        assert out.rounds_to_majority >= out.theorem_floor, (out.f, out.rounds_to_majority)
        rounds.append(out.rounds_to_majority)
    # tradeoff direction: more budget, fewer rounds (strictly here).
    assert rounds == sorted(rounds, reverse=True), rounds
    assert rounds[-1] < rounds[0] / 3
