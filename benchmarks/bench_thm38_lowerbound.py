"""T1.1 + T1.5 — Table 1 rows "Lower Bound, Theorem 3.8" and the [1] LBs.

Theorem 3.8: any deterministic algorithm sending ``≤ n·f(n)`` messages
needs ``> (log2 n - 1)/(log2 f + 1) + 1`` rounds; equivalently any
``k``-round algorithm sends ``Ω((n/2)^(1+1/(k-1)))`` messages.

A lower bound is reproduced three ways:

1. **Formula table** — the LB curve next to the Theorem 3.10 UB curve
   (nearly matching, as the paper claims), and next to Afek–Gafni's older
   LB (our bound is polynomially stronger for constant k; AG's wins a
   log factor at k = Θ(log n) — the §1.2 comparison).
2. **No algorithm beats it** — measured messages of both deterministic
   algorithms dominate the k-round LB evaluated at their round budgets.
3. **Adversary mechanism** — the Lemma 3.9 component-capacity adversary
   keeps the largest component's per-round growth factor near the
   algorithm's message rate ``2f``, and a majority component (the
   termination prerequisite of Corollary 3.7) appears only in the final
   broadcast round.
"""

from repro.analysis import Table, sweep_sync
from repro.core import AfekGafniElection, ImprovedTradeoffElection
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import bounds, run_under_capacity_adversary

from _harness import bench_once, emit

N = 4096
KS = [2, 3, 4, 5, 7]


def run_formula_table():
    table = Table(
        ["k (rounds)", "Thm 3.8 LB", "AG [1] LB", "Thm 3.10 UB (ell=k)", "LB/UB gap"],
        title=f"Theorem 3.8 vs Afek-Gafni lower bounds and the Thm 3.10 upper bound, n={N}",
    )
    for k in KS:
        lb = bounds.thm38_message_lb(N, k)
        ag = bounds.ag_k_round_lb(N, k)
        ub = bounds.thm310_messages(N, k) if k % 2 == 1 else float("nan")
        gap = ub / lb if k % 2 == 1 else float("nan")
        table.add_row(k, lb, ag, ub, gap)
    return table


def run_dominance_check():
    rows = []
    def ids_for_n(n, rng):
        return assign_random(tradeoff_universe(n), n, rng)

    for ell in (3, 5, 7):
        for rec in sweep_sync(
            [1024, 4096],
            lambda n: (lambda: ImprovedTradeoffElection(ell=ell)),
            seeds=[0],
            ids_for_n=ids_for_n,
        ):
            lb = bounds.thm38_message_lb(rec.n, int(rec.time))
            rows.append(("thm310", ell, rec.n, rec.messages, lb))
    for ell in (4, 6):
        for rec in sweep_sync(
            [1024, 4096],
            lambda n: (lambda: AfekGafniElection(ell=ell)),
            seeds=[0],
            ids_for_n=ids_for_n,
        ):
            lb = bounds.thm38_message_lb(rec.n, int(rec.time))
            rows.append(("afek_gafni", ell, rec.n, rec.messages, lb))
    table = Table(
        ["algorithm", "ell", "n", "measured msgs", "Thm 3.8 LB at its round count"],
        title="No deterministic algorithm beats the Theorem 3.8 floor",
    )
    for row in rows:
        table.add_row(*row)
    return table, rows


def run_adversary_trace():
    table = Table(
        ["n", "ell", "round", "largest component", "growth factor"],
        title="Lemma 3.9 adversary: component growth under capacity-first routing",
    )
    checks = []
    for n, ell in ((256, 5), (1024, 5)):
        result, trace = run_under_capacity_adversary(
            n, lambda: ImprovedTradeoffElection(ell=ell), seed=0
        )
        assert result.unique_leader  # the adversary cannot break correctness
        prev = 1
        for r in trace.rounds:
            largest = trace.largest_by_round.get(r, prev)
            table.add_row(n, ell, r, largest, largest / prev)
            prev = largest
        checks.append((n, result, trace))
        table.add_section(
            f"n={n}: majority component at round {trace.rounds_to_majority()} "
            f"of {result.last_send_round} send rounds"
        )
    return table, checks


def test_bench_thm38_formulas(benchmark):
    table = bench_once(benchmark, run_formula_table)
    emit("thm38_lowerbound_formulas", table.render())
    # §1.2 comparison: polynomially stronger for constant k...
    assert bounds.thm38_message_lb(N, 2) > bounds.ag_k_round_lb(N, 2)
    # ...but AG wins a Θ(log n) factor at k = Θ(log n).
    import math

    k_log = int(math.log2(N))
    assert bounds.ag_k_round_lb(N, k_log) > bounds.thm38_message_lb(N, k_log)


def test_bench_thm38_no_algorithm_beats_it(benchmark):
    table, rows = bench_once(benchmark, run_dominance_check)
    emit("thm38_dominance", table.render())
    for algo, ell, n, measured, lb in rows:
        assert measured >= lb, (algo, ell, n, measured, lb)


def test_bench_thm38_adversary_growth(benchmark):
    table, checks = bench_once(benchmark, run_adversary_trace)
    emit("thm38_adversary_growth", table.render())
    for n, result, trace in checks:
        majority_round = trace.rounds_to_majority()
        assert majority_round is not None
        # Corollary 3.7: termination needs a majority component, which
        # the adversary delays to the final broadcast round.
        assert majority_round >= result.last_send_round - 1
