"""T1.10 — Table 1 row "Algorithm, Theorem 4.1" (2-round, adversarial wake).

Paper claim: 2 rounds, success probability ``≥ 1 - ε - 1/n``, expected
``O(n^(3/2)·log(1/ε))`` messages, matching the Theorem 4.2 lower bound.

Reproduced shape:
* success rate ≥ 1 - ε - slack across root-set sizes {1, √n, n/2, n};
* worst-root-set mean messages fit exponent ≈ 1.5 and stay under the
  bound formula;
* measured messages dominate the Theorem 4.2 Ω(n^(3/2)) floor at the
  all-roots adversary (the algorithm is tight).
"""


from repro.analysis import Table, fit_power_law, sweep_sync
from repro.core import AdversarialTwoRoundElection
from repro.lowerbound import bounds
from repro.mathutil import ceil_sqrt

from _harness import bench_once, emit

EPS = 0.05
NS = [256, 1024, 4096]
SEEDS = list(range(6))


def run_sweep():
    table = Table(
        ["n", "roots", "success rate", "mean msgs", "paper bound", "Thm 4.2 floor"],
        title=f"Theorem 4.1: 2-round election under adversarial wake-up (eps={EPS})",
    )
    worst_means = []
    for n in NS:
        worst = 0.0
        for label, root_count in (
            ("1", 1),
            ("sqrt(n)", ceil_sqrt(n)),
            ("n/2", n // 2),
            ("n", n),
        ):
            records = sweep_sync(
                [n],
                lambda n_: (lambda: AdversarialTwoRoundElection(epsilon=EPS)),
                seeds=SEEDS,
                awake_for_n=lambda n_, rng, rc=root_count: rng.sample(range(n_), rc),
            )
            rate = sum(r.unique_leader for r in records) / len(records)
            mean = sum(r.messages for r in records) / len(records)
            worst = max(worst, mean)
            for r in records:
                assert r.time <= 2
                assert r.leaders <= 1
            table.add_row(
                n,
                label,
                rate,
                mean,
                bounds.thm41_expected_messages(n, EPS),
                bounds.thm42_message_lb(n),
            )
        worst_means.append(worst)
        table.add_section(f"n={n}: worst-case-root-set mean messages {worst:,.0f}")
    fit = fit_power_law(NS, worst_means)
    table.add_section(f"worst-case fit: {fit}; theory exponent 1.5")
    return table, worst_means, fit


def test_bench_thm41(benchmark):
    table, worst_means, fit = bench_once(benchmark, run_sweep)
    emit("thm41_adversarial_2round", table.render())
    assert 1.3 <= fit.exponent <= 1.7, fit
    for n, mean in zip(NS, worst_means):
        assert mean <= 4 * bounds.thm41_expected_messages(n, EPS), (n, mean)
        # tightness against Theorem 4.2 (constant-free floor):
        assert mean >= bounds.thm42_message_lb(n) / 4, (n, mean)
