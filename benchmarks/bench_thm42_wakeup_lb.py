"""T1.11 — Table 1 row "Lower Bound, Theorem 4.2" (Ω(n^(3/2)), 2 rounds).

Theorem 4.2: any 2-round algorithm that wakes every node with constant
probability sends Ω(n^(3/2)) expected messages (adversarial wake-up).

Falsification experiment over the two-parameter spray family (root
fan-out ``n^α``, child fan-out ``~n^β``):

* budgets with ``α + β < 1`` *fail* against a single root — there is no
  cheap 2-round wake-up;
* calibrated budgets (``β = 1 - α`` with the coupon-collector boost)
  succeed, but their cost against a ``√n``-root adversary is ≥ n^(3/2)
  for *every* α — the barrier has no way around it, only a best point
  near α = 1/2 (which is exactly Theorem 4.1's choice).
"""

import math

from repro.analysis import Table
from repro.lowerbound import bounds, wakeup_success_rate

from _harness import bench_once, emit

N = 1024
ALPHAS = [0.25, 0.4, 0.5, 0.6, 0.75]
TRIALS = 5


def run_experiment():
    boost = 2 * math.log(N)
    table = Table(
        [
            "alpha",
            "beta",
            "1-root success",
            "1-root msgs",
            "sqrt(n)-roots msgs",
            "n^1.5",
        ],
        title=f"Theorem 4.2 falsification sweep (n={N}, child boost 2 ln n)",
    )
    calibrated = []
    for alpha in ALPHAS:
        beta = 1 - alpha
        rate1, msgs1 = wakeup_success_rate(
            N, alpha, beta, boost=boost, root_count=1, trials=TRIALS
        )
        _, msgs_sqrt = wakeup_success_rate(
            N, alpha, beta, boost=boost, root_count=int(N**0.5), trials=TRIALS
        )
        calibrated.append((alpha, rate1, msgs_sqrt))
        table.add_row(alpha, beta, rate1, msgs1, msgs_sqrt, N**1.5)
    # under-provisioned rows (alpha + beta < 1)
    under = []
    for alpha, beta in ((0.5, 0.3), (0.3, 0.5)):
        rate, msgs = wakeup_success_rate(
            N, alpha, beta, boost=boost, root_count=1, trials=TRIALS
        )
        under.append((alpha, beta, rate))
        table.add_row(alpha, beta, rate, msgs, float("nan"), N**1.5)
    table.add_section("last two rows: alpha + beta < 1 (sub-n^(3/2) budgets) fail")
    return table, calibrated, under


def test_bench_thm42(benchmark):
    table, calibrated, under = bench_once(benchmark, run_experiment)
    emit("thm42_wakeup_lb", table.render())
    floor = bounds.thm42_message_lb(N)
    for alpha, rate1, msgs_sqrt in calibrated:
        assert rate1 >= 0.8, (alpha, rate1)  # calibrated budgets succeed
        assert msgs_sqrt >= floor, (alpha, msgs_sqrt)  # ...and pay n^1.5
    for alpha, beta, rate in under:
        assert rate <= 0.2, (alpha, beta, rate)  # cheap budgets fail
