"""T1.12 + T1.13 — Table 1 rows "Algorithm, Theorem 5.1" and the [14] row.

Paper claim (Thm 5.1): for ``k ∈ [2, O(log n/log log n)]``, whp a unique
leader within ``k + 8`` time units and ``O(n^(1+1/k))`` messages — the
first asynchronous message/time tradeoff.

Reproduced shape:
* success whp, all k, under unit-delay and random-delay adversaries;
* time ≤ k + 8 (+1 for the final announcement hop) under unit delays;
* message exponent of the dominant wake-up spray matches 1 + 1/k;
* at maximal k the algorithm approaches the [14] reference point
  (near-linear messages, ~log time) — the bench prints that row from
  the closed forms next to our nearest measured point.

Also prints the γ (wake fan-out constant) ablation: DESIGN.md ablation #2.
"""


from repro.analysis import Table, fit_power_law, sweep_async
from repro.asyncnet import UnitDelayScheduler
from repro.core import AsyncTradeoffElection
from repro.lowerbound import bounds

from _harness import bench_once, emit

NS = [256, 1024, 4096]
KS = [2, 3, 4, 6]
SEEDS = list(range(4))


def run_sweep():
    table = Table(
        ["k", "n", "success", "mean msgs", "O(n^(1+1/k))", "max time", "k+8"],
        title="Theorem 5.1: asynchronous tradeoff (unit-delay adversary)",
    )
    fits = {}
    for k in KS:
        wake_counts = []
        for n in NS:
            records = sweep_async(
                [n],
                lambda n_: (lambda: AsyncTradeoffElection(k=k)),
                seeds=SEEDS,
                scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
                max_events=8_000_000,
            )
            rate = sum(r.unique_leader for r in records) / len(records)
            mean = sum(r.messages for r in records) / len(records)
            worst_time = max(r.time for r in records if r.unique_leader)
            table.add_row(
                k, n, rate, mean, bounds.thm51_messages(n, k), worst_time, bounds.thm51_time(k)
            )
            wake_counts.append(mean)
        fits[k] = fit_power_law(NS, wake_counts)
        table.add_section(f"k={k}: fitted {fits[k]}; theory exponent {1 + 1 / k:.3f}")
    return table, fits


def run_reference_row():
    n = 4096
    kmax = bounds.thm51_max_k(n)
    records = sweep_async(
        [n],
        lambda n_: (lambda: AsyncTradeoffElection(k=kmax)),
        seeds=SEEDS,
        scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
        max_events=8_000_000,
    )
    mean = sum(r.messages for r in records) / len(records)
    worst_time = max(r.time for r in records)
    table = Table(
        ["row", "time", "messages"],
        title=f"[14] reference row vs Theorem 5.1 at k_max={kmax} (n={n})",
    )
    table.add_row("[14] (closed form, not reimplemented)", bounds.kmp14_time(n), bounds.kmp14_messages(n))
    table.add_row(f"Thm 5.1 measured at k={kmax}", worst_time, mean)
    table.add_row(f"Thm 5.1 bound at k={kmax}", bounds.thm51_time(kmax), bounds.thm51_messages(n, kmax))
    return table, mean, worst_time, kmax, n


def run_gamma_ablation():
    n, k = 1024, 3
    table = Table(
        ["gamma", "success rate", "awake fraction", "mean msgs"],
        title=f"Ablation: wake-up fan-out constant gamma (n={n}, k={k})",
    )
    for gamma in (0.5, 1.5, 3.0, 6.0):
        records = sweep_async(
            [n],
            lambda n_: (lambda: AsyncTradeoffElection(k=k, gamma=gamma)),
            seeds=list(range(6)),
            max_events=8_000_000,
        )
        rate = sum(r.unique_leader for r in records) / len(records)
        awake = sum(r.awake for r in records) / (len(records) * n)
        mean = sum(r.messages for r in records) / len(records)
        table.add_row(gamma, rate, awake, mean)
    return table


def test_bench_thm51_tradeoff(benchmark):
    table, fits = bench_once(benchmark, run_sweep)
    emit("thm51_async_tradeoff", table.render())
    for k, fit in fits.items():
        assert fit.exponent <= 1 + 1 / k + 0.1, (k, fit)
        if k <= 3:
            assert fit.exponent >= 1 + 1 / k - 0.25, (k, fit)


def test_bench_thm51_time_bound(benchmark):
    def run():
        bad = []
        for k in (2, 4):
            records = sweep_async(
                [1024],
                lambda n_: (lambda: AsyncTradeoffElection(k=k)),
                seeds=list(range(5)),
                scheduler_for_n=lambda n_, rng: UnitDelayScheduler(),
                max_events=8_000_000,
            )
            for r in records:
                if r.unique_leader and r.time > bounds.thm51_time(k) + 1:
                    bad.append((k, r.time))
        return bad

    bad = bench_once(benchmark, run)
    assert not bad, bad


def test_bench_kmp14_reference(benchmark):
    table, mean, worst_time, kmax, n = bench_once(benchmark, run_reference_row)
    emit("thm51_kmp14_reference", table.render())
    # near-linear messages at k_max: within n * polylog
    assert mean <= n * (bounds.thm514_time(n) ** 2), (mean, n)


def test_bench_thm51_gamma_ablation(benchmark):
    table = bench_once(benchmark, run_gamma_ablation)
    emit("thm51_gamma_ablation", table.render())
