"""Benchmark-regression gate for CI.

Compares freshly produced ``BENCH_*.json`` artifacts (written by the
smoke benches via ``_harness.emit_json``) against the checked-in
baselines in ``benchmarks/baselines/`` and fails when any metric is
worse than the baseline by more than ``--threshold`` (relative, default
25%).

Only the ``metrics`` section participates — those values are
seed-deterministic (message/round counts, rates), so any drift is a
code-behavior change, not machine noise.  Wall times live in ``info``
and are reported but never gated.  Metrics default to lower-is-better;
a baseline's ``directions`` map flags higher-is-better entries
(e.g. survivor rates).  *Improvements* beyond the threshold pass but
are reported, as a nudge to refresh the baseline.

Usage (what the CI ``bench-regression`` job runs)::

    python benchmarks/bench_fastsync_scale.py --smoke \
        --json bench-artifacts/BENCH_fastsync_scale.json
    python benchmarks/bench_failover_churn.py --smoke \
        --json bench-artifacts/BENCH_failover_churn.json
    python benchmarks/check_regression.py --artifact-dir bench-artifacts
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Tuple

DEFAULT_THRESHOLD = 0.25
BASELINE_DIR = pathlib.Path(__file__).resolve().parent / "baselines"


def compare_metrics(
    baseline: Dict, artifact: Dict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Compare one artifact against its baseline.

    Returns ``(failures, notes)``: failures are regressions or missing
    metrics; notes are non-fatal observations (new metrics, large
    improvements worth a baseline refresh).
    """
    failures: List[str] = []
    notes: List[str] = []
    directions = baseline.get("directions", {})
    base_metrics = baseline.get("metrics", {})
    new_metrics = artifact.get("metrics", {})
    for key, base in sorted(base_metrics.items()):
        if key not in new_metrics:
            failures.append(f"metric disappeared: {key}")
            continue
        current = new_metrics[key]
        higher_is_better = directions.get(key) == "higher"
        if base == 0:
            # No relative scale: any move in the bad direction fails.
            regressed = current < 0 if higher_is_better else current > 0
            improved = False
            change_text = f"{base} -> {current}"
        else:
            change = (current - base) / abs(base)
            regressed = (
                change < -threshold if higher_is_better else change > threshold
            )
            improved = (
                change > threshold if higher_is_better else change < -threshold
            )
            change_text = f"{base:g} -> {current:g} ({change:+.1%})"
        if regressed:
            failures.append(f"regression: {key}: {change_text}")
        elif improved:
            notes.append(f"improvement (consider refreshing baseline): {key}: {change_text}")
    for key in sorted(set(new_metrics) - set(base_metrics)):
        notes.append(f"new metric (not in baseline): {key}")
    return failures, notes


def check_directory(
    baseline_dir: pathlib.Path, artifact_dir: pathlib.Path, threshold: float
) -> Tuple[List[str], List[str]]:
    """Compare every baseline against the matching artifact file."""
    failures: List[str] = []
    notes: List[str] = []
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        failures.append(f"no BENCH_*.json baselines under {baseline_dir}")
    for baseline_path in baselines:
        artifact_path = artifact_dir / baseline_path.name
        if not artifact_path.exists():
            failures.append(f"artifact missing: {artifact_path}")
            continue
        baseline = json.loads(baseline_path.read_text())
        artifact = json.loads(artifact_path.read_text())
        bench_failures, bench_notes = compare_metrics(baseline, artifact, threshold)
        failures.extend(f"[{baseline_path.name}] {f}" for f in bench_failures)
        notes.extend(f"[{baseline_path.name}] {n}" for n in bench_notes)
    for artifact_path in sorted(artifact_dir.glob("BENCH_*.json")):
        if not (baseline_dir / artifact_path.name).exists():
            notes.append(
                f"[{artifact_path.name}] no baseline — check one in under "
                f"{baseline_dir} to start gating it"
            )
    return failures, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact-dir", required=True, type=pathlib.Path,
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-dir", default=BASELINE_DIR, type=pathlib.Path,
        help="checked-in baselines (default: benchmarks/baselines/)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative regression tolerance (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    failures, notes = check_directory(
        args.baseline_dir, args.artifact_dir, args.threshold
    )
    for note in notes:
        print(f"note: {note}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        print(f"{len(failures)} benchmark regression(s)", file=sys.stderr)
        return 1
    print(f"benchmark regression gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
