#!/usr/bin/env python3
"""Scenario: stress an election under the paper's own adversaries.

The KT0 model quantifies over *all* port mappings, and the asynchronous
model over all delay schedules — correctness claims are only as good as
the adversaries you try.  This script runs the deterministic tradeoff
algorithm against the library's hostile policies and traces what the
Lemma 3.9 adversary does to the communication graph:

1. random vs sequential vs component-capacity port adversaries — same
   winner every time (determinism of the algorithm + max-ID invariant);
2. the growth trace of the capacity adversary: the largest component is
   pinned near the per-round message rate, and the majority component
   (the thing termination *needs*, Corollary 3.7) appears only in the
   final broadcast round — a live view of the Theorem 3.8 mechanism;
3. the asynchronous algorithms under the rushing scheduler (extreme
   interleavings) — still exactly one leader.

Run:  python examples/adversary_stress.py
"""

import random

from repro.asyncnet import AsyncNetwork, RushScheduler
from repro.core import (
    AsyncAfekGafniElection,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
)
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import run_under_capacity_adversary
from repro.net.ports import LazyPortMap, SequentialPortPolicy
from repro.sync import SyncNetwork

N = 512
ELL = 5


def port_adversaries() -> None:
    ids = assign_random(tradeoff_universe(N), N, random.Random(3))
    print(f"1) Port-mapping adversaries (n={N}, Theorem 3.10, ell={ELL})")
    outcomes = {}
    result = SyncNetwork(N, lambda: ImprovedTradeoffElection(ell=ELL), ids=ids, seed=0).run()
    outcomes["random"] = result
    result = SyncNetwork(
        N,
        lambda: ImprovedTradeoffElection(ell=ELL),
        ids=ids,
        port_map=LazyPortMap(N, SequentialPortPolicy()),
    ).run()
    outcomes["sequential"] = result
    adv_result, trace = run_under_capacity_adversary(
        N, lambda: ImprovedTradeoffElection(ell=ELL), ids=ids, seed=0
    )
    outcomes["capacity adversary"] = adv_result
    for name, res in outcomes.items():
        print(
            f"   {name:<20} leader id {res.elected_id} "
            f"messages {res.messages:,} rounds {res.last_send_round}"
        )
    winners = {res.elected_id for res in outcomes.values()}
    assert winners == {max(ids)}, "the max ID must win under every mapping"
    print(f"   -> same winner everywhere: id {max(ids)} (the maximum)\n")
    return trace


def growth_trace(trace) -> None:
    print("2) What the capacity adversary did to the communication graph:")
    print(f"   {'round':>6} {'largest component':>18} {'messages':>10}")
    for r in trace.rounds:
        print(
            f"   {r:>6} {trace.largest_by_round.get(r, 1):>18,}"
            f" {trace.sends_by_round.get(r, 0):>10,}"
        )
    print(f"   majority component first exists at round {trace.rounds_to_majority()}")
    print(f"   links kept inside components: {trace.in_component_links:,}"
          f" (merges: {trace.merge_links:,})\n")


def rushing_scheduler() -> None:
    print("3) Asynchronous algorithms under the rushing delay adversary:")
    for name, factory, wake_times in (
        ("Theorem 5.1 (k=3)", lambda: AsyncTradeoffElection(k=3), None),
        (
            "Theorem 5.14 (async AG)",
            AsyncAfekGafniElection,
            {u: 0.0 for u in range(N)},
        ),
    ):
        net = AsyncNetwork(
            N,
            factory,
            seed=9,
            scheduler=RushScheduler(),
            wake_times=wake_times,
            max_events=8_000_000,
        )
        result = net.run()
        print(
            f"   {name:<24} unique leader: {result.unique_leader}"
            f"  messages {result.messages:,}"
        )
    print()


def main() -> None:
    trace = port_adversaries()
    growth_trace(trace)
    rushing_scheduler()
    print("Reading: the algorithms' guarantees are adversary-proof, and the")
    print("capacity adversary shows *why* rounds are the price of message")
    print("frugality — components can only grow as fast as you pay messages.")


if __name__ == "__main__":
    main()
