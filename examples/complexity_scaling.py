#!/usr/bin/env python3
"""How each algorithm's message bill scales — fitted exponents, plotted.

Sweeps the clique size for four algorithms spanning the paper's spectrum
and renders a log-log scatter of messages vs n in the terminal, next to
the fitted power laws:

* Theorem 3.10 at ℓ=3  → ~n^1.5   (fast and expensive)
* Theorem 3.10 at ℓ=9  → ~n^1.2
* Las Vegas (Thm 3.16) → ~n       (the randomized Ω(n) floor)
* Monte Carlo [16]     → ~√n·polylog (below every deterministic bound)

Run:  python examples/complexity_scaling.py
"""

from repro.analysis import fit_power_law, scatter, sweep_sync
from repro.core import ImprovedTradeoffElection, Kutten16Election, LasVegasElection
from repro.ids import assign_random, tradeoff_universe

NS = [128, 256, 512, 1024, 2048, 4096]


def measure(factory_for_n, seeds=(0, 1)):
    records = sweep_sync(
        NS,
        factory_for_n,
        seeds=list(seeds),
        ids_for_n=lambda n, rng: assign_random(tradeoff_universe(n), n, rng),
    )
    by_n = {}
    for r in records:
        by_n.setdefault(r.n, []).append(r.messages)
    return [(n, sum(v) / len(v)) for n, v in sorted(by_n.items())]


def main() -> None:
    print("Sweeping n =", NS, "(two seeds per point)\n")
    series = {}
    fits = {}
    for name, factory in (
        ("thm3.10 ell=3", lambda n: (lambda: ImprovedTradeoffElection(ell=3))),
        ("thm3.10 ell=9", lambda n: (lambda: ImprovedTradeoffElection(ell=9))),
        ("las vegas", lambda n: (lambda: LasVegasElection())),
        ("monte carlo [16]", lambda n: (lambda: Kutten16Election())),
    ):
        points = measure(factory)
        series[name] = points
        fits[name] = fit_power_law([p[0] for p in points], [p[1] for p in points])

    print(scatter(series, title="messages vs n (log-log)", width=60, height=16))
    print("\nfitted power laws:")
    for name, fit in fits.items():
        print(f"  {name:<18} {fit}")
    print("\nReading: four separated curves — the paper's hierarchy")
    print("n^1.5 > n^1.2 > n > sqrt(n)·polylog.  (At laptop sizes the two")
    print("randomized fits sit below their asymptotic slopes: Las Vegas")
    print("mixes its Theta(n) announcement with a sqrt(n)·polylog compete")
    print("term, and the Monte Carlo candidate count is noisy — see")
    print("EXPERIMENTS.md for the variance discussion.)")


if __name__ == "__main__":
    main()
