#!/usr/bin/env python3
"""Scenario: coordinator failover in an asynchronous datacenter cell.

The motivating workload from the paper's introduction: a cell of worker
machines (a clique at the network layer — everyone can reach everyone)
loses its coordinator and must elect a replacement.  Constraints of the
scenario:

* machines notice the failure at slightly different times (adversarial
  wake-up: the monitoring system pages a few machines first);
* the network is asynchronous with heterogeneous link delays (some
  racks are persistently slower);
* we can spend either *time* (slow failover) or *messages* (network
  load) — the Theorem 5.1 knob k.

This script simulates the failover with three settings of k under a
heterogeneous delay adversary and reports the time-to-new-leader and the
message load per machine, then does a side-by-side with the
asynchronous Afek–Gafni algorithm (Theorem 5.14) for the case where the
monitoring system manages a synchronized restart (simultaneous wake-up).

Act three injects the failure the scenario is named after: the freshly
elected coordinator is *killed the moment it announces victory* (a
``LeaderKillPolicy`` from the faults subsystem), its crash is noticed by
a perfect failure detector, and the surviving machines re-elect — the
epoch-based re-election wrapper restarts the Theorem 5.1 algorithm on
the survivor sub-clique.  The run reports measured detection latency,
re-election time, and the message cost of the recovery epoch.

Run:  python examples/datacenter_failover.py
"""

import random

from repro.asyncnet import AsyncNetwork, PerLinkDelayScheduler
from repro.core import AsyncAfekGafniElection, AsyncTradeoffElection
from repro.faults import (
    AsyncReElectionElection,
    DetectorSpec,
    FaultPlan,
    LeaderKillPolicy,
    run_failover_trial,
)
from repro.lowerbound import bounds

CELL_SIZE = 512


def failover_with_tradeoff(k: int, seed: int) -> None:
    rng = random.Random(seed)
    # Monitoring pages 3 machines within the first half time unit.
    first_pages = {rng.randrange(CELL_SIZE): 0.0 for _ in range(3)}
    net = AsyncNetwork(
        CELL_SIZE,
        lambda: AsyncTradeoffElection(k=k),
        seed=seed,
        scheduler=PerLinkDelayScheduler(random.Random(seed + 1)),
        wake_times=first_pages,
        max_events=8_000_000,
    )
    result = net.run()
    per_machine = result.messages / CELL_SIZE
    print(f"  k={k}:")
    print(f"    new coordinator : machine id {result.elected_id}"
          f" ({'unique' if result.unique_leader else 'FAILED'})")
    print(f"    failover time   : {result.time:.2f} time units (budget {bounds.thm51_time(k)})")
    print(f"    network load    : {result.messages:,} messages"
          f" ({per_machine:.1f} per machine)")


def failover_synchronized_restart(seed: int) -> None:
    net = AsyncNetwork(
        CELL_SIZE,
        AsyncAfekGafniElection,
        seed=seed,
        scheduler=PerLinkDelayScheduler(random.Random(seed + 1)),
        wake_times={u: 0.0 for u in range(CELL_SIZE)},
        max_events=8_000_000,
    )
    result = net.run()
    print("  async Afek-Gafni (deterministic, simultaneous wake-up):")
    print(f"    new coordinator : machine id {result.elected_id}")
    print(f"    failover time   : {result.time:.2f} time units (O(log n) = "
          f"{bounds.thm514_time(CELL_SIZE):.1f})")
    print(f"    network load    : {result.messages:,} messages "
          f"(O(n log n) = {bounds.thm514_messages(CELL_SIZE):,.0f})")


def failover_under_churn(seed: int) -> None:
    """Kill the new coordinator mid-election; survivors re-elect."""
    plan = FaultPlan(
        policies=(LeaderKillPolicy(kinds=("ree_coord",), delay=0.5, max_kills=1),),
        detector=DetectorSpec(kind="perfect", lag=1.0),
    )
    rng = random.Random(seed)
    first_pages = {rng.randrange(CELL_SIZE): 0.0 for _ in range(3)}
    report = run_failover_trial(
        "async",
        CELL_SIZE,
        lambda: AsyncReElectionElection(
            inner="async_tradeoff", commit_delay=4.0, poll_interval=0.5,
            inner_params={"k": 3},
        ),
        plan,
        seed=seed,
        wake_times=first_pages,
        max_events=20_000_000,
    )
    crashed = report.record.extra["crashed"]
    assert report.unique_surviving_leader, "churn must still yield one survivor"
    print("  epoch 0 winner crashed at its victory announcement"
          f" (machine index {crashed[0]})")
    print(f"    crash detected in   : {report.mean_detection_latency:.2f} time units"
          " (perfect detector, lag 1)")
    print(f"    new coordinator     : machine id {report.surviving_leader_id}"
          f" ({'unique survivor' if report.unique_surviving_leader else 'FAILED'})")
    print(f"    re-election time    : {report.reelection_time:.2f} time units"
          " after the crash")
    print(f"    recovery traffic    : {report.messages_after_first_crash:,} of"
          f" {report.record.messages:,} total messages")


def main() -> None:
    print(f"Coordinator failover in a {CELL_SIZE}-machine cell")
    print("(heterogeneous per-link delays; monitoring pages 3 machines)\n")
    print("Randomized tradeoff (Theorem 5.1) — pick your point on the curve:")
    for k in (2, 3, 6):
        failover_with_tradeoff(k, seed=11)
    print()
    print("If the cell supports a synchronized restart:")
    failover_synchronized_restart(seed=13)
    print()
    print("If the replacement coordinator itself crashes (churn):")
    failover_under_churn(seed=17)
    print()
    print("Reading: k=2 converges fastest but floods the network (~n^1.5")
    print("messages); k=6 cuts the load by an order of magnitude for a few")
    print("extra time units — the tradeoff of Theorem 5.1.  Under churn,")
    print("the re-election wrapper pays one extra election per crash, after")
    print("one detection lag — see benchmarks/bench_failover_churn.py.")


if __name__ == "__main__":
    main()
