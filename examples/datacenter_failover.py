#!/usr/bin/env python3
"""Scenario: coordinator failover in an asynchronous datacenter cell.

The motivating workload from the paper's introduction: a cell of worker
machines (a clique at the network layer — everyone can reach everyone)
loses its coordinator and must elect a replacement.  Constraints of the
scenario:

* machines notice the failure at slightly different times (adversarial
  wake-up: the monitoring system pages a few machines first);
* the network is asynchronous with heterogeneous link delays (some
  racks are persistently slower);
* we can spend either *time* (slow failover) or *messages* (network
  load) — the Theorem 5.1 knob k.

This script simulates the failover with three settings of k under a
heterogeneous delay adversary and reports the time-to-new-leader and the
message load per machine, then does a side-by-side with the
asynchronous Afek–Gafni algorithm (Theorem 5.14) for the case where the
monitoring system manages a synchronized restart (simultaneous wake-up).

Run:  python examples/datacenter_failover.py
"""

import random

from repro.asyncnet import AsyncNetwork, PerLinkDelayScheduler
from repro.core import AsyncAfekGafniElection, AsyncTradeoffElection
from repro.lowerbound import bounds

CELL_SIZE = 512


def failover_with_tradeoff(k: int, seed: int) -> None:
    rng = random.Random(seed)
    # Monitoring pages 3 machines within the first half time unit.
    first_pages = {rng.randrange(CELL_SIZE): 0.0 for _ in range(3)}
    net = AsyncNetwork(
        CELL_SIZE,
        lambda: AsyncTradeoffElection(k=k),
        seed=seed,
        scheduler=PerLinkDelayScheduler(random.Random(seed + 1)),
        wake_times=first_pages,
        max_events=8_000_000,
    )
    result = net.run()
    per_machine = result.messages / CELL_SIZE
    print(f"  k={k}:")
    print(f"    new coordinator : machine id {result.elected_id}"
          f" ({'unique' if result.unique_leader else 'FAILED'})")
    print(f"    failover time   : {result.time:.2f} time units (budget {bounds.thm51_time(k)})")
    print(f"    network load    : {result.messages:,} messages"
          f" ({per_machine:.1f} per machine)")


def failover_synchronized_restart(seed: int) -> None:
    net = AsyncNetwork(
        CELL_SIZE,
        AsyncAfekGafniElection,
        seed=seed,
        scheduler=PerLinkDelayScheduler(random.Random(seed + 1)),
        wake_times={u: 0.0 for u in range(CELL_SIZE)},
        max_events=8_000_000,
    )
    result = net.run()
    print("  async Afek-Gafni (deterministic, simultaneous wake-up):")
    print(f"    new coordinator : machine id {result.elected_id}")
    print(f"    failover time   : {result.time:.2f} time units (O(log n) = "
          f"{bounds.thm514_time(CELL_SIZE):.1f})")
    print(f"    network load    : {result.messages:,} messages "
          f"(O(n log n) = {bounds.thm514_messages(CELL_SIZE):,.0f})")


def main() -> None:
    print(f"Coordinator failover in a {CELL_SIZE}-machine cell")
    print("(heterogeneous per-link delays; monitoring pages 3 machines)\n")
    print("Randomized tradeoff (Theorem 5.1) — pick your point on the curve:")
    for k in (2, 3, 6):
        failover_with_tradeoff(k, seed=11)
    print()
    print("If the cell supports a synchronized restart:")
    failover_synchronized_restart(seed=13)
    print()
    print("Reading: k=2 converges fastest but floods the network (~n^1.5")
    print("messages); k=6 cuts the load by an order of magnitude for a few")
    print("extra time units — the tradeoff of Theorem 5.1.")


if __name__ == "__main__":
    main()
