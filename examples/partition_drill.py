"""A partition drill on the scenario layer.

The on-call nightmare, replayed deterministically: a 32-machine
coordination cell is split down the middle by a switch failure.  Each
half, certain the other is dead, elects its own coordinator — a
split-brain window.  The switch comes back, the halves rediscover each
other, and the cell must re-converge on exactly one coordinator.

The scenario subsystem replays the whole incident as three election
acts (initial, partition, heal) and measures what an SRE would ask for
afterwards: how long was leadership split or absent, how fast did
failover complete, and what did the churn cost in messages compared to
a quiet day.

A second act runs a *custom* timeline built from the same declarative
pieces: quarantine one node behind a partition, crash the leader while
the partition is up, and verify the cell still converges after heal.

Run: ``PYTHONPATH=src python examples/partition_drill.py [n]``
"""

import sys

sys.path.insert(0, "src")

from repro.scenarios import (  # noqa: E402
    Scenario,
    ScenarioRunner,
    crash,
    get_scenario,
    partition,
    run_scenario,
)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def describe(result) -> None:
    metrics = result.metrics
    for epoch in result.epochs:
        leaders = "+".join(str(i) for i in epoch.leader_ids) or "-"
        print(
            f"  act {epoch.epoch:>2} [{epoch.trigger:^9}] "
            f"t={epoch.t_start:>6.1f}..{epoch.t_end:<6.1f} "
            f"members={len(epoch.members):>2}  leader(s)={leaders:<7} "
            f"messages={epoch.messages}"
        )
    print()
    for interval in metrics.agreement_intervals:
        state = "agreed" if interval.agreed else "SPLIT/NONE"
        leaders = ", ".join(str(i) for i in interval.leaders) or "nobody"
        print(
            f"  {interval.start:>6.1f} .. {interval.end:<6.1f} "
            f"{state:<10} (leaders: {leaders})"
        )
    print()
    failover = metrics.mean_failover_latency
    print(f"  epoch churn        : {metrics.epoch_churn}")
    print(f"  mean failover      : "
          f"{'-' if failover is None else f'{failover:.1f} rounds'}")
    print(f"  agreement fraction : {metrics.agreed_fraction:.0%}")
    print(f"  message overhead   : {metrics.message_overhead:.2f}x a quiet election")
    print(f"  final coordinator  : {metrics.final_leader_id} "
          f"({'agreed' if metrics.final_agreed else 'NO AGREEMENT'})")


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32

    banner(f"Drill 1: switch failure splits the {n}-machine cell in half")
    result = run_scenario(get_scenario("partition_heal", n), n, engine="sync", seed=7)
    describe(result)
    split = next(e for e in result.epochs if e.trigger == "partition")
    assert len(split.leader_ids) == 2, "each half should elect its own coordinator"
    assert result.metrics.final_agreed, "the heal must re-converge"
    print("\n  -> split-brain window measured, heal re-converged on one leader")

    banner("Drill 2: custom timeline — quarantine a node, crash the leader")
    # Quarantine node 0 behind a partition while everyone else stays
    # connected, then crash the sitting coordinator mid-window: the
    # majority side fails over on its own, and the heal reabsorbs the
    # quarantined node without a fresh split.  (The crash names the
    # concrete index n-1 — the max-ID node the initial election made
    # leader — because the symbolic "leader" target refuses to resolve
    # while two components each believe in their own coordinator.)
    quarantine = Scenario(
        name="quarantine_drill",
        description="isolate one node, crash the leader during the window",
        events=(
            partition(((0,), tuple(range(1, n))), start=20.0, end=90.0),
            crash(n - 1, 50.0),
        ),
    )
    result = ScenarioRunner(quarantine, n, engine="sync", seed=7).run()
    describe(result)
    assert result.metrics.final_agreed
    assert result.metrics.crashes == 1
    print("\n  -> leader died during the quarantine window; the majority side")
    print("     failed over and the heal produced a single agreed coordinator")
    return 0


if __name__ == "__main__":
    sys.exit(main())
