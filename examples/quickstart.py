#!/usr/bin/env python3
"""Quickstart: elect a leader in a synchronous and an asynchronous clique.

This is the five-minute tour of the library:

1. run the paper's improved deterministic tradeoff algorithm
   (Theorem 3.10) on a synchronous 1024-clique,
2. run the asynchronous tradeoff algorithm (Theorem 5.1) under
   adversarial wake-up and unit message delays,
3. compare what you measured against the paper's bound formulas.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AsyncNetwork,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
    SyncNetwork,
)
from repro.asyncnet import UnitDelayScheduler
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import bounds

N = 1024


def synchronous_demo() -> None:
    print(f"== Synchronous clique, n={N}, Theorem 3.10 with ell=5 rounds ==")
    # The adversary picks IDs from a Θ(n log n) universe and the port
    # mapping is a random bijection (resolved lazily by the engine).
    ids = assign_random(tradeoff_universe(N), N, random.Random(7))
    net = SyncNetwork(N, lambda: ImprovedTradeoffElection(ell=5), ids=ids, seed=1)
    result = net.run()

    assert result.unique_leader, "Theorem 3.10 is deterministic: always one leader"
    print(f"  elected ID        : {result.elected_id} (max ID = {max(ids)})")
    print(f"  rounds used       : {result.last_send_round} (budget: 5)")
    print(f"  messages sent     : {result.messages:,}")
    print(f"  paper bound       : {bounds.thm310_messages(N, 5):,.0f}  (O(ell n^(1+2/(ell+1))))")
    print(f"  every node decided: {result.decided_count == N}")
    print()


def asynchronous_demo() -> None:
    print(f"== Asynchronous clique, n={N}, Theorem 5.1 with k=3 ==")
    # The adversary wakes a single node; delays are a full time unit per
    # hop (the worst case for the time bound); FIFO links.
    net = AsyncNetwork(
        N,
        lambda: AsyncTradeoffElection(k=3),
        seed=2,
        scheduler=UnitDelayScheduler(),
        wake_times={0: 0.0},
    )
    result = net.run()

    print(f"  unique leader     : {result.unique_leader}")
    print(f"  elected ID        : {result.elected_id}")
    print(f"  time units        : {result.time:.1f} (paper budget: k+8 = {bounds.thm51_time(3)})")
    print(f"  messages sent     : {result.messages:,}")
    print(f"  paper bound       : {bounds.thm51_messages(N, 3):,.0f}  (O(n^(1+1/k)))")
    print(f"  nodes awake       : {result.awake_count}/{N}")
    print()


def main() -> None:
    synchronous_demo()
    asynchronous_demo()
    print("Next steps: examples/tradeoff_frontier.py (the paper's central")
    print("tradeoff curves) and examples/datacenter_failover.py (a realistic")
    print("asynchronous coordination scenario).")


if __name__ == "__main__":
    main()
