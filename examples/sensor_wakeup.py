#!/usr/bin/env python3
"""Scenario: waking up a sensor field with a message budget.

Energy-constrained networks (a motivation the paper cites) care about
messages because radios dominate the power budget.  Suppose an operator
node must wake an n-sensor cell and elect a cell head within two
communication rounds.  Theorem 4.2 says there is no protocol that does
this reliably with o(n^(3/2)) messages; Theorem 4.1's algorithm matches
that cost.

This script makes the barrier tangible:

1. it tries naive two-round spray protocols with shrinking budgets and
   shows where reliability collapses;
2. it runs the Theorem 4.1 election at the optimal budget and shows the
   success rate and the elected head;
3. it prints the per-sensor radio cost for each option.

Run:  python examples/sensor_wakeup.py
"""

import math

from repro.core import AdversarialTwoRoundElection
from repro.lowerbound import bounds, wakeup_success_rate
from repro.sync import SyncNetwork

N = 1024
TRIALS = 8


def naive_spray_budgets() -> None:
    print("1) Naive two-round sprays (root fan-out n^a, sensor fan-out boosted n^b)")
    print(f"   {'budget':<26} {'messages':>12} {'reliability':>12}")
    boost = 2 * math.log(N)
    for alpha, beta, label in (
        (0.5, 0.5, "calibrated  (a+b = 1.0)"),
        (0.5, 0.4, "10% cheaper (a+b = 0.9)"),
        (0.5, 0.3, "20% cheaper (a+b = 0.8)"),
    ):
        rate, msgs = wakeup_success_rate(
            N, alpha, beta, boost=boost, root_count=1, trials=TRIALS
        )
        print(f"   {label:<26} {msgs:>12,.0f} {rate:>11.0%}")
    print(f"   (Theorem 4.2 floor: {bounds.thm42_message_lb(N):,.0f} messages)\n")


def thm41_election() -> None:
    print("2) Theorem 4.1 election at the optimal budget (eps = 5%)")
    wins = 0
    messages = []
    head = None
    for seed in range(TRIALS):
        net = SyncNetwork(
            N,
            lambda: AdversarialTwoRoundElection(epsilon=0.05),
            seed=seed,
            awake=[0],  # the operator node
        )
        result = net.run()
        wins += result.unique_leader
        messages.append(result.messages)
        head = result.elected_id or head
    mean = sum(messages) / len(messages)
    print(f"   reliability        : {wins}/{TRIALS}")
    print(f"   mean radio messages: {mean:,.0f} "
          f"(bound {bounds.thm41_expected_messages(N, 0.05):,.0f})")
    print(f"   per-sensor cost    : {mean / N:.2f} messages")
    print(f"   last elected head  : sensor id {head}\n")


def main() -> None:
    print(f"Sensor-field wake-up and cell-head election, n={N}\n")
    naive_spray_budgets()
    thm41_election()
    print("Reading: below the n^1.5 budget the field reliably fails to wake")
    print("in two rounds (Theorem 4.2); the Theorem 4.1 algorithm pays that")
    print("bill exactly once and gets a unique cell head with it.")


if __name__ == "__main__":
    main()
