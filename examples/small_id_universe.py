#!/usr/bin/env python3
"""Scenario: leader election when IDs come from a small namespace.

Theorem 3.11 says deterministic election needs Ω(n log n) messages for
any time-bounded algorithm — but only when the ID universe is huge.
Cluster schedulers often hand out *dense* IDs (slot numbers, pod
indices): a universe of size O(n).  Algorithm 1 (Theorem 3.15) exploits
that: with IDs in {1..n·g}, it elects in ⌈n/d⌉ rounds with ≤ n·d·g
messages — beating the Ω(n log n) barrier.

This script sweeps the knob d on a 4096-node clique with slot-number
IDs and prints the resulting time/message menu, highlighting the
``o(n log n)`` rows.  It also shows the failure mode: feeding the same
algorithm IDs from a big universe is rejected at validation time.

Run:  python examples/small_id_universe.py
"""

import random

from repro.core import SmallIdElection
from repro.ids import assign_random, small_universe
from repro.lowerbound import bounds
from repro.sync import SyncNetwork

N = 4096
G = 1  # universe {1..n}: dense slot numbers


def sweep() -> None:
    nlogn = bounds.thm311_message_lb(N)
    print(f"n = {N}, universe {{1..{N * G}}}, Omega(n log n) barrier = {nlogn:,.0f}\n")
    print(f"   {'d':>5} {'rounds':>8} {'bound':>8} {'messages':>12} {'bound':>12}  note")
    rng = random.Random(0)
    ids = assign_random(small_universe(N, G), N, rng)
    for d in (1, 4, 16, 64, 256):
        net = SyncNetwork(N, lambda: SmallIdElection(d=d, g=G), ids=ids, seed=0)
        result = net.run()
        assert result.unique_leader and result.elected_id == min(ids)
        note = "o(n log n)!" if bounds.thm315_messages(N, d, G) < nlogn else ""
        print(
            f"   {d:>5} {result.last_send_round:>8} {bounds.thm315_rounds(N, d):>8}"
            f" {result.messages:>12,} {bounds.thm315_messages(N, d, G):>12,}  {note}"
        )
    print()
    print("Every row elected the minimum slot number as leader.")


def wrong_universe_rejected() -> None:
    print("\nGuard rail: IDs outside {1..n*g} are rejected up front:")
    ids = list(range(10_000_000, 10_000_000 + N))
    try:
        SyncNetwork(N, lambda: SmallIdElection(d=16, g=G), ids=ids, seed=0).run()
    except ValueError as exc:
        print(f"   ValueError: {exc}")


def main() -> None:
    print("Algorithm 1 / Theorem 3.15: dense-ID leader election\n")
    sweep()
    wrong_universe_rejected()
    print("\nReading: with dense IDs, d tunes a clean time/message menu;")
    print("at d = O(1) the message bill is far below the n log n floor")
    print("that binds large-universe deterministic algorithms (Thm 3.11).")


if __name__ == "__main__":
    main()
