#!/usr/bin/env python3
"""A round-by-round walkthrough of the Theorem 3.10 algorithm on 8 nodes.

Uses the trace recorder to narrate one tiny election end to end —
who competed, which referees answered whom, who survived each
iteration, and how the final broadcast settles it.  A good first read
if you want to understand the survivor/referee mechanics before diving
into the code.

Run:  python examples/trace_walkthrough.py
"""

from collections import defaultdict

from repro.core import ImprovedTradeoffElection
from repro.core.improved_tradeoff import COMPETE, FINAL, RESPONSE
from repro.sync import SyncNetwork
from repro.trace import MemoryRecorder

N = 8
ELL = 5  # k = 4: iterations at rounds (1,2), (3,4); final broadcast round 5
IDS = [17, 42, 8, 99, 23, 56, 3, 71]


def main() -> None:
    rec = MemoryRecorder()
    net = SyncNetwork(
        N, lambda: ImprovedTradeoffElection(ell=ELL), ids=IDS, seed=7, recorder=rec
    )
    result = net.run()

    label = {u: f"node{u}(id={IDS[u]})" for u in range(N)}
    by_round = defaultdict(list)
    for event in rec.events:
        by_round[int(event.when)].append(event)

    algo = ImprovedTradeoffElection(ell=ELL)
    print(f"Theorem 3.10 walkthrough: n={N}, ell={ELL} (k={algo.k}), IDs={IDS}\n")
    for r in sorted(by_round):
        events = by_round[r]
        sends = [e for e in events if e.kind == "send"]
        decides = [e for e in events if e.kind == "decide"]
        if r % 2 == 1 and r < 2 * algo.k - 3:
            iteration = (r + 1) // 2
            m = algo.referee_count(N, iteration)
            print(f"-- round {r}: iteration {iteration} competes "
                  f"(each survivor contacts {m} referees)")
        elif r == 2 * algo.k - 3:
            print(f"-- round {r}: FINAL broadcast by the remaining survivors")
        elif r % 2 == 0:
            print(f"-- round {r}: referees answer the highest ID they heard")
        for e in sends:
            port, v, peer_port, payload = e.detail
            kind = payload[0]
            if kind == COMPETE:
                print(f"     {label[e.node]:>14} --compete({payload[1]})--> {label[v]}")
            elif kind == RESPONSE:
                print(f"     {label[e.node]:>14} --you-win!--> {label[v]}")
            elif kind == FINAL:
                pass  # n-1 broadcasts each; summarized below
        finals = {e.node for e in sends if e.detail[3][0] == FINAL}
        if finals:
            names = ", ".join(label[u] for u in sorted(finals))
            print(f"     broadcast by survivors: {names}")
        for e in decides:
            decision, output = e.detail
            verdict = "LEADER" if decision.value == "leader" else f"follower of {output}"
            print(f"     {label[e.node]:>14} decides: {verdict}")
    print()
    print(f"Result: leader id {result.elected_id} (the maximum), "
          f"{result.messages} messages in {result.last_send_round} rounds.")
    print("Note how each iteration multiplies the referee count and")
    print("divides the survivor count — that is the ell vs messages dial.")


if __name__ == "__main__":
    main()
