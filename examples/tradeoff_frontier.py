#!/usr/bin/env python3
"""The paper's central picture: the message/time tradeoff frontier.

For a fixed clique size this script sweeps the round budget ℓ and plots
(in ASCII) three curves on a log scale:

* the Theorem 3.8 lower bound  — no deterministic algorithm can be
  below this line;
* the measured message counts of the improved algorithm (Theorem 3.10);
* the measured message counts of the Afek–Gafni baseline.

It then does the same for the asynchronous tradeoff (Theorem 5.1) over
the parameter k.  The takeaways visible in the output:

* Theorem 3.10 sits strictly below Afek–Gafni at every budget — the
  paper's improvement — and strictly above the lower bound;
* a couple of extra rounds buys a polynomial message reduction, with
  diminishing returns as ℓ approaches log n.

Run:  python examples/tradeoff_frontier.py [n]
"""

import math
import random
import sys

from repro import AfekGafniElection, ImprovedTradeoffElection, SyncNetwork
from repro.asyncnet import AsyncNetwork, UnitDelayScheduler
from repro.core import AsyncTradeoffElection
from repro.ids import assign_random, tradeoff_universe
from repro.lowerbound import bounds


def ascii_chart(rows, value_columns, width=46):
    """Log-scale horizontal bars: rows of (label, {name: value})."""
    values = [v for _, vals in rows for v in vals.values() if v > 0]
    lo, hi = math.log(min(values)), math.log(max(values))
    span = max(hi - lo, 1e-9)
    lines = []
    for label, vals in rows:
        lines.append(label)
        for name in value_columns:
            v = vals[name]
            bar = int((math.log(v) - lo) / span * width) if v > 0 else 0
            lines.append(f"    {name:<22} {'#' * max(bar, 1):<{width}} {v:,.0f}")
    return "\n".join(lines)


def sync_frontier(n: int) -> None:
    print(f"=== Synchronous frontier, n={n} (messages on a log scale) ===")
    ids = assign_random(tradeoff_universe(n), n, random.Random(5))
    rows = []
    for ell in (3, 5, 7, 9):
        improved = SyncNetwork(
            n, lambda: ImprovedTradeoffElection(ell=ell), ids=ids, seed=0
        ).run()
        ag = SyncNetwork(n, lambda: AfekGafniElection(ell=ell - 1), ids=ids, seed=0).run()
        assert improved.unique_leader and ag.unique_leader
        rows.append(
            (
                f"round budget ell = {ell}",
                {
                    "Thm 3.8 lower bound": bounds.thm38_message_lb(n, ell),
                    "Thm 3.10 (measured)": improved.messages,
                    "Afek-Gafni (measured)": ag.messages,
                },
            )
        )
    print(ascii_chart(rows, ["Thm 3.8 lower bound", "Thm 3.10 (measured)", "Afek-Gafni (measured)"]))
    print()


def async_frontier(n: int) -> None:
    print(f"=== Asynchronous frontier, n={n} (Theorem 5.1 over k) ===")
    rows = []
    for k in (2, 3, 4, 6):
        result = AsyncNetwork(
            n,
            lambda: AsyncTradeoffElection(k=k),
            seed=3,
            scheduler=UnitDelayScheduler(),
            max_events=8_000_000,
        ).run()
        status = "ok" if result.unique_leader else "failed (whp event missed)"
        rows.append(
            (
                f"k = {k}: time {result.time:.0f} of budget {bounds.thm51_time(k)} [{status}]",
                {
                    "measured messages": result.messages,
                    "O(n^(1+1/k)) curve": bounds.thm51_messages(n, k),
                },
            )
        )
    print(ascii_chart(rows, ["measured messages", "O(n^(1+1/k)) curve"]))
    print()


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    sync_frontier(n)
    async_frontier(n)


if __name__ == "__main__":
    main()
