"""Packaging for the ``repro`` simulation library.

The core package is dependency-free pure Python.  The vectorized
``repro.fastsync`` engine (``n ≥ 10^5`` sweeps) needs numpy, published
as the ``fast`` extra::

    pip install -e .          # object-model engines only
    pip install -e '.[fast]'  # + the numpy-vectorized engine
    pip install -e '.[dev]'   # + test/benchmark toolchain
"""

from setuptools import find_packages, setup

setup(
    name="repro-leader-election",
    version="0.2.0",
    description=(
        "Reproduction of 'Improved Tradeoffs for Leader Election' (PODC 2023): "
        "sync/async/vectorized clique simulators, fault injection, benchmarks"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    extras_require={
        "fast": ["numpy>=1.22"],
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "numpy>=1.22", "ruff"],
    },
)
