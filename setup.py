"""Setup shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments without the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
