"""repro — a reproduction of "Improved Tradeoffs for Leader Election".

Kutten, Robinson, Tan, Zhu (PODC 2023; arXiv:2301.08235).

The package provides:

* :mod:`repro.sync` / :mod:`repro.asyncnet` — synchronous and
  asynchronous clique simulators implementing the paper's model (KT0
  ports, simultaneous/adversarial wake-up, adversarial FIFO delays);
* :mod:`repro.core` — every algorithm in the paper (plus the baselines it
  compares against);
* :mod:`repro.lowerbound` — executable artifacts of the lower-bound
  proofs: communication graphs, the component-capacity adversary, the
  single-send transformation, bound formulas for every Table 1 row, and
  the §4.2 wake-up falsification experiment;
* :mod:`repro.analysis` — experiment runner, power-law fitting, paper
  style tables and validation helpers;
* :mod:`repro.faults` — crash-fault injection, failure-detector oracles,
  partition masks, and fault-tolerant (monarchical / epoch re-election)
  algorithms for failover scenarios on both engines;
* :mod:`repro.scenarios` — declarative churn timelines (crash/recover,
  joins, partitions with automatic heal, repeated elections) executed
  act by act on any engine with per-epoch convergence metrics.

Quickstart::

    from repro import SyncNetwork, ImprovedTradeoffElection

    net = SyncNetwork(1024, lambda: ImprovedTradeoffElection(ell=5), seed=1)
    result = net.run()
    assert result.unique_leader
    print(result.elected_id, result.messages, result.last_send_round)
"""

from repro.common import Decision, ProtocolError, SimulationLimitExceeded
from repro.core import (
    AdversarialTwoRoundElection,
    AfekGafniElection,
    AsyncAfekGafniElection,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
    Kutten16Election,
    LasVegasElection,
    SmallIdElection,
)
from repro.asyncnet import AsyncNetwork
from repro.sync import SyncNetwork

__version__ = "1.0.0"

__all__ = [
    "Decision",
    "ProtocolError",
    "SimulationLimitExceeded",
    "SyncNetwork",
    "AsyncNetwork",
    "ImprovedTradeoffElection",
    "AfekGafniElection",
    "SmallIdElection",
    "Kutten16Election",
    "LasVegasElection",
    "AdversarialTwoRoundElection",
    "AsyncTradeoffElection",
    "AsyncAfekGafniElection",
    "__version__",
]
