"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show every registered algorithm with its paper reference and
    complexity formulas.

``run NAME``
    Run one election and print the outcome and complexity counters.
    Algorithm parameters are passed as ``--param key=value``.

``bounds N``
    Print the full Table 1 bound formulas evaluated at ``N``.

``faults NAME``
    Run one election under a fault plan (crash schedules, kill-the-
    frontrunner churn, message drop/duplication, failure detectors) and
    report failover metrics: detection latency, re-election time, and
    message cost after the first crash.  ``monarchical``, ``reelect``
    and ``quorum_reelect`` additionally accept ``--engine async``.

``scenarios {list,run,sweep}``
    The workload layer: declarative event timelines (partitions with
    automatic heal, crash-recovery with persisted epoch state, joins,
    repeated elections, Byzantine slander) executed by the scenario
    runner with per-epoch convergence metrics — failover latency,
    leadership-agreement intervals, epoch churn, split-brain acts, and
    message overhead vs a fault-free baseline.  ``run`` accepts a named
    scenario or a path to a JSON timeline file; ``--quorum`` gates every
    act's commits on a majority quorum; ``run NAME --json -`` prints
    the full JSON report.

``adversary {run,sweep}``
    Byzantine elections: run ``quorum_reelect`` (or plain ``reelect``
    with ``--no-quorum``) under message tampering, detector slander and
    crash schedules; ``sweep`` traces the honest-vs-Byzantine overhead
    curve of EXPERIMENTS.md S3.

``trace {record,inspect,stats,diff,causal}``
    The telemetry subsystem's CLI: record single runs to schema-versioned
    JSONL (object engines stream per-message events, the fast engine
    writes per-round aggregates), filter and pretty-print a trace
    (``--timeline`` renders an ASCII per-node grid, ``--lane`` selects
    one lane of a batched fast trace), summarize one, or diff two
    traces — the diff localizes the first round whose send totals
    differ, the tool of choice for pinning down a cross-engine
    divergence.  ``causal`` runs the happens-before analysis: Lamport
    clocks, the causal DAG and the critical path to the decide event,
    with per-kind message attribution.  ``run``, ``scenarios run`` and
    ``adversary run`` also accept ``--trace PATH`` to record while they
    execute.

``monitor check``
    The runtime-verification CLI: sweep a spec grid (``--algorithms``,
    ``--ns``, ``--seeds``, ``--param``) with record-level invariant
    checks and theory-bound conformance against each algorithm's
    envelope; exits non-zero on any violation or out-of-envelope
    record.  ``--progress`` draws a live one-line progress bar,
    ``--ledger`` appends the campaign to the persistent run ledger,
    ``--records PATH`` keeps the raw rows as JSONL.

``history`` / ``compare REF``
    The run-ledger CLI: ``history`` lists past monitored sweeps
    (newest last); ``history prune --keep N`` bounds the ledger to its
    newest N entries; ``compare`` diffs two entries — by index,
    negative index, label, git-SHA or spec-hash prefix — and exits 1
    when per-algorithm message means regress beyond ``--slack`` or new
    violation kinds appear.

``top``
    The observability-plane dashboard: run a monitored spec grid with
    the live multi-line TTY display (overall ETA, one row per worker
    slot, post-hoc violation/conformance counts) while workers spool
    per-cell telemetry snapshots; prints the deterministic collected
    sweep report afterwards.  Degrades to the one-line progress display
    off a TTY.

``report --html``
    ``report`` regenerates the paper's Table 1; with ``--html OUT.html``
    it instead writes a self-contained static campaign report (run
    ledger, messages-vs-rounds tradeoff scatter against the theorem
    envelopes, BENCH_*.json baselines, top-k critical paths).

Examples
--------

::

    python -m repro list
    python -m repro run improved_tradeoff --n 1024 --param ell=5
    python -m repro run async_tradeoff --n 512 --param k=3 --seeds 0 1 2
    python -m repro run adversarial_2round --n 1024 --roots 1 --param epsilon=0.05
    python -m repro bounds 4096
    python -m repro faults monarchical --n 64 --crash 63@2 --lag 2
    python -m repro faults reelect --n 128 --kill-leader --param inner=afek_gafni
    python -m repro faults reelect --n 64 --engine async --kill-leader --roots 1
    python -m repro faults monarchical --n 256 --drop 0.02 --seeds 0 1 2
    python -m repro faults reelect --n 64 --kill-leader --drop 1.0 --drop-kinds ree_coord --max-drops 3
    python -m repro run improved_tradeoff --n 100000 --engine fast --param ell=5
    python -m repro run improved_tradeoff --n 100000 --engine fast --seeds 0 1 2 3 --batch 4
    python -m repro run adversarial_2round --n 100000 --engine fast --roots 1
    python -m repro scenarios list
    python -m repro scenarios run partition_heal --n 64 --seed 1 --json -
    python -m repro scenarios run partition_heal --n 9 --quorum
    python -m repro scenarios run rolling_restart --n 32 --engine fast
    python -m repro scenarios run my_timeline.json --n 16
    python -m repro scenarios sweep election_storm --ns 32 64 --seeds 0 1 2
    python -m repro scenarios sweep election_storm --ns 32 64 --engine fast --batch
    python -m repro adversary run --n 9 --slander 0:8@5-60 --crash 3@10
    python -m repro adversary run --n 9 --byzantine 0 --tamper forge:compete --no-quorum
    python -m repro adversary sweep --ns 8 16 32 --mode both --json -
    python -m repro run improved_tradeoff --n 256 --trace run.jsonl
    python -m repro scenarios run flapping_leader --n 8 --trace scenario.jsonl
    python -m repro trace record improved_tradeoff --n 256 --engine fast -o fast.jsonl
    python -m repro trace inspect run.jsonl --kind decide --timeline
    python -m repro trace inspect batched.jsonl --lane 1 --timeline
    python -m repro trace stats fast.jsonl
    python -m repro trace diff run.jsonl fast.jsonl
    python -m repro trace diff run.jsonl fast.jsonl --json -
    python -m repro trace causal run.jsonl
    python -m repro trace causal run.jsonl --json -
    python -m repro monitor check --ns 32 64 --seeds 0 1 2 --progress
    python -m repro monitor check --algorithms las_vegas --ns 256 --ledger .repro/ledger.jsonl --label nightly
    python -m repro top --ns 32 64 --seeds 0 1 --workers 4
    python -m repro report --html report.html --traces run.jsonl
    python -m repro history --limit 5
    python -m repro history prune --keep 50
    python -m repro compare -2 --to -1
    python -m repro compare nightly --slack 0.05
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Dict, List, Optional

from repro.analysis import RunSpec, Table, execute_spec, run
from repro.common import SimulationLimitExceeded
from repro.core import ALGORITHMS, get_algorithm
from repro.ids import assign_random, small_universe, tradeoff_universe
from repro.lowerbound import bounds

try:
    from repro.fastsync.xp import BackendUnavailable
except ImportError:  # numpy missing: the seam never resolves, nothing to catch

    class BackendUnavailable(ImportError):  # type: ignore[no-redef]
        """Placeholder so ``main`` can catch the seam error unconditionally."""


def _parse_param(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def cmd_list(_args: argparse.Namespace) -> int:
    try:
        from repro.fastsync.xp import available_backends

        backends = ",".join(available_backends()) or "-"
    except ImportError:
        # numpy missing: the fast engine is unavailable, see repro.fastsync.
        backends = "-"
    table = Table(
        ["name", "engine", "fast", "backends", "wake-up", "paper", "messages", "time"],
        title="Registered algorithms",
    )
    for spec in ALGORITHMS.values():
        table.add_row(
            spec.name,
            spec.engine,
            "yes" if spec.has_fast else "-",
            backends if spec.has_fast else "-",
            "+".join(spec.wakeup),
            spec.paper_ref,
            spec.messages_formula,
            spec.time_formula,
        )
    print(table.render())
    return 0


def _ids_for(name: str, n: int, params: Dict[str, Any], rng: random.Random) -> Optional[List[int]]:
    if name == "small_id":
        g = int(params.get("g", 1))
        return assign_random(small_universe(n, g), n, rng)
    spec = get_algorithm(name)
    if spec.deterministic:
        return assign_random(tradeoff_universe(n), n, rng)
    return None  # randomized algorithms: default 1..n is fine


def cmd_run(args: argparse.Namespace) -> int:
    spec = get_algorithm(args.name)
    engine = spec.engine if args.engine == "auto" else args.engine
    if engine in ("sync", "async") and engine != spec.engine:
        raise SystemExit(
            f"error: {spec.name} runs on the {spec.engine} engine (got --engine {engine})"
        )
    if engine == "fast":
        if spec.engine != "sync":
            raise SystemExit("error: the fast engine vectorizes sync algorithms only")
        try:
            from repro.fastsync import get_fast_algorithm

            fast_cls = get_fast_algorithm(spec.name)
        except ImportError as exc:
            raise SystemExit(f"error: {exc}") from None
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
        if args.roots is not None and not getattr(fast_cls, "supports_roots", False):
            raise SystemExit(
                f"error: the fast port of {spec.name} supports simultaneous "
                "wake-up only (adversarial_2round accepts --roots)"
            )
    if args.batch is not None:
        if engine != "fast":
            raise SystemExit("error: --batch needs --engine fast")
        if args.batch < 1:
            raise SystemExit(f"error: --batch must be >= 1, got {args.batch}")
    if args.trace is not None:
        if args.batch is not None:
            # One batched engine run traces all its lanes (lane-annotated
            # JSONL); more than one chunk would overwrite the file.
            if len(args.seeds) > args.batch:
                raise SystemExit(
                    "error: --trace with --batch records one batched engine "
                    "run; pass at most --batch seeds"
                )
        elif len(args.seeds) != 1:
            raise SystemExit("error: --trace records one run; pass exactly one seed")
    params = dict(kv.split("=", 1) for kv in args.param)
    params = {k: _parse_param(v) for k, v in params.items()}
    fault_plan = _partition_plan(args)
    trace_recorder = None
    telemetry = None
    if args.trace is not None:
        if engine == "fast":
            # No per-message objects in the vectorized engine: the trace
            # carries its per-round aggregate counters instead.  Batched
            # runs route the export through RunSpec.trace so every lane
            # lands in the file (lane-annotated).
            if args.batch is None:
                from repro.telemetry import FastTelemetry

                telemetry = FastTelemetry()
        else:
            from repro.telemetry import JsonlRecorder, RunContext

            trace_recorder = JsonlRecorder(
                args.trace,
                context=RunContext(
                    algorithm=args.name, n=args.n, seed=args.seeds[0],
                    engine=engine, params=params,
                ),
            )
    columns = ["seed", "unique leader", "elected id", "messages", "time", "decided"]
    if engine == "fast":
        columns.append("wall s")
    table = Table(
        columns,
        title=f"{spec.name} (n={args.n}, {spec.paper_ref}, engine={engine}) params={params}",
    )
    def _fast_workload(seed: int):
        """IDs and wake-up roots for one fast run (same draws as sync)."""
        rng = random.Random(f"cli:{args.n}:{seed}")
        ids = _ids_for(args.name, args.n, params, rng)
        if args.roots is not None:
            roots = rng.sample(range(args.n), args.roots)
        elif spec.wakeup == ("adversarial",):
            roots = [0]
        else:
            roots = None
        return ids, roots

    records: List[Any] = []
    if engine == "fast" and args.batch is not None:
        # Batched lanes share one configuration: the first seed of each
        # chunk fixes the ID assignment (and roots) for its lanes.
        for start in range(0, len(args.seeds), args.batch):
            chunk = args.seeds[start : start + args.batch]
            ids, roots = _fast_workload(chunk[0])
            records.extend(
                execute_spec(
                    RunSpec(
                        algorithm=args.name,
                        n=args.n,
                        engine="fast",
                        seeds=tuple(chunk),
                        batch=len(chunk),
                        params=params,
                        ids=ids,
                        roots=roots,
                        faults=fault_plan,
                        trace=args.trace,
                    )
                )
            )
    else:
        for seed in args.seeds:
            rng = random.Random(f"cli:{args.n}:{seed}")
            if engine == "fast":
                ids, roots = _fast_workload(seed)
                record = run(
                    RunSpec(
                        algorithm=args.name,
                        n=args.n,
                        engine="fast",
                        seeds=(seed,),
                        params=params,
                        ids=ids,
                        roots=roots,
                        faults=fault_plan,
                    ),
                    telemetry=telemetry,
                )
            elif spec.engine == "sync":
                ids = _ids_for(args.name, args.n, params, rng)
                awake = None
                if args.roots is not None:
                    awake = rng.sample(range(args.n), args.roots)
                elif spec.wakeup == ("adversarial",):
                    awake = [0]
                record = run(
                    RunSpec(
                        algorithm=args.name,
                        n=args.n,
                        engine="sync",
                        seeds=(seed,),
                        params=params,
                        ids=ids,
                        awake=awake,
                        faults=fault_plan,
                    ),
                    recorder=trace_recorder,
                )
            else:
                ids = _ids_for(args.name, args.n, params, rng)
                wake_times = None
                if args.name == "async_afek_gafni":
                    wake_times = {u: 0.0 for u in range(args.n)}
                elif args.roots is not None:
                    wake_times = {u: 0.0 for u in rng.sample(range(args.n), args.roots)}
                record = run(
                    RunSpec(
                        algorithm=args.name,
                        n=args.n,
                        engine="async",
                        seeds=(seed,),
                        params=params,
                        ids=ids,
                        wake_times=wake_times,
                        faults=fault_plan,
                        max_events=20_000_000,
                    ),
                    recorder=trace_recorder,
                )
            records.append(record)
    if trace_recorder is not None:
        trace_recorder.close()
        print(f"trace: wrote {trace_recorder.events_written} events to {args.trace}")
    elif telemetry is not None:
        from repro.telemetry import RunContext, dump_events

        written = dump_events(
            args.trace,
            telemetry.events(),
            context=RunContext(
                algorithm=args.name, n=args.n, seed=args.seeds[0],
                engine="fast", mode=telemetry.mode, params=params,
            ),
        )
        print(f"trace: wrote {written} aggregate events to {args.trace}")
    elif args.trace is not None and records:
        receipt = records[0].extra.get("trace") or {}
        print(
            f"trace: wrote {receipt.get('events', 0)} aggregate events to "
            f"{args.trace}"
        )
    failures = 0
    for record in records:
        failures += not record.unique_leader
        row = [
            record.seed,
            record.unique_leader,
            record.elected_id,
            record.messages,
            record.time,
            record.decided,
        ]
        if engine == "fast":
            row.append(f"{record.extra['wall_time_s']:.3f}")
        table.add_row(*row)
    print(table.render())
    if failures:
        print(f"note: {failures}/{len(args.seeds)} runs failed "
              "(expected occasionally for Monte Carlo algorithms)")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    n = args.n
    table = Table(["Table 1 row", "bound at n"], title=f"Paper bounds evaluated at n={n}")
    table.add_row("Thm 3.8 LB, k=2 rounds", bounds.thm38_message_lb(n, 2))
    table.add_row("Thm 3.8 LB, k=5 rounds", bounds.thm38_message_lb(n, 5))
    table.add_row("Thm 3.10 UB, ell=3", bounds.thm310_messages(n, 3))
    table.add_row("Thm 3.10 UB, ell=9", bounds.thm310_messages(n, 9))
    table.add_row("Thm 3.11 LB (n log n)", bounds.thm311_message_lb(n))
    table.add_row("Thm 3.15 UB (d=2, g=1)", bounds.thm315_messages(n, 2, 1))
    table.add_row("AG [1] UB, ell=4", bounds.ag_messages(n, 4))
    table.add_row("AG [1] LB, k=2", bounds.ag_k_round_lb(n, 2))
    table.add_row("[16] MC UB", bounds.kutten16_messages(n))
    table.add_row("[16] LB (sqrt n)", bounds.kutten16_lb(n))
    table.add_row("Thm 3.16 Las Vegas LB", bounds.thm316_las_vegas_lb(n))
    table.add_row("Thm 4.1 UB (eps=0.05)", bounds.thm41_expected_messages(n, 0.05))
    table.add_row("Thm 4.2 LB", bounds.thm42_message_lb(n))
    table.add_row("Thm 5.1 UB, k=2", bounds.thm51_messages(n, 2))
    table.add_row(f"Thm 5.1 UB, k_max={bounds.thm51_max_k(n)}",
                  bounds.thm51_messages(n, bounds.thm51_max_k(n)))
    table.add_row("Thm 5.14 UB (n log n)", bounds.thm514_messages(n))
    table.add_row("[14] reference (n)", bounds.kmp14_messages(n))
    print(table.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    if args.html:
        from repro.obs import write_campaign_report

        path = write_campaign_report(
            args.html,
            ledger_path=args.ledger,
            bench_dirs=tuple(args.bench_dir or ("benchmarks/baselines",)),
            traces=tuple(args.traces or ()),
            top_k=args.top_k,
        )
        print(f"wrote {path}")
        return 0
    from repro.analysis.report import table1_report

    print(table1_report(n=args.n, seeds=args.seeds).render())
    return 0


def _parse_crash(text: str):
    from repro.faults import CrashFault

    try:
        node, at = text.split("@", 1)
        return CrashFault(node=int(node), at=float(at))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"crash spec {text!r} is not NODE@WHEN (e.g. 63@2)"
        ) from None


def _parse_partition(text: str):
    """``CUT@START-END`` (or ``CUT@START``): split {0..CUT-1} from the rest."""
    try:
        cut_text, window = text.split("@", 1)
        cut = int(cut_text)
        if "-" in window:
            start_text, end_text = window.split("-", 1)
            start, end = float(start_text), float(end_text)
        else:
            start, end = float(window), None
        return cut, start, end
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"partition spec {text!r} is not CUT@START-END (e.g. 32@2-6)"
        ) from None


def _partition_plan(args: argparse.Namespace):
    """The ``--partition`` flag as a one-mask :class:`FaultPlan` (or None)."""
    if getattr(args, "partition", None) is None:
        return None
    from repro.faults import FaultPlan, PartitionMask

    cut, start, end = args.partition
    if not 0 < cut < args.n:
        raise SystemExit(
            f"error: --partition cut must be in (0, n), got {cut} with n={args.n}"
        )
    mask = PartitionMask(
        components=(tuple(range(cut)), tuple(range(cut, args.n))),
        start=start,
        end=end,
    )
    return FaultPlan(partitions=(mask,))


def _build_fault_plan(args: argparse.Namespace):
    from repro.faults import DetectorSpec, FaultPlan, LeaderKillPolicy, LinkFaults

    links = ()
    if args.drop or args.duplicate:
        links = (
            LinkFaults(
                drop_prob=args.drop,
                duplicate_prob=args.duplicate,
                kinds=tuple(args.drop_kinds) if args.drop_kinds else None,
                max_drops=args.max_drops,
            ),
        )
    elif args.drop_kinds or args.max_drops is not None:
        raise ValueError("--drop-kinds/--max-drops need --drop or --duplicate")
    policies = ()
    if args.kill_leader:
        policies = (
            LeaderKillPolicy(delay=args.kill_delay, max_kills=args.max_kills),
        )
    detector = DetectorSpec(
        kind=args.detector,
        lag=args.lag,
        noise_horizon=args.noise_horizon,
        false_prob=args.false_prob,
    )
    return FaultPlan(
        crashes=tuple(args.crash), links=links, policies=policies, detector=detector
    )


def _fault_factory(name: str, engine: str, params: Dict[str, Any]):
    """Factory for a faults run; the two fault algorithms are dual-engine."""
    from repro.faults import (
        AsyncMonarchicalElection,
        AsyncReElectionElection,
        MonarchicalElection,
        ReElectionElection,
    )

    from repro.adversary import (
        AsyncQuorumReElectionElection,
        QuorumReElectionElection,
    )

    dual = {
        "monarchical": (MonarchicalElection, AsyncMonarchicalElection),
        "reelect": (ReElectionElection, AsyncReElectionElection),
        "quorum_reelect": (QuorumReElectionElection, AsyncQuorumReElectionElection),
    }
    if name in dual:
        cls = dual[name][0] if engine == "sync" else dual[name][1]
        return lambda: cls(**params)
    spec = get_algorithm(name)
    if spec.engine != engine:
        raise SystemExit(
            f"error: {name} runs on the {spec.engine} engine (got --engine {engine})"
        )
    return spec.make(**params)


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import run_failover_trial

    engine = args.engine
    if engine is None:
        engine = get_algorithm(args.name).engine if args.name not in (
            "monarchical",
            "reelect",
        ) else "sync"
    try:
        plan = _build_fault_plan(args)
        plan.validate_for(args.n)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    params = dict(kv.split("=", 1) for kv in args.param)
    params = {k: _parse_param(v) for k, v in params.items()}
    factory = _fault_factory(args.name, engine, params)
    table = Table(
        [
            "seed",
            "survivor leader",
            "elected id",
            "crashes",
            "detect lat",
            "re-elect time",
            "messages",
            "after crash",
            "time",
        ],
        title=(
            f"faults: {args.name} on {engine} engine "
            f"(n={args.n}) params={params} plan={plan_summary(plan)}"
        ),
    )
    failures = 0
    for seed in args.seeds:
        rng = random.Random(f"cli-faults:{args.n}:{seed}")
        kwargs: Dict[str, Any] = {}
        if engine == "sync":
            if args.roots is not None:
                kwargs["awake"] = rng.sample(range(args.n), args.roots)
        else:
            if args.roots is not None:
                kwargs["wake_times"] = {
                    u: 0.0 for u in rng.sample(range(args.n), args.roots)
                }
            else:
                kwargs["wake_times"] = {u: 0.0 for u in range(args.n)}
            kwargs["max_events"] = 20_000_000
        try:
            report = run_failover_trial(
                engine, args.n, factory, plan, seed=seed, **kwargs
            )
        except SimulationLimitExceeded as exc:
            # Crash-oblivious algorithms may stall forever under faults
            # (e.g. waiting on a reply the network dropped).
            failures += 1
            table.add_row(seed, "STALLED", "-", "-", "-", "-", "-", "-", str(exc))
            continue
        failures += not report.unique_surviving_leader
        latency = report.mean_detection_latency
        table.add_row(
            seed,
            report.unique_surviving_leader,
            report.surviving_leader_id,
            report.crashes,
            "-" if latency is None else f"{latency:.2f}",
            "-" if report.reelection_time is None else f"{report.reelection_time:.2f}",
            report.record.messages,
            report.messages_after_first_crash,
            f"{report.record.time:.2f}",
        )
    print(table.render())
    if failures:
        print(
            f"note: {failures}/{len(args.seeds)} runs ended without a unique "
            "surviving leader"
        )
    return 1 if failures else 0


def _write_json(path: str, payload: Any) -> None:
    from repro.analysis.export import dump_json

    dump_json(path, payload)


def cmd_scenarios_list(_args: argparse.Namespace) -> int:
    from repro.scenarios import NAMED_SCENARIOS, get_scenario

    table = Table(
        ["name", "timeline", "description"], title="Named scenarios (n=64 preview)"
    )
    for name in sorted(NAMED_SCENARIOS):
        scenario = get_scenario(name, 64)
        table.add_row(name, scenario.summary(), scenario.description)
    print(table.render())
    return 0


def _scenario_source(text: str) -> str:
    """Argparse validator: a named scenario or a JSON timeline file."""
    import os

    from repro.scenarios import NAMED_SCENARIOS

    if text in NAMED_SCENARIOS or text.endswith(".json") or os.path.exists(text):
        return text
    known = ", ".join(sorted(NAMED_SCENARIOS))
    raise argparse.ArgumentTypeError(
        f"unknown scenario {text!r}; known scenarios: {known} "
        "(or pass a path to a .json timeline)"
    )


def _load_scenario(name: str, n: int):
    """Resolve a CLI scenario argument: library name or JSON file."""
    from repro.scenarios import NAMED_SCENARIOS, get_scenario, scenario_from_json

    if name in NAMED_SCENARIOS:
        return get_scenario(name, n)
    return scenario_from_json(name)


def cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioRunner, ScenarioSchemaError, scenario_report

    trace_recorder = None
    if args.trace is not None:
        from repro.telemetry import JsonlRecorder, RunContext

        trace_recorder = JsonlRecorder(
            args.trace,
            context=RunContext(
                scenario=args.name, n=args.n, seed=args.seed, engine=args.engine,
            ),
        )
    try:
        scenario = _load_scenario(args.name, args.n)
        runner = ScenarioRunner(
            scenario,
            args.n,
            engine=args.engine,
            seed=args.seed,
            inner=args.inner,
            lag=args.lag,
            quorum=args.quorum,
            recorder=trace_recorder,
        )
    except (ScenarioSchemaError, ValueError) as exc:
        if trace_recorder is not None:
            trace_recorder.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = runner.run()
    if trace_recorder is not None:
        trace_recorder.close()
        print(f"trace: wrote {trace_recorder.events_written} events to {args.trace}")
    metrics = result.metrics
    table = Table(
        ["epoch", "trigger", "t_event", "t_start", "duration", "leader(s)",
         "messages", "failover"],
        title=(
            f"scenario {scenario.name} on {args.engine} engine "
            f"(n={args.n}, seed={args.seed}, inner={runner.inner})"
        ),
    )
    for e in result.epochs:
        table.add_row(
            e.epoch,
            e.trigger,
            e.t_event,
            e.t_start,
            e.duration,
            "+".join(str(i) for i in e.leader_ids) or "-",
            e.messages,
            f"{e.failover_latency:.1f}" if e.trigger != "initial" else "-",
        )
    print(table.render())
    mean_failover = metrics.mean_failover_latency
    print(
        f"elections={metrics.elections} epoch_churn={metrics.epoch_churn} "
        f"mean_failover_latency="
        f"{'-' if mean_failover is None else f'{mean_failover:.2f}'} "
        f"agreed_fraction={metrics.agreed_fraction:.2f} "
        f"message_overhead={metrics.message_overhead:.2f}x "
        f"split_brain_acts={metrics.split_brain_acts}"
    )
    print(
        f"final leader: {metrics.final_leader_id} "
        f"({'agreed by all up nodes' if metrics.final_agreed else 'NO AGREEMENT'})"
    )
    for note in result.notes:
        print(f"note: {note}")
    if args.json:
        _write_json(args.json, scenario_report(result))
    return 0 if metrics.final_agreed else 1


def cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioRunner, ScenarioSchemaError, run_scenario_batch

    if args.batch and args.engine != "fast":
        print("error: --batch needs --engine fast", file=sys.stderr)
        return 2
    if args.workers > 1 and args.batch:
        # Batched lanes already share one engine run; sharding them
        # across processes would change the lane grouping.
        print("error: --workers and --batch are mutually exclusive", file=sys.stderr)
        return 2
    table = Table(
        ["n", "seed", "elections", "epoch churn", "mean failover",
         "agreed frac", "messages", "overhead", "final agreed"],
        title=f"scenario sweep: {args.name} on {args.engine} engine",
    )
    metrics_out: Dict[str, Any] = {}
    failures = 0
    parallel_metrics: Dict[Any, Dict[str, Any]] = {}
    progress = None
    if getattr(args, "progress", False):
        from repro.monitor import SweepProgress

        progress = SweepProgress(live=True)
    if args.workers > 1:
        # Shard (n, seed) cells across worker processes: the scenario
        # crosses the boundary as its JSON timeline and each worker
        # replays it with the same per-seed RNG streams, so the table is
        # bit-identical to the sequential sweep.
        from repro.scenarios import scenario_to_json
        from repro.sweep.scheduler import SweepCell, run_cells
        from repro.sweep.worker import scenario_cell

        cells = []
        keys = []
        try:
            for n in args.ns:
                scenario_json = scenario_to_json(_load_scenario(args.name, n))
                for seed in args.seeds:
                    payload = (
                        scenario_json, n, seed, args.engine,
                        args.inner, args.lag, args.quorum,
                    )
                    cells.append(SweepCell(index=len(cells), cost=n, payload=payload))
                    keys.append((n, seed))
        except (ScenarioSchemaError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        values = run_cells(
            cells, scenario_cell, workers=args.workers, progress=progress
        )
        parallel_metrics = dict(zip(keys, values))
    elif progress is not None:
        # Sequential/batched paths have no scheduler; drive the same
        # listener manually so --progress behaves identically.
        progress.start(
            len(args.ns) * len(args.seeds),
            float(sum(n for n in args.ns for _ in args.seeds)),
            1,
        )
    sequential_cell = 0
    for n in args.ns:
        results_by_seed: Dict[int, Any] = {}
        if args.batch:
            try:
                scenario = _load_scenario(args.name, n)
                batch_results = run_scenario_batch(
                    scenario, n, list(args.seeds), engine="fast",
                    inner=args.inner, lag=args.lag, quorum=args.quorum,
                )
            except (ScenarioSchemaError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            results_by_seed = dict(zip(args.seeds, batch_results))
        for seed in args.seeds:
            if args.workers > 1:
                from types import SimpleNamespace

                m = SimpleNamespace(**parallel_metrics[(n, seed)])
            elif args.batch:
                m = results_by_seed[seed].metrics
            else:
                try:
                    scenario = _load_scenario(args.name, n)
                    runner = ScenarioRunner(
                        scenario, n, engine=args.engine, seed=seed,
                        inner=args.inner, lag=args.lag, quorum=args.quorum,
                    )
                except (ScenarioSchemaError, ValueError) as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                cell = None
                if progress is not None and args.workers <= 1:
                    from types import SimpleNamespace

                    cell = SimpleNamespace(index=sequential_cell, cost=float(n))
                    progress.cell_start(cell)
                import time as _time

                t0 = _time.perf_counter()
                m = runner.run().metrics
                if cell is not None:
                    progress.cell_finish(cell, _time.perf_counter() - t0, 0)
            if args.workers <= 1 and args.batch and progress is not None:
                from types import SimpleNamespace

                cell = SimpleNamespace(index=sequential_cell, cost=float(n))
                progress.cell_start(cell)
                progress.cell_finish(cell, 0.0, 0)
            sequential_cell += 1
            failures += not m.final_agreed
            mean_failover = m.mean_failover_latency
            table.add_row(
                n, seed, m.elections, m.epoch_churn,
                "-" if mean_failover is None else f"{mean_failover:.2f}",
                f"{m.agreed_fraction:.2f}", m.total_messages,
                f"{m.message_overhead:.2f}", m.final_agreed,
            )
            key = f"n={n}/seed={seed}"
            metrics_out[f"{key}/messages"] = m.total_messages
            metrics_out[f"{key}/epoch_churn"] = m.epoch_churn
            if mean_failover is not None:
                metrics_out[f"{key}/mean_failover_latency"] = mean_failover
    if progress is not None and args.workers <= 1:
        progress.finish(progress.elapsed)
    print(table.render())
    if args.json:
        _write_json(
            args.json,
            {"scenario": args.name, "engine": args.engine, "metrics": metrics_out},
        )
    if failures:
        print(f"note: {failures} run(s) ended without an agreed leader")
    return 1 if failures else 0


def _parse_slander(text: str):
    """``ACCUSER:VICTIM@START[-END]`` -> SlanderWindow (e.g. ``0:8@5-60``)."""
    from repro.adversary import SlanderWindow

    try:
        nodes, window = text.split("@", 1)
        accuser, victim = nodes.split(":", 1)
        if "-" in window:
            start, end = window.split("-", 1)
            end_val = float(end) if end else None
        else:
            start, end_val = window, None
        accuser_i, victim_i, start_f = int(accuser), int(victim), float(start)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"slander spec {text!r} is not ACCUSER:VICTIM@START[-END] (e.g. 0:8@5-60)"
        ) from None
    try:
        # Semantic errors (self-slander, end before start) keep their own
        # messages instead of being misreported as format errors.
        return SlanderWindow(
            accuser=accuser_i, victims=(victim_i,), start=start_f, end=end_val
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_tamper(text: str):
    """``MODE[:KIND,KIND...]`` -> TamperRule (e.g. ``forge:compete``)."""
    from repro.adversary import TamperRule

    mode, _, kinds = text.partition(":")
    try:
        return TamperRule(
            mode=mode, kinds=tuple(kinds.split(",")) if kinds else None
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _build_adversary_plan(args: argparse.Namespace):
    from repro.adversary import AdversaryPlan

    if not args.byzantine and not args.slander and not args.tamper:
        return None
    return AdversaryPlan(
        byzantine=tuple(args.byzantine),
        tampers=tuple(args.tamper),
        slanders=tuple(args.slander),
    )


def _adversary_fault_plan(args: argparse.Namespace, adversary):
    from repro.faults import DetectorSpec, FaultPlan

    return FaultPlan(
        crashes=tuple(args.crash),
        detector=DetectorSpec(kind="perfect", lag=args.lag),
        adversary=adversary,
    )


def _adversary_factory(args: argparse.Namespace, engine: str):
    from repro.adversary import (
        AsyncQuorumReElectionElection,
        QuorumReElectionElection,
    )
    from repro.faults import AsyncReElectionElection, ReElectionElection

    inner = args.inner
    if args.no_quorum:
        if engine == "sync":
            return lambda: ReElectionElection(inner=inner or "afek_gafni")
        return lambda: AsyncReElectionElection(inner=inner or "async_tradeoff")
    if engine == "sync":
        return lambda: QuorumReElectionElection(
            inner=inner or "afek_gafni", threshold=args.threshold
        )
    return lambda: AsyncQuorumReElectionElection(
        inner=inner or "async_tradeoff", threshold=args.threshold
    )


def cmd_adversary_run(args: argparse.Namespace) -> int:
    from repro.faults import run_failover_trial

    if args.trace is not None and len(args.seeds) != 1:
        print("error: --trace records one run; pass exactly one seed",
              file=sys.stderr)
        return 2
    try:
        adversary = _build_adversary_plan(args)
        plan = _adversary_fault_plan(args, adversary)
        plan.validate_for(args.n)
        factory = _adversary_factory(args, args.engine)
        factory()  # eager validation: threshold range, inner algorithm name
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace_recorder = None
    if args.trace is not None:
        from repro.telemetry import JsonlRecorder, RunContext

        algo_name = "reelect" if args.no_quorum else "quorum_reelect"
        trace_recorder = JsonlRecorder(
            args.trace,
            context=RunContext(
                algorithm=algo_name, n=args.n, seed=args.seeds[0],
                engine=args.engine,
            ),
        )
    algo = "reelect" if args.no_quorum else "quorum_reelect"
    table = Table(
        ["seed", "survivor leader", "elected id", "crashes", "tampered",
         "messages", "time"],
        title=(
            f"adversary: {algo} on {args.engine} engine (n={args.n}) "
            f"byzantine={sorted(set(args.byzantine))} "
            f"slanders={len(args.slander)} tampers={len(args.tamper)} "
            f"crashes={len(args.crash)}"
        ),
    )
    failures = 0
    for seed in args.seeds:
        kwargs: Dict[str, Any] = {}
        if args.engine == "async":
            kwargs["wake_times"] = {u: 0.0 for u in range(args.n)}
            kwargs["max_events"] = 20_000_000
        try:
            report = run_failover_trial(
                args.engine, args.n, factory, plan, seed=seed,
                recorder=trace_recorder, **kwargs,
            )
        except SimulationLimitExceeded as exc:
            failures += 1
            table.add_row(seed, "STALLED", "-", "-", "-", "-", str(exc))
            continue
        fm = report.record.extra["result"].fault_metrics
        failures += not report.unique_surviving_leader
        table.add_row(
            seed,
            report.unique_surviving_leader,
            report.surviving_leader_id,
            report.crashes,
            fm.tampered_messages if fm else 0,
            report.record.messages,
            f"{report.record.time:.2f}",
        )
    if trace_recorder is not None:
        trace_recorder.close()
        print(f"trace: wrote {trace_recorder.events_written} events to {args.trace}")
    print(table.render())
    if failures:
        print(
            f"note: {failures}/{len(args.seeds)} runs ended without a unique "
            "surviving leader"
        )
    return 1 if failures else 0


def cmd_adversary_sweep(args: argparse.Namespace) -> int:
    """Honest vs Byzantine overhead curve (EXPERIMENTS.md S3)."""
    from repro.adversary import AdversaryPlan, SlanderWindow, TamperRule
    from repro.faults import CrashFault, DetectorSpec, FaultPlan, run_failover_trial

    table = Table(
        ["n", "f", "honest msgs", "byz msgs", "overhead", "honest time",
         "byz time", "converged"],
        title=f"adversary sweep: honest vs Byzantine quorum_reelect "
        f"({args.engine} engine, mode={args.mode})",
    )
    try:
        factory = _adversary_factory(args, args.engine)
        factory()  # eager validation: threshold range, inner algorithm name
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics_out: Dict[str, Any] = {}
    failures = 0
    for n in args.ns:
        f = max(1, min(args.f, (n - 1) // 2 - 1)) if args.f else max(1, n // 4)
        f = min(f, (n - 1) // 2)
        if args.mode in ("slander", "both") and f < 1:
            print(f"note: n={n} is too small for a slander sweep point; skipped",
                  file=sys.stderr)
            continue
        tampers = ()
        slanders = ()
        if args.mode in ("forge", "both"):
            tampers = (TamperRule(mode="forge", kinds=("compete",)),)
        if args.mode in ("slander", "both"):
            # Byzantine node 0 slanders the f top-ID nodes from t=2 on.
            slanders = (
                SlanderWindow(
                    accuser=0, victims=tuple(range(n - f, n)), start=2.0
                ),
            )
        detector = DetectorSpec(kind="perfect", lag=args.lag)
        crashes = (CrashFault(node=1, at=4.0),) if args.crash_one else ()
        try:
            adversary = AdversaryPlan(byzantine=(0,), tampers=tampers, slanders=slanders)
            honest_plan = FaultPlan(crashes=crashes, detector=detector)
            byz_plan = FaultPlan(crashes=crashes, detector=detector, adversary=adversary)
            byz_plan.validate_for(n)
        except ValueError as exc:
            print(f"error: n={n}: {exc}", file=sys.stderr)
            return 2
        h_msgs: List[int] = []
        b_msgs: List[int] = []
        h_time: List[float] = []
        b_time: List[float] = []
        converged = True
        for seed in args.seeds:
            kwargs: Dict[str, Any] = {}
            if args.engine == "async":
                kwargs["wake_times"] = {u: 0.0 for u in range(n)}
                kwargs["max_events"] = 20_000_000
            try:
                honest = run_failover_trial(
                    args.engine, n, factory, honest_plan, seed=seed, **kwargs
                )
                byz = run_failover_trial(
                    args.engine, n, factory, byz_plan, seed=seed, **kwargs
                )
            except SimulationLimitExceeded:
                # The plain wrapper (--no-quorum) legitimately stalls
                # under slander; a stalled seed fails the sweep point
                # instead of killing the whole sweep with a traceback.
                converged = False
                continue
            converged &= honest.unique_surviving_leader
            converged &= byz.unique_surviving_leader
            h_msgs.append(honest.record.messages)
            b_msgs.append(byz.record.messages)
            h_time.append(honest.record.time)
            b_time.append(byz.record.time)
        failures += not converged
        if not h_msgs:
            table.add_row(n, f, "-", "-", "STALLED", "-", "-", converged)
            continue
        hm = sum(h_msgs) / len(h_msgs)
        bm = sum(b_msgs) / len(b_msgs)
        overhead = bm / max(hm, 1.0)
        table.add_row(
            n, f, f"{hm:.0f}", f"{bm:.0f}", f"{overhead:.2f}x",
            f"{sum(h_time) / len(h_time):.1f}",
            f"{sum(b_time) / len(b_time):.1f}", converged,
        )
        metrics_out[f"n={n}/honest_messages"] = hm
        metrics_out[f"n={n}/byzantine_messages"] = bm
        metrics_out[f"n={n}/overhead"] = round(overhead, 4)
    print(table.render())
    if args.json:
        _write_json(
            args.json,
            {"engine": args.engine, "mode": args.mode, "metrics": metrics_out},
        )
    if failures:
        print(f"note: {failures} sweep point(s) failed to converge")
    return 1 if failures else 0


def cmd_trace_record(args: argparse.Namespace) -> int:
    """`repro trace record NAME -o PATH` == `repro run NAME --trace PATH`."""
    run_args = argparse.Namespace(
        name=args.name,
        n=args.n,
        seeds=[args.seed],
        param=args.param,
        roots=args.roots,
        engine=args.engine,
        batch=None,
        trace=args.out,
        partition=getattr(args, "partition", None),
    )
    return cmd_run(run_args)


def _load_trace_or_fail(path: str):
    from repro.telemetry import TraceSchemaError, load_trace

    try:
        return load_trace(path)
    except (OSError, TraceSchemaError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _trace_banner(path: str, trace) -> str:
    context = ", ".join(f"{k}={v!r}" for k, v in sorted(trace.context.items()))
    return f"{path}: schema {trace.schema}" + (f" [{context}]" if context else "")


def cmd_trace_inspect(args: argparse.Namespace) -> int:
    from repro.telemetry import filter_lane, render_timeline, trace_lanes

    trace = _load_trace_or_fail(args.path)
    if trace is None:
        return 2
    print(_trace_banner(args.path, trace))
    full_trace = trace
    if args.lane is not None:
        lanes = trace_lanes(trace)
        if args.lane not in (lanes or [0]):
            print(
                f"error: lane {args.lane} not in this trace (lanes: {lanes})",
                file=sys.stderr,
            )
            return 2
        trace = filter_lane(trace, args.lane)
        if lanes:
            print(f"lane {args.lane} of lanes {lanes}")
    selected = list(zip(trace.events, trace.annotations))
    if args.kind:
        selected = [(e, a) for e, a in selected if e.kind in args.kind]
    if args.node is not None:
        selected = [(e, a) for e, a in selected if e.node == args.node]
    shown = selected if args.limit == 0 else selected[: args.limit]
    for e, a in shown:
        ann = ""
        if a:
            ann = "  [" + " ".join(f"{k}={v}" for k, v in sorted(a.items())) + "]"
        print(f"t={e.when:<8g} node={e.node:<5} {e.kind:<8} {e.detail!r}{ann}")
    if len(shown) < len(selected):
        print(f"... {len(selected) - len(shown)} more matching events (raise --limit)")
    print(f"{len(selected)} of {len(trace.events)} events matched")
    if args.timeline:
        print()
        print(render_timeline(full_trace, lane=args.lane))
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.telemetry import trace_stats

    trace = _load_trace_or_fail(args.path)
    if trace is None:
        return 2
    s = trace_stats(trace)
    print(_trace_banner(args.path, trace))
    print(
        f"events: {s.events}  nodes: {s.nodes}  rounds: {s.rounds}  "
        f"messages: {s.messages}"
    )
    if s.first_when is not None:
        print(f"span: t={s.first_when:g} .. t={s.last_when:g}")
    print(
        "events by kind: "
        + (", ".join(f"{k}={v}" for k, v in s.by_kind.items()) or "-")
    )
    print(
        "payload kinds:  "
        + (", ".join(f"{k}={v}" for k, v in s.payload_kinds.items()) or "-")
    )
    print(f"decides: {s.decides}  crashes: {s.crashes}  tampered: {s.tampered}")
    if args.json:
        _write_json(args.json, {"context": trace.context, "stats": asdict(s)})
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.telemetry import diff_traces

    trace_a = _load_trace_or_fail(args.a)
    if trace_a is None:
        return 2
    trace_b = _load_trace_or_fail(args.b)
    if trace_b is None:
        return 2
    diff = diff_traces(trace_a, trace_b)
    print(diff.summary())
    for line in diff.context_diffs:
        print(f"  {line}")
    for line in diff.notes:
        print(f"  {line}")
    if args.json:
        _write_json(
            args.json,
            {
                "a": args.a,
                "b": args.b,
                "summary": diff.summary(),
                "diff": asdict(diff),
            },
        )
    return 0 if diff.identical else 1


def cmd_trace_causal(args: argparse.Namespace) -> int:
    from repro.telemetry import build_graph, critical_path, explain

    trace = _load_trace_or_fail(args.path)
    if trace is None:
        return 2
    graph = build_graph(trace)
    path = critical_path(trace, graph)
    print(explain(trace, graph=graph))
    if args.json:
        _write_json(
            args.json,
            {
                "context": trace.context,
                "events": len(trace.events),
                "message_edges": len(graph.message_edges),
                "max_clock": max(graph.clocks, default=0),
                "critical_path": {
                    "hops": [hop.label() for hop in path.hops],
                    "via": [hop.via for hop in path.hops],
                    "span": path.span,
                    "round_length": path.round_length,
                    "decide_round": path.decide_round,
                    "message_hops": path.message_hops,
                    "messages_by_kind": dict(path.messages_by_kind),
                    "messages_by_act": dict(path.messages_by_act),
                    "clock": path.clock,
                },
            },
        )
    return 0


#: Fault-free ``monitor check`` defaults: every sync algorithm with a
#: registered theory envelope (small_id needs its ID-density parameter).
_MONITOR_DEFAULT_ALGORITHMS = [
    "improved_tradeoff",
    "afek_gafni",
    "small_id",
    "kutten16",
    "las_vegas",
    "adversarial_2round",
]
_MONITOR_DEFAULT_PARAMS: Dict[str, Dict[str, Any]] = {"small_id": {"d": 4}}


def _monitor_specs(args: argparse.Namespace) -> List[RunSpec]:
    specs = []
    for name in args.algorithms:
        algo = get_algorithm(name)
        params = dict(_MONITOR_DEFAULT_PARAMS.get(name, {}))
        for kv in args.param:
            key, _, value = kv.partition("=")
            params[key] = _parse_param(value)
        for n in args.ns:
            rng = random.Random(f"{name}:{n}:monitor")
            specs.append(
                RunSpec(
                    algorithm=name,
                    n=n,
                    engine=algo.engine,
                    seeds=tuple(args.seeds),
                    params=params,
                    ids=_ids_for(name, n, params, rng),
                )
            )
    return specs


def cmd_monitor_check(args: argparse.Namespace) -> int:
    from repro.analysis import sweep
    from repro.monitor import SweepMonitor, SweepProgress

    try:
        specs = _monitor_specs(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor = SweepMonitor(
        slack=args.slack,
        ledger=args.ledger,
        label=args.label,
        context={"cli": "monitor check", "ns": list(args.ns)},
    )
    progress = SweepProgress(live=True) if args.progress else None
    records = sweep(
        specs, workers=args.workers, monitor=monitor, progress=progress
    )
    table = Table(
        ["algorithm", "paper", "runs", "conforming", "violations"],
        title=f"monitored sweep (ns={list(args.ns)}, seeds={list(args.seeds)})",
    )
    by_algo: Dict[str, Dict[str, int]] = {}
    for record in records:
        name = record.extra.get("algorithm", "?")
        by_algo.setdefault(name, {"runs": 0})["runs"] += 1
    failures_by_algo: Dict[str, int] = {}
    for failure in monitor.conformance.failures:
        failures_by_algo[failure.algorithm] = (
            failures_by_algo.get(failure.algorithm, 0) + 1
        )
    violations_by_algo: Dict[str, int] = {}
    for violation in monitor.violations:
        name = violation.context.get("algorithm", "?")
        violations_by_algo[name] = violations_by_algo.get(name, 0) + 1
    for name in args.algorithms:
        algo = get_algorithm(name)
        runs = by_algo.get(name, {}).get("runs", 0)
        table.add_row(
            name,
            algo.envelope.paper_ref if algo.envelope else "-",
            runs,
            runs - failures_by_algo.get(name, 0),
            violations_by_algo.get(name, 0),
        )
    print(table.render())
    print(monitor.summary())
    if monitor.ledger_path:
        print(f"ledger: appended to {monitor.ledger_path}")
    if args.records:
        from repro.analysis.export import records_to_jsonl

        with open(args.records, "w") as fh:
            fh.write(records_to_jsonl(records))
        print(f"wrote {args.records}")
    if args.json:
        _write_json(args.json, monitor.as_dict())
    return 0 if monitor.ok else 1


def cmd_history(args: argparse.Namespace) -> int:
    from repro.monitor import DEFAULT_LEDGER_PATH, read_ledger

    args.ledger = args.ledger or DEFAULT_LEDGER_PATH
    entries = read_ledger(args.ledger)
    if not entries:
        print(f"ledger {args.ledger} is empty")
        return 0
    shown = entries if args.limit == 0 else entries[-args.limit :]
    offset = len(entries) - len(shown)
    table = Table(
        ["#", "when", "git", "label", "runs", "viol", "conform", "wall"],
        title=f"run ledger: {args.ledger} ({len(entries)} entries)",
    )
    import datetime

    for i, entry in enumerate(shown):
        ts = entry.get("ts")
        when = (
            datetime.datetime.fromtimestamp(ts).strftime("%Y-%m-%d %H:%M")
            if isinstance(ts, (int, float))
            else "-"
        )
        sha = entry.get("git_sha") or "-"
        conformance = entry.get("conformance") or {}
        rate = conformance.get("rate")
        wall = entry.get("wall_time_s")
        table.add_row(
            offset + i,
            when,
            sha[:8] if isinstance(sha, str) else "-",
            entry.get("label") or "-",
            entry.get("runs", "-"),
            len(entry.get("violations") or ()),
            f"{rate:.1%}" if isinstance(rate, (int, float)) else "-",
            f"{wall:.1f}s" if isinstance(wall, (int, float)) else "-",
        )
    print(table.render())
    if args.json:
        _write_json(args.json, {"ledger": args.ledger, "entries": shown})
    return 0


def cmd_history_prune(args: argparse.Namespace) -> int:
    from repro.monitor import DEFAULT_LEDGER_PATH, prune_ledger

    path = args.ledger or DEFAULT_LEDGER_PATH
    try:
        result = prune_ledger(path, keep=args.keep)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"pruned {path}: kept {result['kept']}, dropped {result['dropped']}"
    )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.analysis import sweep
    from repro.monitor import SweepMonitor
    from repro.obs import SweepTop, collect, new_spool_dir

    try:
        specs = _monitor_specs(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor = SweepMonitor(
        slack=args.slack,
        ledger=args.ledger,
        label=args.label,
        context={"cli": "top", "ns": list(args.ns)},
    )
    spool = args.spool or new_spool_dir()
    top = SweepTop(monitor=monitor)
    sweep(specs, workers=args.workers, monitor=monitor, progress=top, spool_dir=spool)
    top.finalize(monitor)
    report = collect(spool)
    print(report.summary())
    print(monitor.summary())
    print(f"spool: {spool}")
    if monitor.ledger_path:
        print(f"ledger: appended to {monitor.ledger_path}")
    return 0 if monitor.ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.monitor import (
        DEFAULT_LEDGER_PATH,
        compare_entries,
        read_ledger,
        resolve_ref,
    )

    entries = read_ledger(args.ledger or DEFAULT_LEDGER_PATH)
    try:
        base = resolve_ref(entries, args.ref)
        new = resolve_ref(entries, args.to)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = compare_entries(base, new, slack=args.slack)
    print(diff.summary())
    if args.json:
        _write_json(args.json, diff.to_dict())
    return 1 if diff.regressed else 0


def plan_summary(plan) -> str:
    parts = []
    if plan.crashes:
        parts.append(f"{len(plan.crashes)} crash(es)")
    if plan.policies:
        parts.append("kill-leader")
    if plan.links:
        parts.append("lossy links")
    parts.append(plan.detector.kind)
    return "+".join(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Improved Tradeoffs for Leader Election — reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms").set_defaults(func=cmd_list)

    run_p = sub.add_parser("run", help="run one algorithm")
    run_p.add_argument("name", choices=sorted(ALGORITHMS))
    run_p.add_argument("--n", type=int, default=1024, help="clique size")
    run_p.add_argument("--seeds", type=int, nargs="+", default=[0], help="seeds to run")
    run_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="algorithm parameter (repeatable), e.g. --param ell=5",
    )
    run_p.add_argument(
        "--roots", type=int, default=None,
        help="adversarial wake-up: number of initially awake nodes "
        "(on the fast engine only adversarial_2round accepts this)",
    )
    run_p.add_argument(
        "--engine", choices=["auto", "sync", "async", "fast"], default="auto",
        help="engine override; 'fast' selects the vectorized numpy engine "
        "(every sync algorithm has a port; adversarial_2round also takes "
        "--roots, the rest assume simultaneous wake-up)",
    )
    run_p.add_argument(
        "--batch", type=int, default=None, metavar="LANES",
        help="fast engine only: execute the seeds in batched engine runs of "
        "LANES lanes each (one FastSyncNetwork execution per chunk; lanes "
        "of a chunk share the first seed's ID assignment and roots)",
    )
    run_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record the run to a JSONL trace (single seed; object engines "
        "stream per-message events, the fast engine writes per-round "
        "aggregate counters)",
    )
    run_p.add_argument(
        "--partition", type=_parse_partition, default=None,
        metavar="CUT@START-END",
        help="split nodes {0..CUT-1} from {CUT..n-1} for rounds "
        "[START, END) with automatic heal (omit -END for a permanent "
        "split); runs on every engine, including the vectorized fault "
        "runtime on --engine fast",
    )
    run_p.set_defaults(func=cmd_run)

    bounds_p = sub.add_parser("bounds", help="evaluate the Table 1 formulas")
    bounds_p.add_argument("n", type=int)
    bounds_p.set_defaults(func=cmd_bounds)

    faults_p = sub.add_parser(
        "faults", help="run one election under a crash/link fault plan"
    )
    faults_p.add_argument("name", choices=sorted(ALGORITHMS))
    faults_p.add_argument("--n", type=int, default=64, help="clique size")
    faults_p.add_argument("--seeds", type=int, nargs="+", default=[0])
    faults_p.add_argument(
        "--engine", choices=["sync", "async"], default=None,
        help="engine for monarchical/reelect (default: sync)",
    )
    faults_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="algorithm parameter (repeatable), e.g. --param inner=afek_gafni",
    )
    faults_p.add_argument(
        "--crash", action="append", default=[], type=_parse_crash,
        metavar="NODE@WHEN", help="crash node NODE at round/time WHEN (repeatable)",
    )
    faults_p.add_argument(
        "--kill-leader", action="store_true",
        help="adversarial churn: crash whoever announces leadership first",
    )
    faults_p.add_argument("--kill-delay", type=float, default=1.0)
    faults_p.add_argument("--max-kills", type=int, default=1)
    faults_p.add_argument("--drop", type=float, default=0.0, help="per-message drop probability")
    faults_p.add_argument(
        "--duplicate", type=float, default=0.0, help="per-message duplication probability"
    )
    faults_p.add_argument(
        "--drop-kinds", nargs="+", default=None, metavar="KIND",
        help="restrict drop/duplicate to these payload kinds "
        "(e.g. ree_coord to stress the commit path only)",
    )
    faults_p.add_argument(
        "--max-drops", type=int, default=None,
        help="bound the total drops (deterministic drop schedules with --drop 1.0)",
    )
    faults_p.add_argument(
        "--detector", choices=["perfect", "eventually_perfect"], default="perfect"
    )
    faults_p.add_argument("--lag", type=float, default=1.0, help="detector detection lag")
    faults_p.add_argument("--noise-horizon", type=float, default=0.0)
    faults_p.add_argument("--false-prob", type=float, default=0.0)
    faults_p.add_argument(
        "--roots", type=int, default=None,
        help="number of initially awake nodes (default: all)",
    )
    faults_p.set_defaults(func=cmd_faults)

    report_p = sub.add_parser(
        "report",
        help="regenerate the paper's Table 1, or (--html) write a static "
        "campaign report",
    )
    report_p.add_argument("--n", type=int, default=512)
    report_p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    report_p.add_argument(
        "--html", default=None, metavar="OUT.html",
        help="write a self-contained HTML campaign report (ledger history, "
        "tradeoff-vs-envelope scatter, bench baselines, critical paths) "
        "instead of Table 1",
    )
    report_p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger feeding the HTML report (default: .repro/ledger.jsonl)",
    )
    report_p.add_argument(
        "--bench-dir", action="append", default=None, metavar="DIR",
        help="directory of BENCH_*.json artifacts (repeatable; default: "
        "benchmarks/baselines)",
    )
    report_p.add_argument(
        "--traces", nargs="+", default=None, metavar="PATH",
        help="JSONL traces to rank by critical path in the HTML report",
    )
    report_p.add_argument(
        "--top-k", type=int, default=5,
        help="critical paths to include (default 5)",
    )
    report_p.set_defaults(func=cmd_report)

    from repro.scenarios import NAMED_SCENARIOS

    scen_p = sub.add_parser(
        "scenarios", help="declarative churn timelines (partitions, restarts, joins)"
    )
    scen_sub = scen_p.add_subparsers(dest="scenario_command", required=True)
    scen_sub.add_parser("list", help="list the named scenarios").set_defaults(
        func=cmd_scenarios_list
    )

    def _scenario_run_args(p) -> None:
        p.add_argument(
            "name", type=_scenario_source,
            help=f"named scenario ({', '.join(sorted(NAMED_SCENARIOS))}) "
            "or a path to a JSON timeline file",
        )
        p.add_argument(
            "--engine", choices=["sync", "async", "fast"], default="sync",
            help="engine for every election act (fast: crash/join/elect subset)",
        )
        p.add_argument(
            "--inner", default=None,
            help="inner election algorithm (default: afek_gafni sync, "
            "async_tradeoff async, improved_tradeoff fast)",
        )
        p.add_argument("--lag", type=float, default=1.0, help="detector detection lag")
        p.add_argument(
            "--quorum", action="store_true",
            help="majority-quorum commit gating: minority components never "
            "elect (quorum_reelect wrappers for every act)",
        )

    run_scen_p = scen_sub.add_parser(
        "run", help="run one scenario and print per-epoch convergence metrics"
    )
    _scenario_run_args(run_scen_p)
    run_scen_p.add_argument("--n", type=int, default=64, help="initial clique size")
    run_scen_p.add_argument("--seed", type=int, default=0)
    run_scen_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full JSON report ('-' prints to stdout)",
    )
    run_scen_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record every act's per-message events to a JSONL trace, "
        "annotated with act/epoch coordinates (sync/async engines only)",
    )
    run_scen_p.set_defaults(func=cmd_scenarios_run)

    sweep_scen_p = scen_sub.add_parser(
        "sweep", help="sweep one scenario over clique sizes and seeds"
    )
    _scenario_run_args(sweep_scen_p)
    sweep_scen_p.add_argument("--ns", type=int, nargs="+", default=[32, 64])
    sweep_scen_p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    sweep_scen_p.add_argument(
        "--batch", action="store_true",
        help="batch the seed replicas per (scenario, n) point: concurrent "
        "election acts with the same membership run as one multi-lane "
        "fast-engine execution (needs --engine fast; same results)",
    )
    sweep_scen_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the (n, seed) cells over N worker processes "
        "(bit-identical to the sequential sweep; excludes --batch)",
    )
    sweep_scen_p.add_argument(
        "--progress", action="store_true",
        help="render a live progress line (cells done, ETA from the "
        "completed-cost fraction) while the sweep runs",
    )
    sweep_scen_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the sweep metrics as JSON ('-' prints to stdout)",
    )
    sweep_scen_p.set_defaults(func=cmd_scenarios_sweep)

    adv_p = sub.add_parser(
        "adversary",
        help="Byzantine runs: message tampering, detector slander, quorum safety",
    )
    adv_sub = adv_p.add_subparsers(dest="adversary_command", required=True)

    def _adversary_common(p) -> None:
        p.add_argument(
            "--engine", choices=["sync", "async"], default="sync",
            help="object engine for the quorum_reelect wrapper",
        )
        p.add_argument(
            "--inner", default=None,
            help="inner election algorithm (default: afek_gafni sync, "
            "async_tradeoff async)",
        )
        p.add_argument("--lag", type=float, default=1.0, help="detector detection lag")
        p.add_argument(
            "--threshold", type=float, default=0.5,
            help="quorum fraction over the full membership (default: majority)",
        )
        p.add_argument(
            "--no-quorum", action="store_true",
            help="run the plain reelect wrapper instead (shows the split-brain "
            "and stall failure modes the quorum layer closes)",
        )

    run_adv_p = adv_sub.add_parser(
        "run", help="one election under a Byzantine adversary plan"
    )
    _adversary_common(run_adv_p)
    run_adv_p.add_argument("--n", type=int, default=9, help="clique size")
    run_adv_p.add_argument("--seeds", type=int, nargs="+", default=[0])
    run_adv_p.add_argument(
        "--byzantine", type=int, nargs="+", default=[], metavar="NODE",
        help="adversarial node indices (senders subject to tamper rules)",
    )
    run_adv_p.add_argument(
        "--slander", action="append", default=[], type=_parse_slander,
        metavar="A:V@S[-E]",
        help="slander window: accuser A falsely suspects victim V during "
        "[S, E) (repeatable), e.g. 0:8@5-60",
    )
    run_adv_p.add_argument(
        "--tamper", action="append", default=[], type=_parse_tamper,
        metavar="MODE[:KINDS]",
        help="tamper rule for the byzantine senders: corrupt, forge, replay "
        "or equivocate, optionally limited to payload kinds, e.g. forge:compete",
    )
    run_adv_p.add_argument(
        "--crash", action="append", default=[], type=_parse_crash,
        metavar="NODE@WHEN", help="crash node NODE at round/time WHEN (repeatable)",
    )
    run_adv_p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record the run (incl. tamper events) to a JSONL trace "
        "(single seed)",
    )
    run_adv_p.set_defaults(func=cmd_adversary_run)

    sweep_adv_p = adv_sub.add_parser(
        "sweep", help="honest vs Byzantine overhead curve (EXPERIMENTS.md S3)"
    )
    _adversary_common(sweep_adv_p)
    sweep_adv_p.add_argument("--ns", type=int, nargs="+", default=[8, 16, 32])
    sweep_adv_p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    sweep_adv_p.add_argument(
        "--mode", choices=["slander", "forge", "both"], default="both",
        help="which Byzantine behaviors the hostile runs carry",
    )
    sweep_adv_p.add_argument(
        "--f", type=int, default=0,
        help="slander victims per run (0 = n/4, capped below n/2)",
    )
    sweep_adv_p.add_argument(
        "--crash-one", action="store_true",
        help="additionally crash one node early in both arms of the sweep",
    )
    sweep_adv_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the overhead metrics as JSON ('-' prints to stdout)",
    )
    sweep_adv_p.set_defaults(func=cmd_adversary_sweep)

    trace_p = sub.add_parser(
        "trace", help="record, inspect, summarize and diff JSONL run traces"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    rec_p = trace_sub.add_parser(
        "record", help="run one algorithm and write its trace (= run --trace)"
    )
    rec_p.add_argument("name", choices=sorted(ALGORITHMS))
    rec_p.add_argument("--n", type=int, default=64, help="clique size")
    rec_p.add_argument("--seed", type=int, default=0)
    rec_p.add_argument(
        "--engine", choices=["auto", "sync", "async", "fast"], default="auto",
        help="engine override (fast traces carry per-round aggregate counters)",
    )
    rec_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="algorithm parameter (repeatable), e.g. --param ell=5",
    )
    rec_p.add_argument(
        "--roots", type=int, default=None,
        help="number of initially awake nodes (default: all)",
    )
    rec_p.add_argument(
        "--partition", type=_parse_partition, default=None,
        metavar="CUT@START-END",
        help="record under a partition window: split {0..CUT-1} from "
        "{CUT..n-1} for rounds [START, END), healing at END",
    )
    rec_p.add_argument(
        "-o", "--out", required=True, metavar="PATH", help="trace output path"
    )
    rec_p.set_defaults(func=cmd_trace_record)

    ins_p = trace_sub.add_parser(
        "inspect", help="pretty-print the events of one trace"
    )
    ins_p.add_argument("path", help="trace file written by --trace / trace record")
    ins_p.add_argument(
        "--kind", action="append", default=None, metavar="KIND",
        help="only these event kinds (repeatable), e.g. --kind decide",
    )
    ins_p.add_argument("--node", type=int, default=None, help="only this node")
    ins_p.add_argument(
        "--limit", type=int, default=40, help="max events to print (0 = all)"
    )
    ins_p.add_argument(
        "--timeline", action="store_true",
        help="append an ASCII per-node timeline (rows=nodes, columns=rounds)",
    )
    ins_p.add_argument(
        "--lane", type=int, default=None,
        help="batched fast traces: only this batch lane (see 'run --batch')",
    )
    ins_p.set_defaults(func=cmd_trace_inspect)

    stats_p = trace_sub.add_parser("stats", help="summary statistics of one trace")
    stats_p.add_argument("path", help="trace file")
    stats_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the stats as JSON ('-' prints to stdout)",
    )
    stats_p.set_defaults(func=cmd_trace_stats)

    diff_p = trace_sub.add_parser(
        "diff", help="localize the first round where two traces part ways"
    )
    diff_p.add_argument("a", help="baseline trace")
    diff_p.add_argument("b", help="candidate trace")
    diff_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the diff as JSON ('-' prints to stdout)",
    )
    diff_p.set_defaults(func=cmd_trace_diff)

    causal_p = trace_sub.add_parser(
        "causal",
        help="happens-before analysis: Lamport clocks and the critical "
        "path to the decide event",
    )
    causal_p.add_argument("path", help="trace file")
    causal_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the analysis as JSON ('-' prints to stdout)",
    )
    causal_p.set_defaults(func=cmd_trace_causal)

    mon_p = sub.add_parser(
        "monitor",
        help="online invariant monitors and theory-bound conformance",
    )
    mon_sub = mon_p.add_subparsers(dest="monitor_command", required=True)
    check_p = mon_sub.add_parser(
        "check",
        help="monitored fault-free sweep: invariants + envelope conformance",
    )
    check_p.add_argument(
        "--algorithms", nargs="+", default=list(_MONITOR_DEFAULT_ALGORITHMS),
        choices=sorted(ALGORITHMS), metavar="NAME",
        help="algorithms to check (default: every sync algorithm with a "
        "registered theory envelope)",
    )
    check_p.add_argument("--ns", type=int, nargs="+", default=[32, 64])
    check_p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    check_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="algorithm parameter applied to every checked algorithm "
        "(repeatable)",
    )
    check_p.add_argument(
        "--slack", type=float, default=None,
        help="override every envelope's slack constant (default: the "
        "per-envelope calibrated constants)",
    )
    check_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the sweep over N worker processes",
    )
    check_p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append the sweep to this run ledger (see 'repro history')",
    )
    check_p.add_argument(
        "--label", default=None, help="free-form label for the ledger entry"
    )
    check_p.add_argument(
        "--progress", action="store_true",
        help="render a live progress line while the sweep runs",
    )
    check_p.add_argument(
        "--records", default=None, metavar="PATH",
        help="also write the raw records as JSONL",
    )
    check_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the monitor report as JSON ('-' prints to stdout)",
    )
    check_p.set_defaults(func=cmd_monitor_check)

    top_p = sub.add_parser(
        "top",
        help="live per-worker dashboard over a monitored sweep with "
        "telemetry spooling",
    )
    top_p.add_argument(
        "--algorithms", nargs="+", default=list(_MONITOR_DEFAULT_ALGORITHMS),
        choices=sorted(ALGORITHMS), metavar="NAME",
        help="algorithms to sweep (default: every sync algorithm with a "
        "registered theory envelope)",
    )
    top_p.add_argument("--ns", type=int, nargs="+", default=[32, 64])
    top_p.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    top_p.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="algorithm parameter applied to every algorithm (repeatable)",
    )
    top_p.add_argument(
        "--slack", type=float, default=None,
        help="override every envelope's slack constant",
    )
    top_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the sweep over N worker processes (one dashboard row "
        "per worker slot)",
    )
    top_p.add_argument(
        "--spool", default=None, metavar="DIR",
        help="telemetry spool directory (default: a fresh "
        ".repro/obs/<sweep-id>/)",
    )
    top_p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append the sweep to this run ledger (see 'repro history')",
    )
    top_p.add_argument(
        "--label", default=None, help="free-form label for the ledger entry"
    )
    top_p.set_defaults(func=cmd_top)

    hist_p = sub.add_parser(
        "history",
        help="list or prune the persistent run ledger (.repro/ledger.jsonl)",
    )
    hist_p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger file (default: .repro/ledger.jsonl)",
    )
    hist_p.add_argument(
        "--limit", type=int, default=10, help="entries to show (0 = all)"
    )
    hist_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the shown entries as JSON ('-' prints to stdout)",
    )
    hist_p.set_defaults(func=cmd_history)
    hist_sub = hist_p.add_subparsers(dest="history_command", required=False)
    prune_p = hist_sub.add_parser(
        "prune", help="keep only the newest N entries of the ledger"
    )
    prune_p.add_argument(
        "--keep", type=int, required=True, metavar="N",
        help="entries to keep (0 empties the ledger)",
    )
    prune_p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger file (default: .repro/ledger.jsonl)",
    )
    prune_p.set_defaults(func=cmd_history_prune)

    cmp_p = sub.add_parser(
        "compare",
        help="diff message/round distributions between two ledger entries",
    )
    cmp_p.add_argument(
        "ref", help="base entry: ledger index (0 oldest, -2 previous) or "
        "git-SHA/spec-hash prefix",
    )
    cmp_p.add_argument(
        "--to", default="-1", metavar="REF",
        help="entry to compare against the base (default: latest)",
    )
    cmp_p.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger file (default: .repro/ledger.jsonl)",
    )
    cmp_p.add_argument(
        "--slack", type=float, default=0.10,
        help="relative mean-message growth tolerated before the exit "
        "status flags a regression (default 10%%)",
    )
    cmp_p.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the comparison as JSON ('-' prints to stdout)",
    )
    cmp_p.set_defaults(func=cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BackendUnavailable as exc:
        # Backend selection (REPRO_ARRAY_BACKEND / --backend) names an
        # uninstalled array library; the message carries the install hint.
        raise SystemExit(f"error: {exc}") from None


if __name__ == "__main__":
    sys.exit(main())
