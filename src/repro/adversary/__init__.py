"""Byzantine adversary layer: message tampering, slander, quorum safety.

The crash/omission fault subsystem (:mod:`repro.faults`) assumes every
delivered message is honest.  This package drops that assumption:

* :class:`AdversaryPlan` declares a set of Byzantine nodes with
  :class:`TamperRule` message-tampering behaviors (corrupt, forge,
  replay, equivocate) and :class:`SlanderWindow` detector slander
  (falsely accusing alive peers of death).  It rides on
  :class:`~repro.faults.FaultPlan.adversary` and is applied inside
  :meth:`~repro.faults.runtime.FaultRuntime.delivered_payloads` on both
  object engines — every existing fault plan, scenario and benchmark can
  be re-run under hostile conditions by attaching one.
* :class:`QuorumPolicy` and :class:`VoteLedger` provide majority-quorum
  commit gating with the vote-once rule — the arithmetic that makes two
  same-epoch leaders impossible (hypothesis-tested in
  ``tests/test_quorum_property.py``).
* :class:`QuorumReElectionElection` / :class:`AsyncQuorumReElectionElection`
  (registered as ``quorum_reelect``) close the plain re-election
  wrapper's split-brain holes: minority components abstain, commits are
  ack-gated on a quorum, and slandered stragglers rejoin via
  authenticated coord catch-up.  Specified for ``f < n/2`` combined
  crash + slander adversaries.

Everything remains deterministic per ``(seed, FaultPlan)``; see
``DESIGN.md`` ("Adversary subsystem") and ``docs/MODEL.md``.
"""

from repro.adversary.plan import (
    TAMPER_MODES,
    AdversaryPlan,
    SlanderWindow,
    TamperRule,
)
from repro.adversary.quorum import (
    QACK,
    AsyncQuorumReElectionElection,
    QuorumPolicy,
    QuorumReElectionElection,
    VoteLedger,
)
from repro.adversary.runtime import AdversaryRuntime, payload_kinds

__all__ = [
    "TAMPER_MODES",
    "TamperRule",
    "SlanderWindow",
    "AdversaryPlan",
    "AdversaryRuntime",
    "payload_kinds",
    "QACK",
    "QuorumPolicy",
    "VoteLedger",
    "QuorumReElectionElection",
    "AsyncQuorumReElectionElection",
]
