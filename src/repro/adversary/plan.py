"""Declarative Byzantine adversary schedules.

An :class:`AdversaryPlan` extends a :class:`~repro.faults.plan.FaultPlan`
from the crash/omission world into the Byzantine one: a fixed set of
*adversarial* node indices may tamper with the messages they send
(:class:`TamperRule` — corrupt payload fields, forge sender IDs, replay
stale traffic, equivocate to different receivers) and may *slander*
honest peers through the failure-detector rumor mill
(:class:`SlanderWindow` — an alive victim is falsely suspected for a
time window).  Like everything else in the fault layer the plan is pure
data: all stochastic tampering decisions are drawn inside
:class:`~repro.adversary.runtime.AdversaryRuntime` from the run seed, so
``(seed, FaultPlan)`` still pins the whole execution.

Authenticated links
-------------------

Following the standard authenticated-link construction (and the quorum
patterns of the reliable-secure-distributed-programming literature), the
adversary tampers with *protocol payloads*, not with the fault-tolerant
wrappers' control envelopes: when a payload is a wrapper-tagged tuple
whose last element is itself a tagged tuple (``("ree", epoch, attempt,
inner)``), corruption applies to the innermost tuple and the envelope
tags survive intact.  Replay re-delivers whole stale link payloads —
stale envelope tags included — which the epoch-tag filters of the
wrappers are expected to (and do) reject.  See ``docs/MODEL.md``
("Byzantine adversary semantics") for the model discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["TAMPER_MODES", "TamperRule", "SlanderWindow", "AdversaryPlan"]

#: The four message-tampering models, in increasing order of cunning.
TAMPER_MODES = ("corrupt", "forge", "replay", "equivocate")


@dataclass(frozen=True)
class TamperRule:
    """One message-tampering behavior of the Byzantine nodes.

    A rule applies to a send iff the sender is in the plan's
    ``byzantine`` set (or equals the rule's ``src`` pin), the receiver
    matches ``dst`` (``None`` = any), and the message kind matches
    ``kinds`` — where *kind* is the payload's own tag **or** the tag of
    its innermost tuple, so ``("ree", epoch, attempt, ("compete", id))``
    matches a rule for ``"compete"`` (wrapped traffic stays targetable).

    Modes
    -----

    ``corrupt``
        Integer fields of the (innermost) payload are shifted by
        ``magnitude`` — the classic corrupted-payload fault.
    ``forge``
        Integer fields equal to the sender's real ID are replaced with
        ``forge_id`` (default: one more than the largest ID in the run —
        an ID that beats every honest competitor).  This is the forged
        frontrunner: the Byzantine node impersonates a node that should
        win.
    ``replay``
        The previous payload carried by the same directed link is
        delivered *again* after the current one (envelope tags and all);
        the first message on a link has nothing to replay.
    ``equivocate``
        Integer fields are shifted by ``magnitude * (dst + 1)`` — every
        receiver of the "same" broadcast sees a different value, the
        defining Byzantine behavior quorum protocols exist to survive.

    ``prob`` draws per matching message from the run-seeded adversary
    RNG; ``max_tampers`` bounds the rule's total alterations.
    """

    mode: str
    prob: float = 1.0
    src: Optional[int] = None
    dst: Optional[int] = None
    kinds: Optional[Tuple[str, ...]] = None
    magnitude: int = 1
    forge_id: Optional[int] = None
    max_tampers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in TAMPER_MODES:
            raise ValueError(
                f"unknown tamper mode {self.mode!r}; known modes: {TAMPER_MODES}"
            )
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(f"tamper prob must be in (0, 1], got {self.prob!r}")
        if self.magnitude == 0 and self.mode in ("corrupt", "equivocate"):
            raise ValueError("corrupt/equivocate need a nonzero magnitude")
        if self.forge_id is not None and self.mode != "forge":
            raise ValueError("forge_id only applies to mode='forge'")
        if self.max_tampers is not None and self.max_tampers < 1:
            raise ValueError("max_tampers must be >= 1 when set")

    def matches(self, src: int, dst: int, kinds: Tuple[str, ...]) -> bool:
        """Whether this rule claims a ``src -> dst`` send of these kinds.

        ``kinds`` carries the payload's envelope tag and its innermost
        tag (often the same string).
        """
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.kinds is not None and not set(self.kinds) & set(kinds):
            return False
        return True


@dataclass(frozen=True)
class SlanderWindow:
    """Detector slander: ``accuser`` falsely accuses ``victims`` of death.

    During ``[start + lag, end + lag)`` (the detector's usual visibility
    shift; ``end=None`` = the rest of the run) every node *except the
    victims themselves* additionally suspects the victims — the rumor is
    believed network-wide, exactly like a partition separation, and a
    timeout detector cannot refute it because suspicion is unilateral.
    Victims keep trusting themselves, which is precisely the split-brain
    seed the quorum layer exists to neutralize.

    A slander dies with its accuser: if the accuser crashed at or before
    ``start`` the window never opens (nobody spreads the rumor).
    """

    accuser: int
    victims: Tuple[int, ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.accuser < 0:
            raise ValueError("slander accuser must be a node index >= 0")
        if not self.victims:
            raise ValueError("a slander window needs at least one victim")
        if len(set(self.victims)) != len(self.victims):
            raise ValueError("slander victims must be distinct")
        for victim in self.victims:
            if victim < 0:
                raise ValueError("slander victims must be node indices >= 0")
            if victim == self.accuser:
                raise ValueError("a node cannot slander itself")
        if self.start < 0:
            raise ValueError("slander start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("slander end must be after its start")

    def active(self, now: float, lag: float) -> bool:
        """Whether the rumor is currently believed (lag-shifted window)."""
        if now < self.start + lag:
            return False
        return self.end is None or now < self.end + lag


@dataclass(frozen=True)
class AdversaryPlan:
    """The Byzantine side of a fault schedule.

    ``byzantine`` lists the adversarial node indices; tamper rules
    without a ``src`` pin apply to every Byzantine sender (a rule *with*
    a pin implicitly marks that node adversarial too).  Slander windows
    name their accuser explicitly.  A plan with neither tampering nor
    slander is rejected — use a plain :class:`~repro.faults.FaultPlan`
    for crash-only schedules.
    """

    byzantine: Tuple[int, ...] = ()
    tampers: Tuple[TamperRule, ...] = ()
    slanders: Tuple[SlanderWindow, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.byzantine)) != len(self.byzantine):
            raise ValueError("byzantine node indices must be distinct")
        for u in self.byzantine:
            if u < 0:
                raise ValueError("byzantine members must be node indices >= 0")
        if not self.tampers and not self.slanders:
            raise ValueError(
                "an AdversaryPlan must tamper or slander; use a plain FaultPlan "
                "for crash/omission-only schedules"
            )
        for rule in self.tampers:
            if rule.src is not None:
                continue
            if not self.byzantine:
                raise ValueError(
                    "tamper rules without a src pin need a nonempty byzantine set"
                )

    @property
    def adversarial_nodes(self) -> frozenset:
        """Every node the plan makes adversarial (byzantine + accusers + pins)."""
        nodes = set(self.byzantine)
        nodes.update(rule.src for rule in self.tampers if rule.src is not None)
        nodes.update(window.accuser for window in self.slanders)
        return frozenset(nodes)

    def is_adversarial_sender(self, u: int) -> bool:
        """Whether ``u``'s sends are subject to tampering."""
        return u in self.byzantine or any(rule.src == u for rule in self.tampers)

    def validate_for(self, n: int) -> None:
        """Check node indices against a concrete clique size."""
        for u in sorted(self.adversarial_nodes):
            if u >= n:
                raise ValueError(f"adversarial node {u} out of range for n={n}")
        for rule in self.tampers:
            if rule.dst is not None and rule.dst >= n:
                raise ValueError(f"tamper rule dst {rule.dst} out of range for n={n}")
        for window in self.slanders:
            for victim in window.victims:
                if victim >= n:
                    raise ValueError(
                        f"slander victim {victim} out of range for n={n}"
                    )
        if len(self.adversarial_nodes) >= max(1, (n + 1) // 2):
            raise ValueError(
                "the adversary corrupts f >= n/2 nodes; the quorum layer is "
                "specified for f < n/2 (Kutten et al.'s sublinear bounds break "
                "at half the clique, and so does majority quorum)"
            )
