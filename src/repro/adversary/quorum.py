"""Majority-quorum commit gating and the Byzantine-tolerant election.

Three layers, from pure math to protocol:

* :class:`QuorumPolicy` — the arithmetic: over a fixed full membership
  of ``n`` nodes, a quorum is any vote set strictly larger than
  ``threshold`` of it (majority by default: ``floor(n/2) + 1`` votes).
  Two quorums always intersect, which is the entire safety argument.
* :class:`VoteLedger` — the bookkeeping: per-epoch vote grants with the
  *vote-once* rule enforced (a voter's first grant in an epoch is the
  only one that counts; later grants — equivocated acks, replayed acks,
  retransmit duplicates — collapse onto it).  Given vote-once and
  quorum intersection, **no two candidates can both reach quorum in the
  same epoch, under any partition or slander schedule** — the property
  ``tests/test_quorum_property.py`` drives with hypothesis.
* :class:`QuorumReElectionElection` / :class:`AsyncQuorumReElectionElection`
  — the protocol: the epoch re-election wrapper of
  :mod:`repro.faults.reelect` with three Byzantine-closing changes.

  1. **Abstention.**  A node whose survivor sub-clique is smaller than
     the quorum never runs the inner election: it decides NON_LEADER
     (naming nobody) and halts.  A partitioned minority component
     therefore elects *nothing* — the split-brain hole of the plain
     wrapper (one leader per component) closes to "majority side
     elects, minority side waits for the heal".
  2. **Ack-gated commit with live quorums.**  The frontrunner's coord
     broadcast goes to *every* port (suspected peers included —
     suspicion may be slander) and followers answer with a ``qr_ack``
     vote.  The leader commits only while it holds a *fresh* quorum:
     acks expire every commit round (sync) / commit window (async), and
     a follower only acks coords of its **current** epoch — so a voter
     that moves to a higher epoch automatically revokes its support,
     the Paxos promise enforced temporally.  A leader whose epoch is
     overtaken mid-commit therefore stalls for want of live votes and
     is swept up by the new reign's coord instead of committing a stale
     one.  Within an epoch, votes bind once (the ledger's vote-once
     rule), so two same-epoch leaders are arithmetically impossible;
     across epochs, expiry makes the newer quorum invalidate the older.
  3. **Coord catch-up.**  A slandered node's own detector shows nothing
     wrong, so it would otherwise ignore the new epoch and keep (or
     contest) leadership — the split-brain seed.  Coords carry their
     epoch in the authenticated envelope; a node receiving a coord from
     a *higher* epoch adopts that epoch and its leader as a follower.
     Combined with the all-port broadcast, the slander victim rejoins
     the majority's reign instead of fighting it.

  The guarantees are stated for ``f < n/2`` combined crash + slander
  adversaries under a perfect detector and authenticated envelopes (see
  ``docs/MODEL.md``).  The price is liveness at the margin: with half
  or more of the membership unreachable — crashed *or* merely slandered
  past the quorum line — nobody elects, by design (CP, not AP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.faults.reelect import AsyncReElectionElection, ReElectionElection

__all__ = [
    "QACK",
    "QuorumPolicy",
    "VoteLedger",
    "QuorumReElectionElection",
    "AsyncQuorumReElectionElection",
]

#: Wrapper-level vote message: ``(QACK, epoch, voter_id)``.
QACK = "qr_ack"


@dataclass(frozen=True)
class QuorumPolicy:
    """Quorum arithmetic over a fixed full membership of ``n`` nodes.

    ``quorum_size`` is the smallest vote count strictly exceeding
    ``threshold * n`` — for the default majority threshold,
    ``floor(n/2) + 1``.  Any two vote sets of that size over the same
    membership intersect, which is what makes a committed quorum proof
    against every rival: the intersection voter already spent its vote.
    """

    n: int
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("a quorum needs a membership of n >= 1")
        if not 0.5 <= self.threshold < 1.0:
            raise ValueError(
                "threshold must be in [0.5, 1); below a majority two quorums "
                "need not intersect and the safety argument collapses"
            )

    @property
    def quorum_size(self) -> int:
        return math.floor(self.n * self.threshold) + 1

    def satisfied(self, votes: int) -> bool:
        """Whether ``votes`` distinct voters form a quorum."""
        return votes >= self.quorum_size


class VoteLedger:
    """Per-epoch vote bookkeeping with the vote-once rule enforced.

    ``grant(epoch, voter, candidate)`` records a vote; a voter's first
    grant in an epoch is binding and every later grant (duplicate ack,
    equivocated ack, replayed ack) collapses onto it.  ``decides``
    answers whether a candidate currently holds a quorum, and
    ``commit`` marks the epoch's winner — at most one, which
    :meth:`commits_in` lets the property test assert directly.
    """

    def __init__(self, policy: QuorumPolicy) -> None:
        self.policy = policy
        self._grants: Dict[int, Dict[int, Any]] = {}
        self._commits: Dict[int, Set[Any]] = {}

    def grant(self, epoch: int, voter: int, candidate: Any) -> bool:
        """Record a vote; returns whether it is bound to ``candidate``."""
        votes = self._grants.setdefault(epoch, {})
        if voter not in votes:
            votes[voter] = candidate
        return votes[voter] == candidate

    def tally(self, epoch: int, candidate: Any) -> int:
        """Distinct voters bound to ``candidate`` in ``epoch``."""
        votes = self._grants.get(epoch, {})
        return sum(1 for c in votes.values() if c == candidate)

    def decides(self, epoch: int, candidate: Any) -> bool:
        """Whether ``candidate`` currently holds a quorum in ``epoch``."""
        return self.policy.satisfied(self.tally(epoch, candidate))

    def commit(self, epoch: int, candidate: Any) -> bool:
        """Commit ``candidate`` if it holds a quorum; record the outcome."""
        if not self.decides(epoch, candidate):
            return False
        self._commits.setdefault(epoch, set()).add(candidate)
        return True

    def commits_in(self, epoch: int) -> Set[Any]:
        """Every candidate ever committed in ``epoch`` (safety: <= 1)."""
        return set(self._commits.get(epoch, set()))


class _QuorumCommitMixin:
    """The quorum machinery both engine wrappers share.

    Mixed in *before* the engine-specific re-election base class, so the
    hook overrides here win the MRO and ``super()._restart`` still
    reaches the base wrapper.  Engine-specific behavior (how a commit is
    armed, how epochs are polled) stays in the subclasses'
    ``_handle_coord``.
    """

    def _init_quorum(self, threshold: float) -> None:
        if not 0.5 <= threshold < 1.0:
            # Same rule QuorumPolicy enforces, surfaced at construction
            # time so front-ends report a usage error, not a mid-run one.
            raise ValueError(
                "threshold must be in [0.5, 1); below a majority two quorums "
                "need not intersect and the safety argument collapses"
            )
        self.threshold = threshold
        self.ledger: Optional[VoteLedger] = None
        self._fresh_acks: set = set()

    def _ledger_for(self, ctx) -> VoteLedger:
        if self.ledger is None:
            self.ledger = VoteLedger(QuorumPolicy(n=ctx.n, threshold=self.threshold))
        return self.ledger

    def _coord_ports(self):
        # Every port, not just the survivor sub-clique: a suspected peer
        # may be a slander victim that must learn the new reign.
        return range(self.proxy._ctx.n - 1)

    def _restart(self, ctx, suspects) -> None:
        self._fresh_acks = set()
        super()._restart(ctx, suspects)

    def _adopt_reign(self, ctx, epoch: int) -> None:
        """Coord catch-up bookkeeping shared by both engines: abandon my
        own stale candidacy and move to the coord's (higher) epoch."""
        self.epoch = epoch
        self.attempt = 0
        self.inner = None
        self.inner_halted = True
        self._fresh_acks = set()

    def _admit_epoch(self, ctx) -> bool:
        policy = self._ledger_for(ctx).policy
        return policy.satisfied(self.proxy.n)

    def _commit_ready(self, ctx) -> bool:
        if self.tentative != ctx.my_id:
            return True
        ledger = self._ledger_for(ctx)
        ledger.grant(self.epoch, ctx.node, ctx.my_id)  # my own vote
        # Live-quorum rule: only acks that arrived since the previous
        # check count, and they are spent here — every commit round
        # (sync) / commit window (async) must be re-affirmed by a fresh
        # majority; the retransmit path keeps the ack stream flowing in
        # the healthy case.  Voters that moved to a higher epoch stop
        # acking this one, so an overtaken leader freezes instead of
        # committing a stale reign, until the new reign's coord catches
        # it up.
        fresh = len(self._fresh_acks) + 1
        self._fresh_acks = set()
        if not ledger.policy.satisfied(fresh):
            return False
        ledger.commit(self.epoch, ctx.my_id)
        return True

    def _handle_extra(self, ctx, port: int, payload) -> None:
        if payload[0] != QACK:
            return
        _tag, epoch, _voter_id = payload
        if epoch == self.epoch and self.tentative == ctx.my_id:
            # Votes are ledgered by *port* (the authenticated link), so an
            # equivocating voter still spends exactly one vote.
            real_peer = self._voter_index(ctx, port)
            self._ledger_for(ctx).grant(epoch, real_peer, ctx.my_id)
            self._fresh_acks.add(real_peer)

    @staticmethod
    def _voter_index(ctx, port: int) -> int:
        """The peer node index behind ``port`` (oracle power, like live_ports)."""
        return ctx._net.port_map.peer(ctx.node, port)


class QuorumReElectionElection(_QuorumCommitMixin, ReElectionElection):
    """Synchronous quorum-safe re-election (see module docstring).

    Registered as ``quorum_reelect``.  Accepts everything the plain
    ``reelect`` wrapper does, plus ``threshold`` (quorum fraction over
    the full membership, default majority).
    """

    def __init__(
        self,
        inner="afek_gafni",
        commit_rounds: int = 4,
        restart_rounds: Optional[int] = None,
        threshold: float = 0.5,
        inner_params=None,
        **extra_inner_params: Any,
    ) -> None:
        super().__init__(
            inner=inner,
            commit_rounds=commit_rounds,
            restart_rounds=restart_rounds,
            inner_params=inner_params,
            **extra_inner_params,
        )
        self._init_quorum(threshold)

    def _handle_coord(self, ctx, port: int, payload) -> None:
        _tag, epoch, leader_id = payload
        if epoch > self.epoch:
            # Coord catch-up: my detector can't see the suspicion driving
            # the group's epoch (I may be its victim) — the authenticated
            # epoch tag is the proof.  Adopt the reign as a follower.
            self._adopt_reign(ctx, epoch)
            self.pending_coord_round = None
            self.tentative = leader_id
            self.commit_left = self.commit_rounds
            ctx.send(port, (QACK, epoch, ctx.my_id))
            return
        if epoch == self.epoch:
            if self.tentative is None:
                self.tentative = leader_id
                self.commit_left = self.commit_rounds
            if self.tentative == leader_id and leader_id != ctx.my_id:
                # Ack every copy: retransmits re-solicit votes lost to
                # drops — and only current-epoch coords are ever acked,
                # which is what makes older quorums go stale.
                ctx.send(port, (QACK, epoch, ctx.my_id))


class AsyncQuorumReElectionElection(_QuorumCommitMixin, AsyncReElectionElection):
    """Asynchronous quorum-safe re-election (twin of the sync wrapper)."""

    def __init__(
        self,
        inner="async_tradeoff",
        commit_delay: float = 4.0,
        poll_interval: float = 0.5,
        restart_delay: Optional[float] = None,
        threshold: float = 0.5,
        inner_params=None,
        **extra_inner_params: Any,
    ) -> None:
        super().__init__(
            inner=inner,
            commit_delay=commit_delay,
            poll_interval=poll_interval,
            restart_delay=restart_delay,
            inner_params=inner_params,
            **extra_inner_params,
        )
        self._init_quorum(threshold)

    def _handle_coord(self, ctx, port: int, payload) -> None:
        _tag, epoch, leader_id = payload
        if epoch > self.epoch:
            self._check_epoch(ctx)
            if self.done:
                return
        if epoch > self.epoch:
            # Coord catch-up (see the sync twin): adopt the authenticated
            # reign my own detector cannot yet justify.
            self._adopt_reign(ctx, epoch)
            self._arm_commit(ctx, leader_id)
            ctx.send(port, (QACK, epoch, ctx.my_id))
            return
        if epoch == self.epoch:
            if self.tentative is None:
                self._arm_commit(ctx, leader_id)
            if self.tentative == leader_id and leader_id != ctx.my_id:
                ctx.send(port, (QACK, epoch, ctx.my_id))
