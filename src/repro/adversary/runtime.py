"""Per-run Byzantine tampering state (the adversary's message hand).

The :class:`AdversaryRuntime` is to an :class:`~repro.adversary.plan.AdversaryPlan`
what :class:`~repro.faults.runtime.FaultRuntime` is to a fault plan: the
single mutable object that turns declarative tamper rules into concrete
per-message decisions.  It is owned by the ``FaultRuntime`` (created
lazily when the fault plan carries an adversary) and consulted from
:meth:`~repro.faults.runtime.FaultRuntime.delivered_payloads`, the hook
both engines route every send through.

All stochastic choices come from one ``random.Random`` seeded from the
run seed (``adversary:<seed>``), consumed in engine-call order, so the
Byzantine behavior is as replayable as every other fault.  Rules with
``prob=1.0`` consume no randomness at all — adding a deterministic
tamper rule never perturbs the stochastic stream of another.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.adversary.plan import AdversaryPlan, TamperRule

__all__ = ["AdversaryRuntime", "payload_kinds"]


def payload_kinds(payload: Any) -> Tuple[str, ...]:
    """The envelope tag and the innermost tag of a (possibly nested) payload.

    ``("compete", 7)`` yields ``("compete",)``; the re-election wrapper's
    ``("ree", epoch, attempt, ("compete", 7))`` yields
    ``("ree", "compete")`` so tamper rules can target wrapped protocol
    traffic by its real kind.
    """
    kinds: List[str] = []
    seen = 0
    while (
        isinstance(payload, tuple)
        and payload
        and isinstance(payload[0], str)
        and seen < 8  # defensive bound against pathological nesting
    ):
        kinds.append(payload[0])
        seen += 1
        if isinstance(payload[-1], tuple):
            payload = payload[-1]
        else:
            break
    if not kinds:
        if isinstance(payload, str):
            kinds.append(payload)
        else:
            kinds.append(type(payload).__name__)
    if len(kinds) > 2:
        kinds = [kinds[0], kinds[-1]]
    return tuple(kinds)


def _map_innermost(payload: Any, fn) -> Any:
    """Apply ``fn`` to the innermost tagged tuple of a nested payload.

    Envelope tuples (those whose last element is itself a tagged tuple)
    are rebuilt untouched — this is the authenticated-link contract: the
    adversary rewrites protocol payloads, not wrapper control tags.
    Identity is preserved end to end: when ``fn`` leaves the innermost
    payload alone, the *original* envelope object comes back, so callers
    can use ``is`` to tell "tampered" from "matched but unchanged".
    """
    if (
        isinstance(payload, tuple)
        and payload
        and isinstance(payload[-1], tuple)
        and payload[-1]
        and isinstance(payload[-1][0], str)
    ):
        inner = _map_innermost(payload[-1], fn)
        if inner is payload[-1]:
            return payload
        return payload[:-1] + (inner,)
    return fn(payload)


class AdversaryRuntime:
    """Ground-truth Byzantine message state for one run."""

    def __init__(
        self, plan: AdversaryPlan, n: int, ids: List[int], seed: int, metrics
    ) -> None:
        plan.validate_for(n)
        self.plan = plan
        self.n = n
        self.ids = list(ids)
        self.metrics = metrics
        self.rng = random.Random(f"adversary:{seed}")
        self._tampers_left: List[Optional[int]] = [
            rule.max_tampers for rule in plan.tampers
        ]
        # Last payload actually carried by each directed link (replay food).
        self._link_memory: Dict[Tuple[int, int], Any] = {}
        self._default_forge_id = (max(ids) + 1) if ids else 1

    # ------------------------------------------------------------------ #
    # the FaultRuntime-facing hook

    def deliver(self, src: int, dst: int, payload: Any, copies: int) -> List[Any]:
        """The payloads ``dst`` actually receives for this send.

        ``copies`` is the link-fault verdict (0 = dropped, 2 =
        duplicated); tampering applies per surviving copy, and a replay
        rule may append the link's previous payload.  Honest senders
        pass through untouched (and still feed the replay memory, so a
        Byzantine replay can regurgitate honest traffic).
        """
        if copies <= 0:
            return []
        out: List[Any] = []
        adversarial = self.plan.is_adversarial_sender(src)
        kinds = payload_kinds(payload) if adversarial else ()
        last = payload
        for _ in range(copies):
            delivered = payload
            if adversarial:
                delivered = self._apply_rules(src, dst, kinds, payload)
            if isinstance(delivered, _ReplayMarker):
                out.append(delivered.current)
                out.append(delivered.stale)
                last = delivered.current
            else:
                out.append(delivered)
                last = delivered
        self._link_memory[(src, dst)] = last
        return out

    # ------------------------------------------------------------------ #
    # rule machinery

    def _apply_rules(
        self, src: int, dst: int, kinds: Tuple[str, ...], payload: Any
    ) -> Any:
        """First matching rule decides this copy's fate (like LinkFaults)."""
        for i, rule in enumerate(self.plan.tampers):
            if not rule.matches(src, dst, kinds):
                continue
            left = self._tampers_left[i]
            if left is not None and left <= 0:
                continue
            if rule.prob < 1.0 and self.rng.random() >= rule.prob:
                return payload
            tampered = self._tamper(rule, src, dst, payload)
            if tampered is payload:
                return payload  # nothing to rewrite: not counted, no budget
            if left is not None:
                self._tampers_left[i] = left - 1
            self.metrics.note_tamper(rule.mode)
            return tampered
        return payload

    def _tamper(self, rule: TamperRule, src: int, dst: int, payload: Any):
        if rule.mode == "replay":
            stale = self._link_memory.get((src, dst))
            if stale is None:
                return payload  # first message on the link: nothing to replay
            return _ReplayMarker(payload, stale)
        if rule.mode == "corrupt":
            return _map_innermost(
                payload, lambda p: _shift_ints(p, rule.magnitude)
            )
        if rule.mode == "equivocate":
            return _map_innermost(
                payload, lambda p: _shift_ints(p, rule.magnitude * (dst + 1))
            )
        # forge: impersonate forge_id wherever the sender named itself
        forge_id = rule.forge_id if rule.forge_id is not None else self._default_forge_id
        my_id = self.ids[src]
        return _map_innermost(payload, lambda p: _swap_ints(p, my_id, forge_id))


class _ReplayMarker:
    """Internal marker: deliver ``current``, then ``stale`` once more."""

    __slots__ = ("current", "stale")

    def __init__(self, current: Any, stale: Any) -> None:
        self.current = current
        self.stale = stale


def _shift_ints(payload: Any, delta: int) -> Any:
    """Shift every integer field of a tagged tuple (or bare int) by ``delta``."""
    if isinstance(payload, tuple):
        changed = False
        fields: List[Any] = []
        for i, value in enumerate(payload):
            if i > 0 and isinstance(value, int) and not isinstance(value, bool):
                fields.append(value + delta)
                changed = True
            else:
                fields.append(value)
        return tuple(fields) if changed else payload
    if isinstance(payload, int) and not isinstance(payload, bool):
        return payload + delta
    return payload


def _swap_ints(payload: Any, old: int, new: int) -> Any:
    """Replace integer fields equal to ``old`` with ``new``."""
    if isinstance(payload, tuple):
        changed = False
        fields = []
        for value in payload:
            if isinstance(value, int) and not isinstance(value, bool) and value == old:
                fields.append(new)
                changed = True
            else:
                fields.append(value)
        return tuple(fields) if changed else payload
    if payload == old and isinstance(payload, int) and not isinstance(payload, bool):
        return new
    return payload
