"""Experiment harness: runners, power-law fitting, tables, validation.

This package turns raw simulator runs into the paper-shaped artifacts the
benchmarks print: message-complexity exponents fitted over sweeps of
``n``, success rates over seeds, and aligned text tables with
paper-bound columns next to measured columns.
"""

from repro.analysis.fit import PowerLawFit, fit_power_law, fit_polylog
from repro.analysis.plot import bar_chart, scatter
from repro.analysis.runner import (
    RunRecord,
    run_async_trial,
    run_fast_batch,
    run_fast_trial,
    run_sync_trial,
    sweep_async,
    sweep_fast,
    sweep_sync,
)
from repro.analysis.stats import Summary, success_rate, summarize
from repro.sweep.api import execute_spec, run, sweep
from repro.sweep.spec import RunSpec, canonical_record
from repro.analysis.tables import Table, format_quantity
from repro.analysis.validate import (
    agreement_ok,
    assert_unique_leader,
    election_valid,
)

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_polylog",
    "RunRecord",
    "RunSpec",
    "run",
    "sweep",
    "execute_spec",
    "canonical_record",
    "run_sync_trial",
    "run_async_trial",
    "run_fast_trial",
    "run_fast_batch",
    "sweep_sync",
    "sweep_async",
    "sweep_fast",
    "Summary",
    "summarize",
    "success_rate",
    "Table",
    "format_quantity",
    "bar_chart",
    "scatter",
    "assert_unique_leader",
    "election_valid",
    "agreement_ok",
]
