"""Exporting sweep results for downstream analysis.

`RunRecord` sweeps serialize to JSON-lines or CSV so results can be
archived next to the benchmark tables and loaded into any plotting or
stats stack.  Loading round-trips exactly (the formats keep every
field, with params/extra flattened into prefixed columns for CSV).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, List, Sequence

from repro.analysis.runner import RunRecord

__all__ = [
    "records_to_jsonl",
    "records_from_jsonl",
    "records_to_csv",
    "records_from_csv",
    "dump_json",
]


def dump_json(path: str, payload: Any) -> None:
    """Write one JSON document to ``path`` (``-`` prints to stdout).

    The shared sink behind every CLI ``--json`` flag (``trace stats``,
    ``trace diff``, ``monitor check``, the sweeps): sorted keys, 2-space
    indent, trailing newline, and a ``wrote <path>`` confirmation on
    real files so scripted callers see where the artifact landed.
    """
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {path}")

_FIELDS = [
    "n",
    "seed",
    "messages",
    "time",
    "unique_leader",
    "elected_id",
    "leaders",
    "decided",
    "awake",
]


def records_to_jsonl(records: Iterable[RunRecord]) -> str:
    """One JSON object per line, fully faithful."""
    lines = []
    for r in records:
        payload = {field: getattr(r, field) for field in _FIELDS}
        payload["params"] = r.params
        payload["extra"] = r.extra
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def records_from_jsonl(text: str) -> List[RunRecord]:
    records = []
    for line in text.splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        records.append(
            RunRecord(
                n=payload["n"],
                seed=payload["seed"],
                messages=payload["messages"],
                time=payload["time"],
                unique_leader=payload["unique_leader"],
                elected_id=payload["elected_id"],
                leaders=payload["leaders"],
                decided=payload["decided"],
                awake=payload["awake"],
                params=payload.get("params", {}),
                extra=payload.get("extra", {}),
            )
        )
    return records


def records_to_csv(records: Sequence[RunRecord]) -> str:
    """Flat CSV; params/extra keys become ``param_*`` / ``extra_*`` columns."""
    param_keys = sorted({k for r in records for k in r.params})
    extra_keys = sorted({k for r in records for k in r.extra})
    header = (
        _FIELDS
        + [f"param_{k}" for k in param_keys]
        + [f"extra_{k}" for k in extra_keys]
    )
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(header)
    for r in records:
        row: List[Any] = [getattr(r, field) for field in _FIELDS]
        row += [r.params.get(k, "") for k in param_keys]
        row += [r.extra.get(k, "") for k in extra_keys]
        writer.writerow(row)
    return out.getvalue()


def _coerce(value: str) -> Any:
    if value == "":
        return None
    if value in ("True", "False"):
        return value == "True"
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def records_from_csv(text: str) -> List[RunRecord]:
    reader = csv.DictReader(io.StringIO(text))
    records = []
    for row in reader:
        params = {
            k[len("param_"):]: _coerce(v)
            for k, v in row.items()
            if k.startswith("param_") and v != ""
        }
        extra = {
            k[len("extra_"):]: _coerce(v)
            for k, v in row.items()
            if k.startswith("extra_") and v != ""
        }
        records.append(
            RunRecord(
                n=int(row["n"]),
                seed=int(row["seed"]),
                messages=int(row["messages"]),
                time=float(row["time"]),
                unique_leader=row["unique_leader"] == "True",
                elected_id=_coerce(row["elected_id"]),
                leaders=int(row["leaders"]),
                decided=int(row["decided"]),
                awake=int(row["awake"]),
                params=params,
                extra=extra,
            )
        )
    return records
