"""Power-law fitting for complexity curves.

The paper's statements are asymptotic (``messages = Θ(n^e)`` or
``Θ(n^e · polylog n)``); reproduction quality is judged by whether the
*fitted exponent* of a measured sweep matches the theory.  We fit by
least squares in log-log space — the standard estimator for power laws
over a geometric grid of sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["PowerLawFit", "fit_power_law", "fit_polylog", "local_exponents"]


@dataclass(frozen=True)
class PowerLawFit:
    """Fit of ``y ≈ coefficient · x^exponent`` (optionally ``·log2(x)^log_power``)."""

    exponent: float
    coefficient: float
    r_squared: float
    log_power: float = 0.0

    def predict(self, x: float) -> float:
        value = self.coefficient * x**self.exponent
        if self.log_power:
            value *= math.log2(x) ** self.log_power
        return value

    def __str__(self) -> str:
        log_part = f" * log2(n)^{self.log_power:g}" if self.log_power else ""
        return (
            f"{self.coefficient:.3g} * n^{self.exponent:.3f}{log_part} "
            f"(R^2={self.r_squared:.4f})"
        )


def _linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Ordinary least squares ``y = a + b·x``; returns ``(a, b, r2)``."""
    m = len(xs)
    if m < 2:
        raise ValueError("need at least two points to fit")
    mean_x = sum(xs) / m
    mean_y = sum(ys) / m
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are all equal; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    b = sxy / sxx
    a = mean_y - b * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (a + b * x)) ** 2 for x, y in zip(xs, ys))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return a, b, r2


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c · x^e`` by least squares on ``(log x, log y)``."""
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fitting needs positive data")
    log_a, exponent, r2 = _linear_fit(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )
    return PowerLawFit(exponent=exponent, coefficient=math.exp(log_a), r_squared=r2)


def fit_polylog(
    xs: Sequence[float], ys: Sequence[float], log_power: float
) -> PowerLawFit:
    """Fit ``y ≈ c · x^e · log2(x)^log_power`` with the log power fixed.

    Useful for bounds like ``√n·log^(3/2) n`` where fitting the log
    correction as a free parameter is ill-conditioned on small grids.
    """
    adjusted = [y / (math.log2(x) ** log_power) for x, y in zip(xs, ys)]
    base = fit_power_law(xs, adjusted)
    return PowerLawFit(
        exponent=base.exponent,
        coefficient=base.coefficient,
        r_squared=base.r_squared,
        log_power=log_power,
    )


def local_exponents(xs: Sequence[float], ys: Sequence[float]) -> List[float]:
    """Pairwise slopes ``log(y_{i+1}/y_i) / log(x_{i+1}/x_i)``.

    Exposes drift that a single global fit would average away (e.g. a
    ``polylog`` factor shows up as slowly decaying local exponents).
    """
    out = []
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        out.append(math.log(y1 / y0) / math.log(x1 / x0))
    return out
