"""ASCII plotting for complexity curves (no plotting dependencies).

Two renderers used by the examples and available to downstream users:

* :func:`bar_chart` — grouped horizontal bars on a log or linear scale;
* :func:`scatter` — a y-vs-x character grid with multiple series, for
  visualizing frontier curves and fitted power laws in a terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["bar_chart", "scatter"]

_MARKS = "ox+*#@%&"


def _log_positions(values: Sequence[float], width: int) -> List[int]:
    positive = [v for v in values if v > 0]
    if not positive:
        return [0 for _ in values]
    lo = math.log(min(positive))
    hi = math.log(max(positive))
    span = max(hi - lo, 1e-12)
    out = []
    for v in values:
        if v <= 0:
            out.append(0)
        else:
            out.append(int(round((math.log(v) - lo) / span * (width - 1))))
    return out


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 50,
    log: bool = True,
    unit: str = "",
) -> str:
    """Horizontal bars, one per (label, value) row."""
    if not rows:
        raise ValueError("nothing to plot")
    labels = [label for label, _v in rows]
    values = [v for _label, v in rows]
    if log:
        lengths = [p + 1 for p in _log_positions(values, width)]
    else:
        top = max(values) or 1.0
        lengths = [max(1, int(round(v / top * width))) for v in values]
    label_w = max(len(s) for s in labels)
    lines = []
    for label, value, length in zip(labels, values, lengths):
        lines.append(f"{label:<{label_w}}  {'#' * length:<{width}} {value:,.4g}{unit}")
    return "\n".join(lines)


def scatter(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    logx: bool = True,
    logy: bool = True,
    title: Optional[str] = None,
) -> str:
    """Multi-series character-grid scatter plot.

    ``series`` maps a name to its (x, y) points; each series gets a
    marker from ``o x + * ...``; collisions show the later marker.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")

    def tx(v: float, log: bool) -> float:
        if log:
            if v <= 0:
                raise ValueError("log scale needs positive data")
            return math.log(v)
        return v

    xs = [tx(x, logx) for x, _y in points]
    ys = [tx(y, logy) for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for mark, (name, pts) in zip(_MARKS, series.items()):
        for x, y in pts:
            col = int(round((tx(x, logx) - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((tx(y, logy) - y_lo) / y_span * (height - 1)))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    raw_ys = [y for _x, y in points]
    lines.append(f"y: {min(raw_ys):,.4g} .. {max(raw_ys):,.4g}"
                 f" ({'log' if logy else 'linear'})")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    raw_xs = [x for x, _y in points]
    lines.append(f"x: {min(raw_xs):,.4g} .. {max(raw_xs):,.4g}"
                 f" ({'log' if logx else 'linear'})")
    legend = "  ".join(f"{mark}={name}" for mark, name in zip(_MARKS, series))
    lines.append(legend)
    return "\n".join(lines)
