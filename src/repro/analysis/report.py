"""One-command regeneration of the paper's Table 1 with measured columns.

``python -m repro report [--n N] [--seeds S]`` runs a compact version of
every experiment in the benchmark harness (smaller grids, fewer seeds)
and prints a single table shaped like the paper's Table 1: one row per
result, with the paper's formula evaluated at N next to the measured
numbers.  The full-size version with fitted exponents lives in
``benchmarks/``; this is the fast, self-contained summary.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.analysis.tables import Table
from repro.asyncnet.schedulers import UnitDelayScheduler
from repro.core import (
    AdversarialTwoRoundElection,
    AfekGafniElection,
    AsyncAfekGafniElection,
    AsyncTradeoffElection,
    ImprovedTradeoffElection,
    Kutten16Election,
    LasVegasElection,
    SmallIdElection,
)
from repro.ids import assign_random, small_universe, tradeoff_universe
from repro.lowerbound import bounds
from repro.mathutil import ceil_sqrt
from repro.sweep.api import run
from repro.sweep.spec import RunSpec

__all__ = ["table1_report"]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def table1_report(n: int = 512, seeds: Optional[Sequence[int]] = None) -> Table:
    """Build the measured Table 1 at clique size ``n``."""
    if seeds is None:
        seeds = (0, 1, 2)
    table = Table(
        ["Table 1 row", "paper time", "paper messages", "measured time", "measured messages", "success"],
        title=f"Table 1, regenerated at n={n} (means over {len(seeds)} seeds)",
    )

    def det_ids(seed: int) -> List[int]:
        return assign_random(tradeoff_universe(n), n, random.Random(f"report:{n}:{seed}"))

    # --- Synchronous, deterministic, simultaneous wake-up -------------- #
    table.add_section("synchronous / deterministic / simultaneous wake-up")
    table.add_row(
        "LB Thm 3.8 (k=3 rounds)", "<= 3", f">= {bounds.thm38_message_lb(n, 3):,.0f}",
        "-", "-", "-",
    )
    for ell in (3, 5):
        runs = [
            run(
                RunSpec(
                    algorithm=lambda: ImprovedTradeoffElection(ell=ell),
                    n=n,
                    engine="sync",
                    seeds=(s,),
                    ids=det_ids(s),
                )
            )
            for s in seeds
        ]
        table.add_row(
            f"Alg Thm 3.10 (ell={ell})",
            ell,
            bounds.thm310_messages(n, ell),
            _mean([r.time for r in runs]),
            _mean([r.messages for r in runs]),
            all(r.unique_leader for r in runs),
        )
    table.add_row(
        "LB Thm 3.11 (time-bounded)", "any T(n)", f">= ~{bounds.thm311_message_lb(n):,.0f}",
        "-", "-", "-",
    )
    small_ids_runs = [
        run(
            RunSpec(
                algorithm=lambda: SmallIdElection(d=2, g=1),
                n=n,
                engine="sync",
                seeds=(s,),
                ids=assign_random(small_universe(n, 1), n, random.Random(f"rs:{n}:{s}")),
            )
        )
        for s in seeds
    ]
    table.add_row(
        "Alg Thm 3.15 (d=2, g=1)",
        bounds.thm315_rounds(n, 2),
        bounds.thm315_messages(n, 2, 1),
        _mean([r.time for r in small_ids_runs]),
        _mean([r.messages for r in small_ids_runs]),
        all(r.unique_leader for r in small_ids_runs),
    )

    # --- Synchronous, deterministic, adversarial wake-up --------------- #
    table.add_section("synchronous / deterministic / adversarial wake-up")
    ag_runs = [
        run(
            RunSpec(
                algorithm=lambda: AfekGafniElection(ell=4),
                n=n,
                engine="sync",
                seeds=(s,),
                ids=det_ids(s),
                awake=(0, 1),
            )
        )
        for s in seeds
    ]
    table.add_row(
        "Alg [1] AG (ell=4)",
        "4 (+1 announce)",
        bounds.ag_messages(n, 4),
        _mean([r.time for r in ag_runs]),
        _mean([r.messages for r in ag_runs]),
        all(r.unique_leader for r in ag_runs),
    )
    table.add_row(
        "LB [1] (c=2)", "<= 0.5*log2 n", f">= {bounds.ag_tradeoff_lb(n, 2):,.0f}", "-", "-", "-"
    )

    # --- Synchronous, randomized, simultaneous wake-up ----------------- #
    table.add_section("synchronous / randomized / simultaneous wake-up")
    lv_runs = [
        run(RunSpec(algorithm=LasVegasElection, n=n, engine="sync", seeds=(s,)))
        for s in seeds
    ]
    table.add_row(
        "Alg Thm 3.16 (Las Vegas)",
        "3 (whp)",
        f"O(n) = {bounds.thm316_las_vegas_messages(n):,.0f}",
        _mean([r.time for r in lv_runs]),
        _mean([r.messages for r in lv_runs]),
        all(r.unique_leader for r in lv_runs),
    )
    table.add_row(
        "LB Thm 3.16 (Las Vegas)", "-", f">= {bounds.thm316_las_vegas_lb(n):,.0f}", "-", "-", "-"
    )
    mc_runs = [
        run(RunSpec(algorithm=Kutten16Election, n=n, engine="sync", seeds=(s,)))
        for s in seeds
    ]
    table.add_row(
        "Alg [16] (Monte Carlo)",
        2,
        bounds.kutten16_messages(n),
        _mean([r.time for r in mc_runs]),
        _mean([r.messages for r in mc_runs]),
        sum(r.unique_leader for r in mc_runs) / len(mc_runs),
    )

    # --- Synchronous, randomized, adversarial wake-up ------------------ #
    table.add_section("synchronous / randomized / adversarial wake-up")
    adv_runs = [
        run(
            RunSpec(
                algorithm=lambda: AdversarialTwoRoundElection(epsilon=0.05),
                n=n,
                engine="sync",
                seeds=(s,),
                awake=random.Random(f"roots:{n}:{s}").sample(range(n), ceil_sqrt(n)),
            )
        )
        for s in seeds
    ]
    table.add_row(
        "Alg Thm 4.1 (eps=0.05)",
        2,
        bounds.thm41_expected_messages(n, 0.05),
        _mean([r.time for r in adv_runs]),
        _mean([r.messages for r in adv_runs]),
        sum(r.unique_leader for r in adv_runs) / len(adv_runs),
    )
    table.add_row(
        "LB Thm 4.2 (2 rounds)", "<= 2", f">= {bounds.thm42_message_lb(n):,.0f}", "-", "-", "-"
    )

    # --- Asynchronous --------------------------------------------------- #
    table.add_section("asynchronous / randomized")
    for k in (2, 4):
        runs = [
            run(
                RunSpec(
                    algorithm=lambda: AsyncTradeoffElection(k=k),
                    n=n,
                    engine="async",
                    seeds=(s,),
                    max_events=12_000_000,
                ),
                scheduler=UnitDelayScheduler(),
            )
            for s in seeds
        ]
        table.add_row(
            f"Alg Thm 5.1 (k={k})",
            bounds.thm51_time(k),
            bounds.thm51_messages(n, k),
            max(r.time for r in runs),
            _mean([r.messages for r in runs]),
            sum(r.unique_leader for r in runs) / len(runs),
        )
    table.add_row(
        "Alg [14] (reference, not reimplemented)",
        f"O(log^2 n) = {bounds.kmp14_time(n):,.0f}",
        f"O(n) = {bounds.kmp14_messages(n):,.0f}",
        "-",
        "-",
        "-",
    )
    ag_async_runs = [
        run(
            RunSpec(
                algorithm=AsyncAfekGafniElection,
                n=n,
                engine="async",
                seeds=(s,),
                wake_times={u: 0.0 for u in range(n)},
                max_events=12_000_000,
            ),
            scheduler=UnitDelayScheduler(),
        )
        for s in seeds
    ]
    table.add_row(
        "Alg Thm 5.14 (async AG)",
        f"O(log n) = {bounds.thm514_time(n):,.0f}",
        f"O(n log n) = {bounds.thm514_messages(n):,.0f}",
        max(r.time for r in ag_async_runs),
        _mean([r.messages for r in ag_async_runs]),
        all(r.unique_leader for r in ag_async_runs),
    )
    return table
