"""Experiment records + deprecated per-engine runner shims.

The runner flattens engine results into :class:`RunRecord` rows — the
unit every bench and table works with — and guarantees determinism:
record ``i`` of a sweep depends only on ``(n, seed)`` and the factory.

Since the RunSpec redesign the execution logic lives in
:mod:`repro.sweep.api`; the seven per-engine entrypoints below
(``run_sync_trial`` … ``sweep_async``) are thin **deprecated** shims
that build the equivalent :class:`~repro.sweep.RunSpec` and route
through :func:`repro.analysis.run` / :func:`repro.analysis.sweep`.
They produce bit-identical records to the new API and will be removed
one release after the redesign.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.asyncnet.engine import AsyncRunResult
from repro.sync.engine import SyncRunResult
from repro.telemetry.metrics import run_metrics

__all__ = [
    "RunRecord",
    "run_sync_trial",
    "run_async_trial",
    "run_fast_trial",
    "run_fast_batch",
    "sweep_sync",
    "sweep_async",
    "sweep_fast",
]


@dataclass
class RunRecord:
    """One run, flattened for analysis."""

    n: int
    seed: int
    messages: int
    time: float  # rounds (sync: last send round) or time units (async)
    unique_leader: bool
    elected_id: Optional[int]
    leaders: int
    decided: int
    awake: int
    params: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)


def _fault_extra(result: Any, extra: Dict[str, Any]) -> Dict[str, Any]:
    """Merge failure accounting into a record's ``extra`` when present."""
    if result.crashed or result.fault_metrics is not None:
        extra["crashed"] = list(result.crashed)
        extra["unique_surviving_leader"] = result.unique_surviving_leader
        extra["surviving_leader_id"] = result.surviving_leader_id
        extra["fault_metrics"] = result.fault_metrics
    extra["metrics"] = run_metrics(result).as_dict()
    return extra


def _sync_record(n: int, seed: int, result: SyncRunResult, params: Dict[str, Any]) -> RunRecord:
    return RunRecord(
        n=n,
        seed=seed,
        messages=result.messages,
        time=float(result.last_send_round),
        unique_leader=result.unique_leader,
        elected_id=result.elected_id,
        leaders=len(result.leaders),
        decided=result.decided_count,
        awake=result.awake_count,
        params=dict(params),
        extra=_fault_extra(result, {"rounds_executed": result.rounds_executed}),
    )


def _async_record(n: int, seed: int, result: AsyncRunResult, params: Dict[str, Any]) -> RunRecord:
    return RunRecord(
        n=n,
        seed=seed,
        messages=result.messages,
        time=result.time,
        unique_leader=result.unique_leader,
        elected_id=result.elected_id,
        leaders=len(result.leaders),
        decided=result.decided_count,
        awake=result.awake_count,
        params=dict(params),
        extra=_fault_extra(result, {"events": result.events}),
    )


def _fast_algorithm(algorithm: Any, params: Optional[Dict[str, Any]]) -> Any:
    from repro.fastsync import get_fast_algorithm

    if isinstance(algorithm, str):
        return get_fast_algorithm(algorithm)(**(params or {}))
    if callable(algorithm):
        return algorithm()
    return algorithm


def _fast_record(
    n: int, seed: int, result: Any, params: Optional[Dict[str, Any]]
) -> RunRecord:
    record = RunRecord(
        n=n,
        seed=seed,
        messages=result.messages,
        time=float(result.last_send_round),
        unique_leader=result.unique_leader,
        elected_id=result.elected_id,
        leaders=len(result.leaders),
        decided=result.decided_count,
        awake=result.awake_count,
        params=dict(params or {}),
        extra={
            "rounds_executed": result.rounds_executed,
            "engine": "fast",
            "mode": result.mode,
            "wall_time_s": result.wall_time_s,
        },
    )
    if result.crashed or result.fault_metrics is not None:
        record.extra["crashed"] = list(result.crashed)
        record.extra["unique_surviving_leader"] = result.unique_surviving_leader
        record.extra["surviving_leader_id"] = result.surviving_leader_id
        record.extra["fault_metrics"] = result.fault_metrics
        record.extra["leader_nodes"] = list(result.leaders)
        record.extra["leader_ids"] = list(result.leader_ids)
    if result.outputs is not None:
        record.extra["outputs"] = list(result.outputs)
    record.extra["metrics"] = run_metrics(result).as_dict()
    return record


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.analysis.{old}() is deprecated; build a repro.analysis."
        f"RunSpec and call repro.analysis.{new}() instead (this shim is "
        "kept for one release)",
        DeprecationWarning,
        stacklevel=3,
    )


def run_sync_trial(
    n: int,
    algorithm_factory: Callable[[], Any],
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    awake: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    faults: Optional[Any] = None,
    recorder: Optional[Any] = None,
    keep_result: bool = False,
) -> RunRecord:
    """Deprecated shim: one synchronous election via the RunSpec executor.

    ``faults`` takes a :class:`repro.faults.FaultPlan`; ``keep_result``
    stashes the raw engine result under ``extra["result"]`` for callers
    that need more than the flattened record (the failover runner).
    """
    _deprecated("run_sync_trial", "run")
    from repro.sweep.api import run
    from repro.sweep.spec import RunSpec

    return run(
        RunSpec(
            algorithm=algorithm_factory,
            n=n,
            engine="sync",
            seeds=(seed,),
            params=params or {},
            ids=ids,
            awake=awake,
            max_rounds=max_rounds,
            faults=faults,
        ),
        recorder=recorder,
        keep_result=keep_result,
    )


def run_async_trial(
    n: int,
    algorithm_factory: Callable[[], Any],
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    scheduler: Optional[Any] = None,
    wake_times: Optional[Dict[int, float]] = None,
    max_events: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    faults: Optional[Any] = None,
    recorder: Optional[Any] = None,
    keep_result: bool = False,
) -> RunRecord:
    """Deprecated shim: one asynchronous election via the RunSpec executor."""
    _deprecated("run_async_trial", "run")
    from repro.sweep.api import run
    from repro.sweep.spec import RunSpec

    return run(
        RunSpec(
            algorithm=algorithm_factory,
            n=n,
            engine="async",
            seeds=(seed,),
            params=params or {},
            ids=ids,
            wake_times=wake_times,
            max_events=max_events,
            faults=faults,
        ),
        recorder=recorder,
        scheduler=scheduler,
        keep_result=keep_result,
    )


def run_fast_trial(
    n: int,
    algorithm: Any,
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    mode: str = "auto",
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    crashes: Optional[Sequence[Any]] = None,
    roots: Optional[Sequence[int]] = None,
    keep_result: bool = False,
    telemetry: Optional[Any] = None,
    profile: bool = False,
) -> RunRecord:
    """Deprecated shim: one vectorized election via the RunSpec executor.

    ``algorithm`` is a registry name (constructed with ``params``), a
    zero-argument factory, or a ready :class:`~repro.fastsync.VectorAlgorithm`;
    ``crashes`` is a deterministic ``(node, at-round)`` crash-stop
    schedule and ``roots`` an adversarial wake-up schedule.
    """
    _deprecated("run_fast_trial", "run")
    from repro.sweep.api import run
    from repro.sweep.spec import RunSpec

    return run(
        RunSpec(
            algorithm=algorithm,
            n=n,
            engine="fast",
            seeds=(seed,),
            params=params or {},
            ids=ids,
            mode=mode,
            max_rounds=max_rounds,
            crashes=crashes,
            roots=roots,
            profile=profile,
        ),
        telemetry=telemetry,
        keep_result=keep_result,
    )


def run_fast_batch(
    n: int,
    algorithm: Any,
    *,
    seeds: Sequence[int],
    ids: Optional[Sequence[int]] = None,
    mode: str = "auto",
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    crashes: Optional[Sequence[Any]] = None,
    lane_crashes: Optional[Sequence[Any]] = None,
    roots: Optional[Sequence[int]] = None,
    keep_result: bool = False,
    telemetry: Optional[Any] = None,
    profile: bool = False,
) -> List[RunRecord]:
    """Deprecated shim: one batched vectorized execution, one record per lane.

    All lanes share the ``(n, ids, algorithm, params)`` configuration;
    lane ``b`` draws from RNG streams seeded exactly like a single run
    with ``seeds[b]`` (bit-identical in exact mode).
    """
    _deprecated("run_fast_batch", "sweep")
    from repro.sweep.api import execute_spec
    from repro.sweep.spec import RunSpec

    seed_list = tuple(seeds)
    return execute_spec(
        RunSpec(
            algorithm=algorithm,
            n=n,
            engine="fast",
            seeds=seed_list,
            batch=len(seed_list),
            params=params or {},
            ids=ids,
            mode=mode,
            max_rounds=max_rounds,
            crashes=crashes,
            lane_crashes=lane_crashes,
            roots=roots,
            profile=profile,
        ),
        telemetry=telemetry,
        keep_result=keep_result,
    )


def sweep_sync(
    ns: Sequence[int],
    factory_for_n: Callable[[int], Callable[[], Any]],
    *,
    seeds: Sequence[int] = (0,),
    ids_for_n: Optional[Callable[[int, random.Random], Sequence[int]]] = None,
    awake_for_n: Optional[Callable[[int, random.Random], Sequence[int]]] = None,
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> List[RunRecord]:
    """Deprecated shim: a synchronous grid sweep via the RunSpec executor.

    ``ids_for_n`` / ``awake_for_n`` receive a seeded RNG so workloads are
    reproducible per (n, seed).
    """
    _deprecated("sweep_sync", "sweep")
    from repro.sweep.api import sweep
    from repro.sweep.spec import RunSpec

    grid = []
    for n in ns:
        for seed in seeds:
            rng = random.Random(f"{n}:{seed}:workload")
            ids = ids_for_n(n, rng) if ids_for_n else None
            awake = awake_for_n(n, rng) if awake_for_n else None
            grid.append(
                RunSpec(
                    algorithm=factory_for_n(n),
                    n=n,
                    engine="sync",
                    seeds=(seed,),
                    params=params or {},
                    ids=ids,
                    awake=awake,
                    max_rounds=max_rounds,
                )
            )
    return sweep(grid)


def sweep_fast(
    ns: Sequence[int],
    name: str,
    *,
    seeds: Sequence[int] = (0,),
    ids_for_n: Optional[Callable[[int, random.Random], Sequence[int]]] = None,
    mode: str = "auto",
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    batch: Optional[int] = None,
) -> List[RunRecord]:
    """Deprecated shim: a vectorized grid sweep via the RunSpec executor.

    ``batch`` dispatches whole seed-batches per ``n`` point through
    multi-lane engine runs of ``batch`` lanes each; batched lanes share
    one ID assignment per ``n``, so ``batch`` and per-seed ``ids_for_n``
    are mutually exclusive.
    """
    _deprecated("sweep_fast", "sweep")
    from repro.sweep.api import sweep
    from repro.sweep.spec import RunSpec

    if batch is not None and batch < 1:
        raise ValueError("need batch >= 1")
    if batch is not None and ids_for_n is not None:
        raise ValueError(
            "batched sweeps share one ID assignment per n; "
            "ids_for_n draws per-seed IDs — drop one of the two"
        )
    grid = []
    for n in ns:
        if batch is not None:
            grid.append(
                RunSpec(
                    algorithm=name,
                    n=n,
                    engine="fast",
                    seeds=tuple(seeds),
                    batch=batch,
                    params=params or {},
                    mode=mode,
                    max_rounds=max_rounds,
                )
            )
            continue
        for seed in seeds:
            rng = random.Random(f"{n}:{seed}:workload")
            ids = ids_for_n(n, rng) if ids_for_n else None
            grid.append(
                RunSpec(
                    algorithm=name,
                    n=n,
                    engine="fast",
                    seeds=(seed,),
                    params=params or {},
                    ids=ids,
                    mode=mode,
                    max_rounds=max_rounds,
                )
            )
    return sweep(grid)


def sweep_async(
    ns: Sequence[int],
    factory_for_n: Callable[[int], Callable[[], Any]],
    *,
    seeds: Sequence[int] = (0,),
    scheduler_for_n: Optional[Callable[[int, random.Random], Any]] = None,
    wake_times_for_n: Optional[Callable[[int, random.Random], Dict[int, float]]] = None,
    max_events: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> List[RunRecord]:
    """Deprecated shim: an asynchronous grid sweep via the RunSpec executor."""
    _deprecated("sweep_async", "sweep")
    from repro.sweep.api import run
    from repro.sweep.spec import RunSpec

    records = []
    for n in ns:
        for seed in seeds:
            rng = random.Random(f"{n}:{seed}:workload")
            scheduler = scheduler_for_n(n, rng) if scheduler_for_n else None
            wake_times = wake_times_for_n(n, rng) if wake_times_for_n else None
            records.append(
                run(
                    RunSpec(
                        algorithm=factory_for_n(n),
                        n=n,
                        engine="async",
                        seeds=(seed,),
                        params=params or {},
                        wake_times=wake_times,
                        max_events=max_events,
                    ),
                    scheduler=scheduler,
                )
            )
    return records
