"""Experiment runner: parameter sweeps over the two engines.

The runner flattens engine results into :class:`RunRecord` rows — the
unit every bench and table works with — and guarantees determinism:
record ``i`` of a sweep depends only on ``(n, seed)`` and the factory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.asyncnet.engine import AsyncNetwork, AsyncRunResult
from repro.sync.engine import SyncNetwork, SyncRunResult
from repro.telemetry.metrics import run_metrics

__all__ = [
    "RunRecord",
    "run_sync_trial",
    "run_async_trial",
    "run_fast_trial",
    "run_fast_batch",
    "sweep_sync",
    "sweep_async",
    "sweep_fast",
]


@dataclass
class RunRecord:
    """One run, flattened for analysis."""

    n: int
    seed: int
    messages: int
    time: float  # rounds (sync: last send round) or time units (async)
    unique_leader: bool
    elected_id: Optional[int]
    leaders: int
    decided: int
    awake: int
    params: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)


def _fault_extra(result: Any, extra: Dict[str, Any]) -> Dict[str, Any]:
    """Merge failure accounting into a record's ``extra`` when present."""
    if result.crashed or result.fault_metrics is not None:
        extra["crashed"] = list(result.crashed)
        extra["unique_surviving_leader"] = result.unique_surviving_leader
        extra["surviving_leader_id"] = result.surviving_leader_id
        extra["fault_metrics"] = result.fault_metrics
    extra["metrics"] = run_metrics(result).as_dict()
    return extra


def _sync_record(n: int, seed: int, result: SyncRunResult, params: Dict[str, Any]) -> RunRecord:
    return RunRecord(
        n=n,
        seed=seed,
        messages=result.messages,
        time=float(result.last_send_round),
        unique_leader=result.unique_leader,
        elected_id=result.elected_id,
        leaders=len(result.leaders),
        decided=result.decided_count,
        awake=result.awake_count,
        params=dict(params),
        extra=_fault_extra(result, {"rounds_executed": result.rounds_executed}),
    )


def _async_record(n: int, seed: int, result: AsyncRunResult, params: Dict[str, Any]) -> RunRecord:
    return RunRecord(
        n=n,
        seed=seed,
        messages=result.messages,
        time=result.time,
        unique_leader=result.unique_leader,
        elected_id=result.elected_id,
        leaders=len(result.leaders),
        decided=result.decided_count,
        awake=result.awake_count,
        params=dict(params),
        extra=_fault_extra(result, {"events": result.events}),
    )


def run_sync_trial(
    n: int,
    algorithm_factory: Callable[[], Any],
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    awake: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    faults: Optional[Any] = None,
    recorder: Optional[Any] = None,
    keep_result: bool = False,
) -> RunRecord:
    """Run one synchronous election and flatten the result.

    ``faults`` takes a :class:`repro.faults.FaultPlan`; ``keep_result``
    stashes the raw engine result under ``extra["result"]`` for callers
    that need more than the flattened record (the failover runner).
    """
    net = SyncNetwork(
        n,
        algorithm_factory,
        ids=ids,
        seed=seed,
        awake=awake,
        max_rounds=max_rounds,
        faults=faults,
        recorder=recorder,
    )
    result = net.run()
    record = _sync_record(n, seed, result, params or {})
    if keep_result:
        record.extra["result"] = result
    return record


def run_async_trial(
    n: int,
    algorithm_factory: Callable[[], Any],
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    scheduler: Optional[Any] = None,
    wake_times: Optional[Dict[int, float]] = None,
    max_events: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    faults: Optional[Any] = None,
    recorder: Optional[Any] = None,
    keep_result: bool = False,
) -> RunRecord:
    """Run one asynchronous election and flatten the result."""
    net = AsyncNetwork(
        n,
        algorithm_factory,
        ids=ids,
        seed=seed,
        scheduler=scheduler,
        wake_times=wake_times,
        max_events=max_events,
        faults=faults,
        recorder=recorder,
    )
    result = net.run()
    record = _async_record(n, seed, result, params or {})
    if keep_result:
        record.extra["result"] = result
    return record


def _fast_algorithm(algorithm: Any, params: Optional[Dict[str, Any]]) -> Any:
    from repro.fastsync import get_fast_algorithm

    if isinstance(algorithm, str):
        return get_fast_algorithm(algorithm)(**(params or {}))
    if callable(algorithm):
        return algorithm()
    return algorithm


def _fast_record(
    n: int, seed: int, result: Any, params: Optional[Dict[str, Any]]
) -> RunRecord:
    record = RunRecord(
        n=n,
        seed=seed,
        messages=result.messages,
        time=float(result.last_send_round),
        unique_leader=result.unique_leader,
        elected_id=result.elected_id,
        leaders=len(result.leaders),
        decided=result.decided_count,
        awake=result.awake_count,
        params=dict(params or {}),
        extra={
            "rounds_executed": result.rounds_executed,
            "engine": "fast",
            "mode": result.mode,
            "wall_time_s": result.wall_time_s,
        },
    )
    if result.crashed:
        record.extra["crashed"] = list(result.crashed)
        record.extra["unique_surviving_leader"] = result.unique_surviving_leader
        record.extra["surviving_leader_id"] = result.surviving_leader_id
    record.extra["metrics"] = run_metrics(result).as_dict()
    return record


def run_fast_trial(
    n: int,
    algorithm: Any,
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    mode: str = "auto",
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    crashes: Optional[Sequence[Any]] = None,
    roots: Optional[Sequence[int]] = None,
    keep_result: bool = False,
    telemetry: Optional[Any] = None,
    profile: bool = False,
) -> RunRecord:
    """Run one election on the vectorized engine and flatten the result.

    ``algorithm`` is a registry name (constructed with ``params``), a
    zero-argument factory, or a ready :class:`~repro.fastsync.VectorAlgorithm`.
    Imports :mod:`repro.fastsync` lazily, so the runner module itself
    keeps working without numpy; ``mode`` selects the port model
    (``auto``/``exact``/``scale``, see the fastsync engine docs).
    ``crashes`` is a deterministic ``(node, at-round)`` crash-stop
    schedule, honored by the crash-aware vectorized ports only;
    ``roots`` is an adversarial wake-up schedule, honored by the
    wake-up-aware ports only (``adversarial_2round``).

    ``telemetry`` attaches a :class:`~repro.telemetry.FastTelemetry` for
    per-round aggregate counters; ``profile=True`` wraps the kernels in
    wall-clock phase timers and reports them under ``extra["profile"]``.
    """
    from repro.fastsync import FastSyncNetwork

    profiler = None
    if profile:
        from repro.telemetry.profile import PhaseProfiler

        profiler = PhaseProfiler()
    alg = _fast_algorithm(algorithm, params)
    net = FastSyncNetwork(
        n, ids=ids, seed=seed, mode=mode, max_rounds=max_rounds, crashes=crashes,
        roots=roots, telemetry=telemetry, profiler=profiler,
    )
    result = net.run(alg)
    record = _fast_record(n, seed, result, params)
    if profiler is not None:
        record.extra["profile"] = profiler.as_dict()
    if keep_result:
        record.extra["result"] = result
    return record


def run_fast_batch(
    n: int,
    algorithm: Any,
    *,
    seeds: Sequence[int],
    ids: Optional[Sequence[int]] = None,
    mode: str = "auto",
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    crashes: Optional[Sequence[Any]] = None,
    lane_crashes: Optional[Sequence[Any]] = None,
    roots: Optional[Sequence[int]] = None,
    keep_result: bool = False,
    telemetry: Optional[Any] = None,
    profile: bool = False,
) -> List[RunRecord]:
    """Run one *batched* vectorized execution — one record per lane seed.

    All lanes share the ``(n, ids, algorithm, params)`` configuration
    (and the ``crashes``/``roots`` schedules unless ``lane_crashes``
    gives each lane its own); lane ``b`` draws from RNG streams seeded
    exactly like a single run with ``seeds[b]``.  In exact mode the
    records are bit-identical to ``[run_fast_trial(..., seed=s) for s in
    seeds]``; in scale mode lanes stay deterministic per ``(n, seed)``
    but ride the faster batched sampler (see DESIGN.md "Batched fast
    engine").
    """
    from repro.fastsync import FastSyncNetwork

    profiler = None
    if profile:
        from repro.telemetry.profile import PhaseProfiler

        profiler = PhaseProfiler()
    alg = _fast_algorithm(algorithm, params)
    net = FastSyncNetwork(
        n, ids=ids, seeds=list(seeds), mode=mode, max_rounds=max_rounds,
        crashes=crashes, lane_crashes=lane_crashes, roots=roots,
        telemetry=telemetry, profiler=profiler,
    )
    records = []
    for seed, result in zip(seeds, net.run(alg)):
        record = _fast_record(n, seed, result, params)
        record.extra["batch"] = len(list(seeds))
        if profiler is not None:
            # One execution, one timer set: every lane record shares it.
            record.extra["profile"] = profiler.as_dict()
        if keep_result:
            record.extra["result"] = result
        records.append(record)
    return records


def sweep_sync(
    ns: Sequence[int],
    factory_for_n: Callable[[int], Callable[[], Any]],
    *,
    seeds: Sequence[int] = (0,),
    ids_for_n: Optional[Callable[[int, random.Random], Sequence[int]]] = None,
    awake_for_n: Optional[Callable[[int, random.Random], Sequence[int]]] = None,
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> List[RunRecord]:
    """Grid sweep: every ``n`` × every seed, deterministic.

    ``ids_for_n`` / ``awake_for_n`` receive a seeded RNG so workloads are
    reproducible per (n, seed).
    """
    records = []
    for n in ns:
        for seed in seeds:
            rng = random.Random(f"{n}:{seed}:workload")
            ids = ids_for_n(n, rng) if ids_for_n else None
            awake = awake_for_n(n, rng) if awake_for_n else None
            records.append(
                run_sync_trial(
                    n,
                    factory_for_n(n),
                    seed=seed,
                    ids=ids,
                    awake=awake,
                    max_rounds=max_rounds,
                    params=params,
                )
            )
    return records


def sweep_fast(
    ns: Sequence[int],
    name: str,
    *,
    seeds: Sequence[int] = (0,),
    ids_for_n: Optional[Callable[[int, random.Random], Sequence[int]]] = None,
    mode: str = "auto",
    max_rounds: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    batch: Optional[int] = None,
) -> List[RunRecord]:
    """Vectorized-engine grid sweep (see :func:`sweep_sync`).

    ``name`` must be a registry algorithm with a fast port; record ``i``
    depends only on ``(n, seed, mode)`` like the other sweeps.

    ``batch`` dispatches whole seed-batches per ``n`` point through one
    :func:`run_fast_batch` execution per chunk of ``batch`` seeds —
    several times faster per seed at ``n >= 10^5``.  Batched lanes share
    one ID assignment per ``n``, so ``batch`` and per-seed ``ids_for_n``
    are mutually exclusive; records keep the per-seed layout (and are
    bit-identical to the unbatched sweep in exact mode).
    """
    if batch is not None and batch < 1:
        raise ValueError("need batch >= 1")
    if batch is not None and ids_for_n is not None:
        raise ValueError(
            "batched sweeps share one ID assignment per n; "
            "ids_for_n draws per-seed IDs — drop one of the two"
        )
    records = []
    for n in ns:
        if batch is not None:
            seed_list = list(seeds)
            for start in range(0, len(seed_list), batch):
                records.extend(
                    run_fast_batch(
                        n,
                        name,
                        seeds=seed_list[start : start + batch],
                        mode=mode,
                        max_rounds=max_rounds,
                        params=params,
                    )
                )
            continue
        for seed in seeds:
            rng = random.Random(f"{n}:{seed}:workload")
            ids = ids_for_n(n, rng) if ids_for_n else None
            records.append(
                run_fast_trial(
                    n,
                    name,
                    seed=seed,
                    ids=ids,
                    mode=mode,
                    max_rounds=max_rounds,
                    params=params,
                )
            )
    return records


def sweep_async(
    ns: Sequence[int],
    factory_for_n: Callable[[int], Callable[[], Any]],
    *,
    seeds: Sequence[int] = (0,),
    scheduler_for_n: Optional[Callable[[int, random.Random], Any]] = None,
    wake_times_for_n: Optional[Callable[[int, random.Random], Dict[int, float]]] = None,
    max_events: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
) -> List[RunRecord]:
    """Asynchronous grid sweep (see :func:`sweep_sync`)."""
    records = []
    for n in ns:
        for seed in seeds:
            rng = random.Random(f"{n}:{seed}:workload")
            scheduler = scheduler_for_n(n, rng) if scheduler_for_n else None
            wake_times = wake_times_for_n(n, rng) if wake_times_for_n else None
            records.append(
                run_async_trial(
                    n,
                    factory_for_n(n),
                    seed=seed,
                    scheduler=scheduler,
                    wake_times=wake_times,
                    max_events=max_events,
                    params=params,
                )
            )
    return records
