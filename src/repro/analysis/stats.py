"""Trial aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["Summary", "summarize", "success_rate", "bootstrap_mean_ci", "ConfidenceInterval"]

T = TypeVar("T")


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.3g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics (population std)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    ordered = sorted(data)
    mid = count // 2
    if count % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2.0
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


def success_rate(items: Iterable[T], predicate: Callable[[T], bool]) -> float:
    """Fraction of items satisfying ``predicate``."""
    total = 0
    good = 0
    for item in items:
        total += 1
        good += bool(predicate(item))
    if total == 0:
        raise ValueError("cannot compute a rate over zero items")
    return good / total


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> "ConfidenceInterval":
    """Percentile-bootstrap confidence interval for the mean.

    Used by benches that aggregate noisy whp quantities (candidate
    counts, restart counts) where normal-theory intervals would be
    dubious at small sample sizes.
    """
    import random as _random

    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("need 0 < confidence < 1")
    rng = _random.Random(seed)
    m = len(data)
    means = sorted(
        sum(rng.choice(data) for _ in range(m)) / m for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = int(alpha * resamples)
    hi_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return ConfidenceInterval(
        mean=sum(data) / m,
        low=means[lo_index],
        high=means[hi_index],
        confidence=confidence,
    )


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval around a sample mean."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        pct = int(self.confidence * 100)
        return f"{self.mean:.4g} [{self.low:.4g}, {self.high:.4g}] ({pct}% CI)"
