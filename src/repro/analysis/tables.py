"""Aligned text tables in the style of the paper's Table 1.

Benches print one of these per experiment: a column of workloads, a
column with the paper's bound evaluated on that workload, and measured
columns next to it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["Table", "format_quantity"]


def format_quantity(value: Any) -> str:
    """Human-friendly numbers: thousands separators, short floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:,.1f}"
        return f"{value:.3g}"
    return str(value)


class Table:
    """A minimal aligned-text table."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("need at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells; table has {len(self.columns)} columns"
            )
        self.rows.append([format_quantity(v) for v in values])

    def add_section(self, label: str) -> None:
        """A full-width separator row."""
        self.rows.append([f"-- {label}"] + [""] * (len(self.columns) - 1))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
