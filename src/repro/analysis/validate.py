"""Election-validity checks shared by tests and benches.

Leader election (Section 2): exactly one node outputs LEADER, every other
participating node outputs NON_LEADER; in the explicit variant non-leaders
additionally name the leader's ID.
"""

from __future__ import annotations

from typing import Any

from repro.common import Decision

__all__ = ["election_valid", "assert_unique_leader", "agreement_ok"]


def election_valid(result: Any, *, require_all_decided: bool = True) -> bool:
    """Exactly one leader; (optionally) every awake node decided."""
    if len(result.leaders) != 1:
        return False
    if require_all_decided and result.decided_count < result.awake_count:
        return False
    return True


def assert_unique_leader(result: Any) -> None:
    """Raise ``AssertionError`` with diagnostics unless exactly one leader."""
    if len(result.leaders) != 1:
        raise AssertionError(
            f"expected exactly one leader, got {len(result.leaders)} "
            f"(nodes {result.leaders}, ids {result.leader_ids}); "
            f"decided {result.decided_count}/{result.n}"
        )


def agreement_ok(result: Any) -> bool:
    """Explicit agreement: every named leader output matches the winner.

    Nodes that decided NON_LEADER without naming a leader (implicit
    election) are ignored.
    """
    if not result.unique_leader:
        return False
    expected = result.elected_id
    for u, decision in enumerate(result.decisions):
        if decision is Decision.NON_LEADER and result.outputs[u] is not None:
            if result.outputs[u] != expected:
                return False
    return True
