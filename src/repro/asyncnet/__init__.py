"""Asynchronous clique simulator (the model of Section 5 of the paper).

Messages experience adversarial delays of at most one *time unit*; links
are FIFO; the adversary wakes an arbitrary nonempty subset of nodes (at
arbitrary times), and any sleeping node wakes when a message reaches it.
The *asynchronous time complexity* of an execution is the total time from
the first wake-up until the last message is received, with every delay
normalized to at most 1 — exactly the paper's definition.

Delay choices are delegated to pluggable :class:`DelayScheduler`
strategies so benches can exercise unit-delay (lock-step-like), random,
rushing and per-link-heterogeneous adversaries.
"""

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.engine import AsyncContext, AsyncNetwork, AsyncRunResult
from repro.asyncnet.metrics import AsyncMetrics
from repro.asyncnet.schedulers import (
    DelayScheduler,
    PerLinkDelayScheduler,
    RushScheduler,
    TargetedDelayScheduler,
    UniformDelayScheduler,
    UnitDelayScheduler,
)

__all__ = [
    "AsyncAlgorithm",
    "AsyncContext",
    "AsyncNetwork",
    "AsyncRunResult",
    "AsyncMetrics",
    "DelayScheduler",
    "UnitDelayScheduler",
    "UniformDelayScheduler",
    "RushScheduler",
    "PerLinkDelayScheduler",
    "TargetedDelayScheduler",
]
