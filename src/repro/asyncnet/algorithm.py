"""Base class for asynchronous per-node algorithms."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.asyncnet.engine import AsyncContext


class AsyncAlgorithm:
    """One node's asynchronous protocol.

    The engine instantiates one object per node.  Handlers:

    * :meth:`on_wake` — called once, when the node is woken (by the
      adversary or by the arrival of a first message);
    * :meth:`on_message` — called for every delivered message, after
      ``on_wake`` if the message is what woke the node.

    Handlers run atomically (no other event is processed while a handler
    runs), which matches the standard asynchronous message-passing model:
    a node's step is triggered by a single message receipt.
    """

    def on_wake(self, ctx: "AsyncContext") -> None:
        """Hook invoked once upon wake-up."""

    def on_message(self, ctx: "AsyncContext", port: int, payload: Any) -> None:
        """Handle one delivered message."""
        raise NotImplementedError

    def on_timer(self, ctx: "AsyncContext", tag: Any) -> None:
        """Handle a timer set via :meth:`AsyncContext.set_timer`.

        The default ignores timers, so message-driven algorithms need not
        care that the facility exists.  Fault-tolerant algorithms use
        timers to poll their failure detector and to pace commits.
        """
