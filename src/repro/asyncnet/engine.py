"""The asynchronous event-driven engine.

Implementation notes:

* Events live in a binary heap keyed by ``(time, seq)`` where ``seq`` is a
  global monotonic counter; ties in time are therefore broken by
  scheduling order, making runs fully deterministic.
* FIFO links: the delivery time of a message on directed link ``u → v``
  is clamped to be no earlier than the previously scheduled delivery on
  the same link.
* A sleeping node is woken by its first delivery: ``on_wake`` runs first,
  then ``on_message`` for the waking message, at the same timestamp —
  matching Algorithm 2's "if an asleep node receives a message ... then"
  step.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import (
    Decision,
    ProtocolError,
    SimulationLimitExceeded,
    SurvivorAccounting,
    message_kind,
)
from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.metrics import AsyncMetrics
from repro.asyncnet.schedulers import DelayScheduler, UnitDelayScheduler
from repro.net.ports import LazyPortMap, PortMap, RandomPortPolicy

__all__ = ["AsyncContext", "AsyncNetwork", "AsyncRunResult"]

_EVENT_WAKE = 0
_EVENT_DELIVER = 1
_EVENT_CRASH = 2
_EVENT_TIMER = 3


class AsyncContext:
    """Per-node handle for interacting with the asynchronous clique."""

    __slots__ = ("_net", "node", "my_id", "n", "rng", "now", "wake_time")

    def __init__(self, net: "AsyncNetwork", node: int, my_id: int, rng: random.Random):
        self._net = net
        self.node = node
        self.my_id = my_id
        self.n = net.n
        self.rng = rng
        self.now = 0.0
        self.wake_time = 0.0

    @property
    def port_count(self) -> int:
        return self.n - 1

    def sample_ports(self, m: int) -> List[int]:
        """``m`` distinct ports sampled uniformly (no replacement)."""
        if m > self.port_count:
            raise ValueError(f"cannot sample {m} of {self.port_count} ports")
        return self.rng.sample(range(self.port_count), m)

    def send(self, port: int, payload: Any) -> None:
        self._net._send(self.node, port, payload)

    def send_many(self, ports: Sequence[int], payload: Any) -> None:
        for port in ports:
            self._net._send(self.node, port, payload)

    def broadcast(self, payload: Any) -> None:
        self.send_many(range(self.port_count), payload)

    @property
    def decision(self) -> Optional[Decision]:
        return self._net.decisions[self.node]

    def decide_leader(self) -> None:
        self._net._decide(self.node, Decision.LEADER, self.my_id)

    def decide_follower(self, leader_id: Optional[int] = None) -> None:
        self._net._decide(self.node, Decision.NON_LEADER, leader_id)

    def halt(self) -> None:
        """Stop processing messages (deliveries to this node are dropped)."""
        self._net._halt(self.node)

    # ------------------------------------------------------------------ #
    # timers and failure detection (faults subsystem)

    def set_timer(self, delay: float, tag: Any = None) -> None:
        """Schedule :meth:`AsyncAlgorithm.on_timer` at ``now + delay``.

        Timers are node-local (they are not messages, cost nothing and
        bypass the fault plan); a timer pending when its owner halts or
        crashes is silently discarded.  Unlike message delays, ``delay``
        may exceed one time unit.
        """
        self._net._set_timer(self.node, delay, tag)

    @property
    def detector(self):
        """This node's failure-detector oracle (see :mod:`repro.faults`).

        Always available; without a fault plan it is a perfect detector
        over a crash-free run (it never suspects anyone).
        """
        return self._net.detector_for(self.node)


@dataclass
class AsyncRunResult(SurvivorAccounting):
    """Summary of one asynchronous execution."""

    n: int
    ids: List[int]
    messages: int
    time: float
    events: int
    leaders: List[int]
    decisions: List[Optional[Decision]]
    outputs: List[Optional[int]]
    awake_count: int
    dropped_deliveries: int
    metrics: AsyncMetrics
    crashed: List[int] = field(default_factory=list)
    fault_metrics: Optional[Any] = None  # FaultMetrics when a plan was active

    @property
    def leader_ids(self) -> List[int]:
        return [self.ids[u] for u in self.leaders]

    @property
    def unique_leader(self) -> bool:
        return len(self.leaders) == 1

    @property
    def elected_id(self) -> Optional[int]:
        return self.ids[self.leaders[0]] if self.unique_leader else None

    @property
    def decided_count(self) -> int:
        return sum(1 for d in self.decisions if d is not None)


class AsyncNetwork:
    """An asynchronous ``n``-clique with adversarial delays and wake-up."""

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], AsyncAlgorithm],
        *,
        ids: Optional[Sequence[int]] = None,
        seed: int = 0,
        port_map: Optional[PortMap] = None,
        scheduler: Optional[DelayScheduler] = None,
        wake_times: Optional[Dict[int, float]] = None,
        max_events: Optional[int] = None,
        recorder: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        self.n = n
        self.seed = seed
        master = random.Random(seed)
        if ids is None:
            ids = list(range(1, n + 1))
        if len(ids) != n or len(set(ids)) != n:
            raise ValueError("need n distinct IDs")
        self.ids = list(ids)
        if port_map is None:
            # The paper requires the async adversary to fix the port
            # mapping *obliviously* (before the first wake-up); a random
            # policy seeded independently of node randomness satisfies
            # that.
            port_map = LazyPortMap(n, RandomPortPolicy(random.Random(master.getrandbits(64))))
        self.port_map = port_map
        self.scheduler = scheduler if scheduler is not None else UnitDelayScheduler()
        self.recorder = recorder
        self.max_events = max_events if max_events is not None else max(200_000, 400 * n)

        self.algorithms: List[AsyncAlgorithm] = [algorithm_factory() for _ in range(n)]
        self.contexts: List[AsyncContext] = [
            AsyncContext(self, u, self.ids[u], random.Random(master.getrandbits(64)))
            for u in range(n)
        ]
        self.decisions: List[Optional[Decision]] = [None] * n
        self.outputs: List[Optional[int]] = [None] * n
        self.leaders: List[int] = []
        self.metrics = AsyncMetrics()

        self.fault_plan = faults
        self.fault_runtime = None
        self._detectors: Dict[int, Any] = {}

        self._awake: List[bool] = [False] * n
        self._halted: List[bool] = [False] * n
        self._crashed: List[bool] = [False] * n
        self._heap: List[Tuple[float, int, int, int, int, Any]] = []
        self._seq = 0
        self._link_last_delivery: Dict[Tuple[int, int], float] = {}
        self._dropped = 0
        self._now = 0.0

        if faults is not None:
            from repro.faults.runtime import FaultRuntime

            self.fault_runtime = FaultRuntime(faults, n, self.ids, seed)
            for at, node in self.fault_runtime.static_crashes():
                self._push(at, _EVENT_CRASH, node, -1, None)

        if wake_times is None:
            wake_times = {0: 0.0}
        if not wake_times:
            raise ValueError("the adversary must wake at least one node")
        for node, t in sorted(wake_times.items()):
            if not 0 <= node < n:
                raise ValueError("wake-time node indices must be in [0, n)")
            if t < 0:
                raise ValueError("wake times must be >= 0")
            self._push(t, _EVENT_WAKE, node, -1, None)

    # ------------------------------------------------------------------ #
    # event plumbing

    def _push(self, time: float, kind: int, node: int, port: int, payload: Any) -> None:
        heapq.heappush(self._heap, (time, self._seq, kind, node, port, payload))
        self._seq += 1

    def _send(self, u: int, port: int, payload: Any) -> None:
        if self._halted[u] or self._crashed[u]:
            raise ProtocolError(f"halted/crashed node {u} attempted to send")
        v, j = self.port_map.resolve(u, port)
        delay = self.scheduler.delay(u, v, self._now, payload)
        if not 0.0 < delay <= 1.0:
            raise ProtocolError(f"scheduler produced delay {delay!r} outside (0, 1]")
        deliver_at = self._now + delay
        link = (u, v)
        previous = self._link_last_delivery.get(link)
        if previous is not None and deliver_at < previous:
            deliver_at = previous  # FIFO: never overtake on the same link
        self._link_last_delivery[link] = deliver_at
        kind = message_kind(payload)
        self.metrics.messages_total += 1
        self.metrics.messages_by_kind[kind] += 1
        if self.recorder is not None:
            self.recorder.on_send(self._now, u, port, v, j, payload)
        if self.fault_runtime is None:
            self._push(deliver_at, _EVENT_DELIVER, v, j, payload)
            return
        for when, node in self.fault_runtime.observe_send(self._now, u, kind):
            self._push(when, _EVENT_CRASH, node, -1, None)
        for delivered in self.fault_runtime.delivered_payloads(
            u, v, kind, payload, self._now
        ):
            # Byzantine rewrites (and replayed stale copies) are traced
            # separately from the honest on_send record above.
            if (
                delivered is not payload
                and self.recorder is not None
                and hasattr(self.recorder, "on_tamper")
            ):
                self.recorder.on_tamper(self._now, u, v, payload, delivered)
            self._push(deliver_at, _EVENT_DELIVER, v, j, delivered)

    def _set_timer(self, u: int, delay: float, tag: Any) -> None:
        if self._halted[u] or self._crashed[u]:
            raise ProtocolError(f"halted/crashed node {u} attempted to set a timer")
        if delay <= 0:
            raise ProtocolError(f"timer delay must be > 0, got {delay!r}")
        self._push(self._now + delay, _EVENT_TIMER, u, -1, tag)

    def _decide(self, u: int, decision: Decision, output: Optional[int]) -> None:
        previous = self.decisions[u]
        if previous is not None:
            if previous is decision and self.outputs[u] == output:
                return
            raise ProtocolError(
                f"node {u} tried to change its decision from {previous} to {decision}"
            )
        self.decisions[u] = decision
        self.outputs[u] = output
        if decision is Decision.LEADER:
            self.leaders.append(u)
        if self.recorder is not None:
            self.recorder.on_decide(self._now, u, decision, output)

    def _halt(self, u: int) -> None:
        self._halted[u] = True

    def _crash(self, u: int) -> None:
        """Crash-stop ``u`` now; its pending deliveries/timers are dropped."""
        self._crashed[u] = True
        self.fault_runtime.note_crash(u, self._now)
        if self.recorder is not None and hasattr(self.recorder, "on_crash"):
            self.recorder.on_crash(self._now, u)

    def detector_for(self, u: int):
        """The failure-detector oracle of node ``u`` (cached per run)."""
        detector = self._detectors.get(u)
        if detector is None:
            from repro.faults.detectors import engine_detector

            detector = engine_detector(
                self.fault_plan, u, self.ids, self.fault_runtime, port_map=self.port_map
            )
            self._detectors[u] = detector
        return detector

    def _wake(self, u: int) -> None:
        if self._awake[u] or self._halted[u] or self._crashed[u]:
            return
        self._awake[u] = True
        self.metrics.wake_count += 1
        self.metrics.first_wake_time = min(self.metrics.first_wake_time, self._now)
        ctx = self.contexts[u]
        ctx.now = self._now
        ctx.wake_time = self._now
        if self.recorder is not None:
            self.recorder.on_wake(self._now, u)
        self.algorithms[u].on_wake(ctx)

    # ------------------------------------------------------------------ #
    # execution

    def run(self) -> AsyncRunResult:
        """Process events until quiescence (empty event queue)."""
        while self._heap:
            if self.metrics.events_processed >= self.max_events:
                raise SimulationLimitExceeded(
                    f"no quiescence after {self.max_events} events (n={self.n})"
                )
            time, _seq, kind, node, port, payload = heapq.heappop(self._heap)
            self._now = time
            self.metrics.events_processed += 1
            if kind == _EVENT_CRASH:
                # Crashes are adversary actions, not protocol activity:
                # they do not extend the measured time span by themselves.
                if self.fault_runtime.approve_crash(node):
                    self._crash(node)
                continue
            if kind == _EVENT_TIMER:
                if self._halted[node] or self._crashed[node]:
                    continue  # discarded with its owner; no time-span effect
                self.metrics.last_event_time = max(self.metrics.last_event_time, time)
                self.metrics.timers_fired += 1
                ctx = self.contexts[node]
                ctx.now = time
                self.algorithms[node].on_timer(ctx, payload)
                continue
            self.metrics.last_event_time = max(self.metrics.last_event_time, time)
            if kind == _EVENT_WAKE:
                self._wake(node)
                continue
            # delivery
            if self._halted[node] or self._crashed[node]:
                self._dropped += 1
                continue
            if not self._awake[node]:
                self._wake(node)
            ctx = self.contexts[node]
            ctx.now = time
            if self.recorder is not None:
                self.recorder.on_deliver(time, node, port, payload)
            self.algorithms[node].on_message(ctx, port, payload)
        return self._result()

    def _result(self) -> AsyncRunResult:
        return AsyncRunResult(
            n=self.n,
            ids=self.ids,
            messages=self.metrics.messages_total,
            time=self.metrics.time_span,
            events=self.metrics.events_processed,
            leaders=list(self.leaders),
            decisions=list(self.decisions),
            outputs=list(self.outputs),
            awake_count=sum(self._awake),
            dropped_deliveries=self._dropped,
            metrics=self.metrics,
            crashed=[u for u in range(self.n) if self._crashed[u]],
            fault_metrics=(
                self.fault_runtime.metrics if self.fault_runtime is not None else None
            ),
        )
