"""Message/time accounting for asynchronous executions."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["AsyncMetrics"]


@dataclass
class AsyncMetrics:
    messages_total: int = 0
    events_processed: int = 0
    wake_count: int = 0
    timers_fired: int = 0
    first_wake_time: float = float("inf")
    last_event_time: float = 0.0
    messages_by_kind: Counter = field(default_factory=Counter)

    @property
    def time_span(self) -> float:
        """Asynchronous time complexity: first wake-up → last event.

        Delays are normalized to at most 1 unit, so this is directly
        comparable to the paper's ``k + 8``-style statements.
        """
        if self.first_wake_time == float("inf"):
            return 0.0
        return self.last_event_time - self.first_wake_time

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.messages_by_kind.items()))
        return (
            f"messages={self.messages_total} time={self.time_span:.3f} "
            f"events={self.events_processed} [{kinds}]"
        )
