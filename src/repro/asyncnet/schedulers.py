"""Adversarial delay schedulers for the asynchronous clique.

A scheduler assigns each message a transmission delay in ``(0, 1]`` — one
*time unit* is, by definition, an upper bound on any transmission time.
The engine additionally enforces FIFO per directed link by never letting a
later send on a link overtake an earlier one.

The paper's adversary may pick delays arbitrarily (after seeing the random
bits, but with an obliviously-chosen port mapping); we therefore provide a
family of concrete adversaries that benches run side by side:

* :class:`UnitDelayScheduler` — every delay is exactly 1.  This maximizes
  the time span of any fixed communication dag and is the canonical
  worst case for time-complexity measurements.
* :class:`UniformDelayScheduler` — i.i.d. uniform delays, the "random
  network weather" baseline.
* :class:`RushScheduler` — near-zero delays; an adversary that executes
  message chains as fast as possible, exposing race conditions (many
  algorithm bugs only show up when some chains run far ahead of others).
* :class:`PerLinkDelayScheduler` — a fixed random delay per directed
  link: a heterogeneous network in which some links are persistently slow.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Tuple

__all__ = [
    "DelayScheduler",
    "UnitDelayScheduler",
    "UniformDelayScheduler",
    "RushScheduler",
    "PerLinkDelayScheduler",
    "TargetedDelayScheduler",
]


class DelayScheduler:
    """Strategy assigning per-message delays in ``(0, 1]``."""

    def delay(self, src: int, dst: int, send_time: float, payload: Any) -> float:
        raise NotImplementedError


class UnitDelayScheduler(DelayScheduler):
    """Every message takes exactly one time unit."""

    def delay(self, src: int, dst: int, send_time: float, payload: Any) -> float:
        return 1.0


class UniformDelayScheduler(DelayScheduler):
    """I.i.d. uniform delays in ``[lo, hi] ⊆ (0, 1]``."""

    def __init__(self, rng: random.Random, lo: float = 0.05, hi: float = 1.0) -> None:
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("need 0 < lo <= hi <= 1")
        self.rng = rng
        self.lo = lo
        self.hi = hi

    def delay(self, src: int, dst: int, send_time: float, payload: Any) -> float:
        return self.rng.uniform(self.lo, self.hi)


class RushScheduler(DelayScheduler):
    """Near-instant delivery (``epsilon`` per hop).

    Time spans measured under this scheduler are near zero by
    construction; its purpose is correctness testing under extreme event
    interleavings, not time measurement.
    """

    def __init__(self, epsilon: float = 1e-6) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError("need 0 < epsilon <= 1")
        self.epsilon = epsilon

    def delay(self, src: int, dst: int, send_time: float, payload: Any) -> float:
        return self.epsilon


class PerLinkDelayScheduler(DelayScheduler):
    """A fixed delay per directed link, drawn once per link.

    Models persistent heterogeneity (slow links stay slow), which is the
    adversary that separates FIFO-per-link behaviour from global-order
    behaviour.
    """

    def __init__(self, rng: random.Random, lo: float = 0.05, hi: float = 1.0) -> None:
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("need 0 < lo <= hi <= 1")
        self.rng = rng
        self.lo = lo
        self.hi = hi
        self._link_delay: Dict[Tuple[int, int], float] = {}

    def delay(self, src: int, dst: int, send_time: float, payload: Any) -> float:
        key = (src, dst)
        value = self._link_delay.get(key)
        if value is None:
            value = self.rng.uniform(self.lo, self.hi)
            self._link_delay[key] = value
        return value


class TargetedDelayScheduler(DelayScheduler):
    """Per-message-kind delays: the protocol-aware adversary.

    The paper's adversary may inspect the algorithm (and even its random
    bits) when choosing delays.  The sharpest executions it can force
    differentiate by *message role*: e.g. rushing every ``compete`` while
    stalling every ``win`` maximizes the number of referees whose stored
    winner is consulted and overturned — the exact interleavings the
    uniqueness argument of Lemma 5.9 has to survive.

    ``kind_delays`` maps a payload kind (the first element of tuple
    payloads, see :func:`repro.common.message_kind`) to a fixed delay in
    ``(0, 1]``; unspecified kinds get ``default``.
    """

    def __init__(self, kind_delays: Dict[str, float], default: float = 0.5) -> None:
        for kind, value in kind_delays.items():
            if not 0.0 < value <= 1.0:
                raise ValueError(f"delay for kind {kind!r} outside (0, 1]: {value}")
        if not 0.0 < default <= 1.0:
            raise ValueError("default delay outside (0, 1]")
        self.kind_delays = dict(kind_delays)
        self.default = default

    def delay(self, src: int, dst: int, send_time: float, payload: Any) -> float:
        kind = None
        if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
            kind = payload[0]
        elif isinstance(payload, str):
            kind = payload
        return self.kind_delays.get(kind, self.default)
