"""Common value types shared by the synchronous and asynchronous engines."""

from __future__ import annotations

import enum
from typing import Any, List, Optional

__all__ = [
    "Decision",
    "ProtocolError",
    "SimulationLimitExceeded",
    "SurvivorAccounting",
    "message_kind",
]


class Decision(enum.Enum):
    """Irrevocable output of a node in (implicit) leader election.

    Exactly one node must output :attr:`LEADER`; every other node outputs
    :attr:`NON_LEADER`.  In the *explicit* variant nodes additionally
    output the leader's ID.
    """

    LEADER = "leader"
    NON_LEADER = "non_leader"


class ProtocolError(RuntimeError):
    """An algorithm violated the model (e.g. revoked a decision)."""


class SimulationLimitExceeded(RuntimeError):
    """The engine hit a safety limit (rounds/events) without terminating."""


class SurvivorAccounting:
    """Crash-aware leader accounting shared by both engines' run results.

    Expects ``ids``, ``leaders`` (node indices that decided LEADER) and
    ``crashed`` (node indices that crash-stopped) on the instance.
    Under crash faults a committed leader may die and be replaced, in
    which case ``leaders`` legitimately has two entries; failover
    correctness is judged by :attr:`unique_surviving_leader`.
    """

    ids: List[int]
    leaders: List[int]
    crashed: List[int]

    @property
    def crashed_count(self) -> int:
        return len(self.crashed)

    @property
    def surviving_leaders(self) -> List[int]:
        """Leaders that were still alive when the run ended."""
        dead = set(self.crashed)
        return [u for u in self.leaders if u not in dead]

    @property
    def unique_surviving_leader(self) -> bool:
        """Exactly one *alive* node holds LEADER at the end of the run."""
        return len(self.surviving_leaders) == 1

    @property
    def surviving_leader_id(self) -> Optional[int]:
        survivors = self.surviving_leaders
        return self.ids[survivors[0]] if len(survivors) == 1 else None


def message_kind(payload: Any) -> str:
    """Best-effort message kind for metrics.

    By convention, algorithm payloads are tuples whose first element is a
    short string tag (``("compete", rank)``); bare strings are their own
    kind; anything else is bucketed by type name.
    """
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    if isinstance(payload, str):
        return payload
    return type(payload).__name__
