"""Common value types shared by the synchronous and asynchronous engines."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Decision",
    "ProtocolError",
    "SimulationLimitExceeded",
    "message_kind",
]


class Decision(enum.Enum):
    """Irrevocable output of a node in (implicit) leader election.

    Exactly one node must output :attr:`LEADER`; every other node outputs
    :attr:`NON_LEADER`.  In the *explicit* variant nodes additionally
    output the leader's ID.
    """

    LEADER = "leader"
    NON_LEADER = "non_leader"


class ProtocolError(RuntimeError):
    """An algorithm violated the model (e.g. revoked a decision)."""


class SimulationLimitExceeded(RuntimeError):
    """The engine hit a safety limit (rounds/events) without terminating."""


def message_kind(payload: Any) -> str:
    """Best-effort message kind for metrics.

    By convention, algorithm payloads are tuples whose first element is a
    short string tag (``("compete", rank)``); bare strings are their own
    kind; anything else is bucketed by type name.
    """
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    if isinstance(payload, str):
        return payload
    return type(payload).__name__
