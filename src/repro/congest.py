"""CONGEST-model accounting: message sizes in bits.

The paper's algorithms "have their claimed complexities also under the
CONGEST model" (§2), i.e. every message fits in ``O(log n)`` bits.  This
module estimates the wire size of the tuple payloads used by the
algorithms so that benches and tests can check the CONGEST claim: no
message may need more than ``c·log2(n)`` bits.

The convention (see :func:`repro.common.message_kind`) is that payloads
are tuples ``(kind, field, ...)`` where fields are ints (IDs, ranks,
levels) or bools.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["payload_bits", "assert_congest", "CongestViolation"]

# Distinct message kinds per algorithm are O(1), so a fixed-width tag is
# enough; 8 bits covers all kinds used in this package.
_KIND_BITS = 8


class CongestViolation(AssertionError):
    """A message exceeded the CONGEST budget."""


def payload_bits(payload: Any) -> int:
    """Estimated wire size of one message payload, in bits."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length())
    if isinstance(payload, str):
        return _KIND_BITS
    if isinstance(payload, tuple):
        return sum(payload_bits(field) for field in payload)
    raise TypeError(f"cannot size payload field of type {type(payload).__name__}")


def congest_budget(n: int, factor: float = 8.0) -> float:
    """The per-message CONGEST budget ``factor·log2(n)`` bits.

    ``factor`` absorbs the constant number of O(log n)-bit fields per
    message (ranks live in ``[n^4]`` — four words — plus an ID and a
    tag).
    """
    return factor * math.log2(max(n, 2)) + _KIND_BITS


__all__.append("congest_budget")


def assert_congest(payload: Any, n: int, factor: float = 8.0) -> None:
    """Raise :class:`CongestViolation` if a payload exceeds the budget."""
    bits = payload_bits(payload)
    budget = congest_budget(n, factor)
    if bits > budget:
        raise CongestViolation(
            f"payload {payload!r} needs {bits} bits > CONGEST budget "
            f"{budget:.0f} bits for n={n}"
        )


class CongestAuditor:
    """Engine recorder that audits every sent message against CONGEST.

    Attach as (part of) a network ``recorder``; raises on the first
    violating message and tallies total bits otherwise.
    """

    def __init__(self, n: int, factor: float = 8.0) -> None:
        self.n = n
        self.factor = factor
        self.total_bits = 0
        self.max_bits = 0
        self.messages = 0

    def on_send(self, when, u, port, v, peer_port, payload) -> None:
        assert_congest(payload, self.n, self.factor)
        bits = payload_bits(payload)
        self.total_bits += bits
        self.max_bits = max(self.max_bits, bits)
        self.messages += 1

    def on_wake(self, when, u) -> None:  # pragma: no cover - no-op hook
        pass

    def on_decide(self, when, u, decision, output) -> None:  # pragma: no cover
        pass

    def on_deliver(self, when, v, port, payload) -> None:  # pragma: no cover
        pass


__all__.append("CongestAuditor")
