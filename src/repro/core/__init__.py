"""The paper's algorithms (its primary contribution).

Synchronous (run under :class:`repro.sync.SyncNetwork`):

* :class:`ImprovedTradeoffElection` — Theorem 3.10, the improved
  deterministic message/time tradeoff under simultaneous wake-up.
* :class:`AfekGafniElection` — the Afek–Gafni (1991) baseline the paper
  improves on (reconstructed from its stated tradeoff).
* :class:`SmallIdElection` — Algorithm 1 / Theorem 3.15 for linear-size
  ID universes.
* :class:`Kutten16Election` — the 2-round Monte Carlo baseline of Kutten
  et al. [16].
* :class:`LasVegasElection` — Theorem 3.16's 3-round Las Vegas algorithm.
* :class:`AdversarialTwoRoundElection` — Theorem 4.1, the optimal 2-round
  algorithm under adversarial wake-up.

Asynchronous (run under :class:`repro.asyncnet.AsyncNetwork`):

* :class:`AsyncTradeoffElection` — Algorithm 2 / Theorem 5.1, the first
  asynchronous message/time tradeoff.
* :class:`AsyncAfekGafniElection` — §5.4 / Theorem 5.14, the
  asynchronous translation of Afek–Gafni under simultaneous wake-up.
"""

from repro.core.improved_tradeoff import ImprovedTradeoffElection
from repro.core.afek_gafni import AfekGafniElection
from repro.core.small_id import SmallIdElection
from repro.core.kutten16 import Kutten16Election
from repro.core.las_vegas import LasVegasElection
from repro.core.adversarial_2round import AdversarialTwoRoundElection
from repro.core.async_tradeoff import AsyncTradeoffElection
from repro.core.async_afek_gafni import AsyncAfekGafniElection
from repro.core.registry import ALGORITHMS, AlgorithmSpec, get_algorithm

__all__ = [
    "ImprovedTradeoffElection",
    "AfekGafniElection",
    "SmallIdElection",
    "Kutten16Election",
    "LasVegasElection",
    "AdversarialTwoRoundElection",
    "AsyncTradeoffElection",
    "AsyncAfekGafniElection",
    "ALGORITHMS",
    "AlgorithmSpec",
    "get_algorithm",
]
