"""Theorem 4.1: optimal 2-round election under adversarial wake-up.

Setting: synchronous clique; the adversary wakes an arbitrary nonempty
subset of nodes ("roots") in round 1; everyone else sleeps until a message
arrives.  The algorithm succeeds with probability ``≥ 1 - ε - 1/n``, sends
``O(n^(3/2)·log(1/ε))`` messages in expectation and never more than
``O(n^(3/2) log n)`` whp, and matches the Ω(n^(3/2)) lower bound of
Theorem 4.2.

* Round 1 — every root sends a wake-up message over ``⌈√n⌉`` ports
  sampled uniformly without replacement.
* Round 2 — every node that *received* a round-1 wake-up message
  becomes a candidate with probability ``log(1/ε)/⌈√n⌉``; a candidate
  draws a rank from ``[n^4]`` and broadcasts it.  (At least ``⌈√n⌉``
  nodes receive round-1 messages, so a candidate exists with
  probability ``≥ 1 - ε``.)
* End of round 2 — a candidate becomes leader iff every rank it received
  is lower than its own; every other awake node becomes a non-leader.

One reading note: the paper words the candidacy rule as "awoken by the
receipt of a round-1 message (i.e., not by the adversary)".  Under the
literal not-a-root reading, an adversary that wakes *every* node leaves
zero candidates and the algorithm fails deterministically — contradicting
the theorem's "at least ⌈√n⌉ nodes will be awoken by a message" step.
We therefore implement the receipt-based reading (roots that receive a
round-1 message may also become candidates), which restores the proof for
every root set and keeps the expected message complexity at
``O(n^(3/2)·log(1/ε))``: at most ``min(n, |R|·⌈√n⌉)`` receivers flip coins,
so the expected number of candidates is ``O(√n·log(1/ε))`` and their rank
broadcasts cost ``O(n^(3/2)·log(1/ε))``.

A node distinguishes the phases by its wake-up round alone (the adversary
wakes roots in round 1 only — the paper makes the same simplifying
assumption): wake-up messages are only ever received in round 2, and rank
broadcasts only in round 3.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.mathutil import ceil_sqrt
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["AdversarialTwoRoundElection"]

WAKE = "wake"
RANK = "rank"


class AdversarialTwoRoundElection(SyncAlgorithm):
    """Theorem 4.1's 2-round randomized algorithm.

    Parameters
    ----------
    epsilon:
        Target failure probability ``ε ≥ 1/poly(n)``; the candidacy
        probability is ``log(1/ε)/⌈√n⌉``.
    """

    def __init__(self, epsilon: float = 0.05) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("need 0 < epsilon < 1")
        self.epsilon = epsilon
        self.is_root = False
        self.candidate = False
        self.rank: Optional[int] = None

    def candidate_probability(self, n: int) -> float:
        return min(1.0, math.log(1.0 / self.epsilon) / ceil_sqrt(n))

    def on_wake(self, ctx: SyncContext) -> None:
        self.is_root = ctx.wake_round == 1

    def _maybe_compete(self, ctx: SyncContext) -> None:
        """Receipt of a round-1 wake-up message: flip candidacy."""
        n = ctx.n
        if ctx.rng.random() < self.candidate_probability(n):
            self.candidate = True
            self.rank = ctx.rng.randrange(1, n**4 + 1)
            ctx.broadcast((RANK, self.rank, ctx.my_id))
        elif not self.is_root:
            # "Non-candidate nodes immediately become non-leaders"; they
            # stay up one more round so in-flight rank broadcasts are not
            # dropped.  (Roots decide in their own final step.)
            ctx.decide_follower()

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        n = ctx.n
        if n == 1:
            ctx.decide_leader()
            ctx.halt()
            return
        offset = ctx.round - ctx.wake_round
        woken_by_message = any(p[0] == WAKE for _port, p in inbox)
        ranks = [p[1:] for _port, p in inbox if p[0] == RANK]
        if self.is_root:
            if offset == 0:
                ports = ctx.sample_ports(min(ceil_sqrt(n), n - 1))
                ctx.send_many(ports, (WAKE,))
            elif offset == 1 and woken_by_message:
                # A root that received another root's wake-up message is
                # also eligible for candidacy (see the reading note in
                # the module docstring).
                self._maybe_compete(ctx)
            elif offset == 2:
                # Ranks broadcast in round 2 arrive at the start of round 3.
                self._decide(ctx, ranks)
        else:
            if offset == 0 and ctx.wake_round == 2:
                self._maybe_compete(ctx)
            elif ctx.wake_round == 2 and offset == 1:
                self._decide(ctx, ranks)
            elif ctx.wake_round >= 3:
                # First woken by a rank broadcast: adopt the outcome.
                self._decide(ctx, ranks)

    def _decide(self, ctx: SyncContext, ranks: List[Tuple[int, int]]) -> None:
        """Final step: the unique maximum rank (if any) leads."""
        if ctx.decision is not None:
            ctx.halt()
            return
        if self.candidate:
            assert self.rank is not None
            beaten = any(rank >= self.rank for rank, _sender in ranks)
            if not beaten:
                ctx.decide_leader()
                ctx.halt()
                return
        if ranks:
            best_rank, best_sender = max(ranks)
            tie = sum(1 for rank, _s in ranks if rank == best_rank) > 1
            is_own_tie = self.candidate and self.rank == best_rank
            if tie or is_own_tie:
                ctx.decide_follower()  # rank collision: nobody leads
            else:
                ctx.decide_follower(best_sender)
        else:
            ctx.decide_follower()
        ctx.halt()
    # NOTE: nodes never woken at all (possible only when no candidate
    # emerged) remain asleep; the run then has zero leaders and counts as
    # the ε-probability failure.
