"""The Afek–Gafni (1991) deterministic baseline (reconstruction).

The paper improves on the synchronous tradeoff algorithm of Afek and
Gafni [1], which it cites through its interface: for any ``ℓ ≥ 2``, an
``ℓ``-round algorithm sending ``O(ℓ · n^(1 + 2/ℓ))`` messages, working
under **adversarial wake-up** (candidates are the spontaneously awake
nodes; sleeping nodes participate as referees only, after being woken by a
message).

We reconstruct the algorithm with the same survivor/referee skeleton used
in §3.3 of the paper, parameterized to reproduce the stated tradeoff:
``K = ⌊ℓ/2⌋`` two-round iterations with referee counts
``m_i = ⌈n^(i/K)⌉``.  Message count per iteration is at most
``n^(1 + 1/K) ≈ n^(1 + 2/ℓ)``, and the final iteration contacts all
``n - 1`` peers, leaving a unique survivor — the highest-ID initially
awake node.

Differences from the (unavailable) original, documented for benchmarking:

* Our reconstruction appends one explicit announcement round in which the
  unique survivor broadcasts ``elected``, so every node terminates with
  the leader's ID even under adversarial wake-up (a woken referee has no
  global round counter, so it cannot infer termination silently).  The
  *implicit* election takes ``2K ≤ ℓ`` message rounds, matching the
  paper's ``ℓ``; benches report both ``last_send_round`` (includes the
  announcement) and :attr:`implicit_rounds`.
* Under simultaneous wake-up all ``n`` nodes start as candidates, which
  is the configuration the head-to-head comparison with Theorem 3.10
  uses.

The comparison the paper makes — message exponent ``1 + 2/ℓ`` (AG)
versus ``1 + 2/(ℓ+1)`` (Theorem 3.10) for the same round budget — is
exactly reproduced by this reconstruction.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.mathutil import ceil_pow_frac
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["AfekGafniElection"]

COMPETE = "compete"
RESPONSE = "response"
ELECTED = "elected"


class AfekGafniElection(SyncAlgorithm):
    """Reconstructed Afek–Gafni tradeoff algorithm.

    Parameters
    ----------
    ell:
        Round budget ``≥ 2``; the algorithm runs ``K = max(1, ell // 2)``
        two-round iterations (``2K ≤ ell`` message rounds before the
        announcement).
    """

    def __init__(self, ell: int = 4) -> None:
        if ell < 2:
            raise ValueError("Afek-Gafni requires ell >= 2")
        self.ell = ell
        self.iterations = max(1, ell // 2)
        self.candidate = False  # set on wake for round-1 wake-ups
        self.awaiting = 0
        self._referee_counts: List[int] = []

    @property
    def implicit_rounds(self) -> int:
        """Rounds used by the implicit election (before the announcement)."""
        return 2 * self.iterations

    def referee_count(self, n: int, iteration: int) -> int:
        """``m_i = min(⌈n^(i/K)⌉, n - 1)``; the last iteration contacts all."""
        if not self._referee_counts:
            k = self.iterations
            self._referee_counts = [
                min(ceil_pow_frac(n, i, k), n - 1) for i in range(1, k + 1)
            ]
        return self._referee_counts[iteration - 1]

    # ------------------------------------------------------------------ #

    def on_wake(self, ctx: SyncContext) -> None:
        # Spontaneously awake nodes (round 1) are the candidates; nodes
        # woken by a message serve as referees only.
        self.candidate = ctx.wake_round == 1

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        r = ctx.round
        last_compete_round = 2 * self.iterations - 1
        announce_round = 2 * self.iterations + 1

        # Leader announcement ends the run for everyone.
        for _port, payload in inbox:
            if payload[0] == ELECTED:
                if ctx.decision is None:
                    ctx.decide_follower(payload[1])
                ctx.halt()
                return

        if r % 2 == 1 and r <= announce_round:
            if self.candidate and r > 1:
                responses = sum(1 for _p, payload in inbox if payload[0] == RESPONSE)
                if responses < self.awaiting:
                    self.candidate = False
            if r <= last_compete_round:
                if self.candidate:
                    i = (r + 1) // 2
                    m = self.referee_count(ctx.n, i)
                    ctx.send_many(range(m), (COMPETE, ctx.my_id))
                    self.awaiting = m
            else:
                # r == announce_round: the unique survivor announces.
                if self.candidate:
                    ctx.decide_leader()
                    ctx.broadcast((ELECTED, ctx.my_id))
                    ctx.halt()
        elif r % 2 == 0:
            # Referee: answer the highest compete of this iteration.  A
            # node that is itself a live candidate enters its own ID into
            # the comparison (it implicitly "competes at itself"); without
            # this, two candidates with no third common referee (e.g.
            # n = 2) would both survive the final iteration.
            best_port: Optional[int] = None
            best_id = ctx.my_id if self.candidate else -1
            for port, payload in inbox:
                if payload[0] == COMPETE and payload[1] > best_id:
                    best_id = payload[1]
                    best_port = port
            if best_port is not None:
                ctx.send(best_port, (RESPONSE,))
