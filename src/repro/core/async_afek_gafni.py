"""§5.4 / Theorem 5.14: the asynchronous Afek–Gafni translation.

Setting: asynchronous clique, **simultaneous wake-up** (or, equivalently,
time counted from the last spontaneous wake-up), adversarial FIFO delays.
Deterministic.  ``O(log n)`` time and ``O(n log n)`` messages.

Every node starts as a *candidate* at level 0 and supports itself
("``v`` is its own neighbor number 1").  A candidate at level ``i`` asks
its first ``2^i`` neighbors — itself plus ports ``0 .. 2^i - 2`` — for
support (``⟨req, id, level⟩``); when all of them acknowledge, it climbs to
level ``i + 1``, and it becomes leader once it holds the support of all
``n`` nodes.

A node ``v`` supports at most one candidate at a time (its *owner*,
initially itself).  When a request from a challenger ``w ≠ owner``
arrives, ``v`` sends a *conditional cancel* to the owner ``u``:

* ``u`` **refuses** if it already became leader, or if its
  ``(level, id)`` pair lexicographically beats the challenger's
  ``(level, id)`` — in that case ``v`` *kills* ``w``;
* otherwise ``u`` is killed (drops its candidacy), and ``v`` transfers
  its support: it stores ``w`` and acknowledges.

While a cancel is in flight, further requests at ``v`` are queued FIFO.
When the owner is ``v`` itself, the consultation is resolved locally.

The paper's prose only spells out the ``w > u`` (by ID) challenge; the
symmetric case follows the same conditional-cancel route with the
``(level, id)`` order, which is exactly what the proofs of Lemmas 5.11
and 5.12 require: a candidate that is the highest to reach level ``i``
can only be killed by a refusal issued from level ``> i`` (progress,
Lemma 5.11), and support is exclusive — a supporter acknowledges a new
candidate only after its previous owner verifiably died (counting,
Lemma 5.12, giving at most ``n/2^i`` candidates at level ``i``).

Safety is deterministic and unconditional: for two leaders each would
need the support of the other's node, but a node's support moves only
over its owner's dead body, and a leader never dies.

**The full tradeoff (§5.4's opening claim).**  The paper stresses that
the translation preserves "the very same tradeoff" Afek–Gafni obtained
synchronously.  The ``iterations`` parameter realizes it: with
``iterations = K``, level ``i`` asks for ``⌈n^(i/K)⌉`` supporters
(instead of ``2^i``), giving ``K`` capture waves — ``O(K)`` time from
the last wake-up — and ``O(K·n^(1+1/K))`` messages, exactly the
synchronous tradeoff shape.  ``iterations=None`` (default) keeps the
doubling schedule, i.e. the ``O(log n)`` time / ``O(n log n)`` message
point stated by Theorem 5.14.
"""

from __future__ import annotations

from typing import Any, Deque, Optional, Tuple
from collections import deque

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.engine import AsyncContext
from repro.mathutil import ceil_log2

__all__ = ["AsyncAfekGafniElection"]

REQ = "req"
ACK = "ack"
KILL = "kill"
CANCEL = "cancel"
CANCEL_REPLY = "cancel_reply"
ELECTED = "elected"


class AsyncAfekGafniElection(AsyncAlgorithm):
    """Deterministic asynchronous election via level-based capture.

    Parameters
    ----------
    iterations:
        ``None`` (default) — doubling levels ``2^i`` (Theorem 5.14's
        ``O(log n)``-time point).  An integer ``K >= 2`` — the general
        tradeoff schedule with supporter targets ``⌈n^(i/K)⌉``:
        ``O(K)`` time, ``O(K·n^(1+1/K))`` messages.
    """

    def __init__(self, iterations: Optional[int] = None) -> None:
        if iterations is not None and iterations < 2:
            raise ValueError("need iterations >= 2 (or None for doubling levels)")
        self.iterations = iterations
        # candidate state
        self.alive = True
        self.leader = False
        self.level = 0
        self.acks = 0
        self.needed = 0
        # supporter (referee) state
        self.owner_id: Optional[int] = None
        self.owner_port: Optional[int] = None  # None while the owner is me
        self.busy = False
        self.pending: Optional[Tuple[int, int, int]] = None  # (port, id, level)
        self.queue: Deque[Tuple[int, int, int]] = deque()

    # ------------------------------------------------------------------ #
    # candidate side

    def on_wake(self, ctx: AsyncContext) -> None:
        if ctx.n == 1:
            ctx.decide_leader()
            return
        self.owner_id = ctx.my_id  # support myself (neighbor number 1)
        self._enter_level(ctx, 1)
        # Degenerate schedules can make level 1 free (one supporter: me);
        # climb immediately until a level actually needs acknowledgements.
        while self.alive and not self.leader and self.needed == 0:
            if self._targets(ctx, self.level) >= ctx.n:
                self.leader = True
                ctx.decide_leader()
                ctx.broadcast((ELECTED, ctx.my_id))
            else:
                self._enter_level(ctx, self.level + 1)

    def _targets(self, ctx: AsyncContext, level: int) -> int:
        """Number of supporters (including myself) required at ``level``."""
        if self.iterations is None:
            return min(2**level, ctx.n)
        from repro.mathutil import ceil_pow_frac

        return min(ceil_pow_frac(ctx.n, level, self.iterations), ctx.n)

    def _enter_level(self, ctx: AsyncContext, level: int) -> None:
        self.level = level
        self.acks = 0
        self.needed = self._targets(ctx, level) - 1
        ctx.send_many(range(self.needed), (REQ, ctx.my_id, level))

    def _die(self, ctx: AsyncContext) -> None:
        if self.leader:
            return  # a leader never dies
        self.alive = False
        if ctx.decision is None:
            ctx.decide_follower()

    def _handle_ack(self, ctx: AsyncContext, level: int) -> None:
        if not self.alive or self.leader or level != self.level:
            return  # stale acknowledgement of an abandoned level
        self.acks += 1
        if self.acks < self.needed:
            return
        if self._targets(ctx, self.level) >= ctx.n:
            self.leader = True
            ctx.decide_leader()
            ctx.broadcast((ELECTED, ctx.my_id))
        else:
            self._enter_level(ctx, self.level + 1)

    def _beats_challenger(self, challenger_id: int, challenger_level: int, ctx: AsyncContext) -> bool:
        """Does my live candidacy lexicographically beat the challenger?"""
        if not self.alive:
            return False
        if self.leader:
            return True
        return (self.level, ctx.my_id) > (challenger_level, challenger_id)

    # ------------------------------------------------------------------ #
    # supporter side

    def _handle_req(self, ctx: AsyncContext, port: int, cand_id: int, level: int) -> None:
        if self.busy:
            # A cancel is in flight.  The eventual owner will carry a
            # (level, id) priority at least the pool maximum, so weaker
            # challengers can be killed right away — without this
            # fast-kill, cancel round-trips would stack and the O(K)
            # time of the level schedule would degrade (the synchronous
            # algorithm gets the same effect from per-round batching).
            assert self.pending is not None
            pool_best = max(
                (self.pending[2], self.pending[1]),
                max(((lv, cid) for _p, cid, lv in self.queue), default=(-1, -1)),
            )
            if cand_id == self.owner_id or (level, cand_id) > pool_best:
                self.queue.append((port, cand_id, level))
            else:
                ctx.send(port, (KILL,))
            return
        if cand_id == self.owner_id:
            ctx.send(port, (ACK, level))
            return
        if self.owner_port is None:
            # The owner is me: resolve the conditional cancel locally.
            if self._beats_challenger(cand_id, level, ctx):
                ctx.send(port, (KILL,))
            else:
                self._die(ctx)
                self.owner_id = cand_id
                self.owner_port = port
                ctx.send(port, (ACK, level))
            return
        self.busy = True
        self.pending = (port, cand_id, level)
        ctx.send(self.owner_port, (CANCEL, cand_id, level))

    def _handle_cancel(self, ctx: AsyncContext, port: int, challenger_id: int, challenger_level: int) -> None:
        # I am some node's current owner; a challenger wants my slot.
        if self._beats_challenger(challenger_id, challenger_level, ctx):
            ctx.send(port, (CANCEL_REPLY, False))
        else:
            self._die(ctx)
            ctx.send(port, (CANCEL_REPLY, True))

    def _handle_cancel_reply(self, ctx: AsyncContext, accepted: bool) -> None:
        assert self.pending is not None, "cancel_reply without a pending request"
        pool = [self.pending]
        pending_level, pending_id = self.pending[2], self.pending[1]
        requeue = []
        for q_port, q_id, q_level in self.queue:
            if q_id == self.owner_id:
                requeue.append((q_port, q_id, q_level))  # owner re-request
            else:
                pool.append((q_port, q_id, q_level))
        self.pending = None
        self.busy = False
        self.queue.clear()
        if accepted:
            # The old owner died; the strongest pooled challenger takes
            # the slot, everyone else pooled is killed (they lose to the
            # new owner by the priority order).
            best = max(pool, key=lambda entry: (entry[2], entry[1]))
            b_port, b_id, b_level = best
            self.owner_id = b_id
            self.owner_port = b_port
            ctx.send(b_port, (ACK, b_level))
            for q_port, _q_id, _q_level in pool:
                if q_port != b_port:
                    ctx.send(q_port, (KILL,))
            # Old owner's re-requests are moot (it is dead); drop them.
            requeue = []
        else:
            # The owner refused (it outranks the pending challenger).
            # Everything pooled at or below the pending priority loses
            # outright; a strictly stronger pooled challenger needs its
            # own consultation of the (possibly higher-level) owner.
            stronger = []
            for q_port, q_id, q_level in pool:
                if (q_level, q_id) > (pending_level, pending_id):
                    stronger.append((q_port, q_id, q_level))
                else:
                    ctx.send(q_port, (KILL,))
            requeue = stronger + requeue
        for q_port, q_id, q_level in requeue:
            if self.busy:
                self.queue.append((q_port, q_id, q_level))
            else:
                self._handle_req(ctx, q_port, q_id, q_level)

    # ------------------------------------------------------------------ #

    def on_message(self, ctx: AsyncContext, port: int, payload: Any) -> None:
        kind = payload[0]
        if kind == REQ:
            self._handle_req(ctx, port, payload[1], payload[2])
        elif kind == ACK:
            self._handle_ack(ctx, payload[1])
        elif kind == KILL:
            self._die(ctx)
        elif kind == CANCEL:
            self._handle_cancel(ctx, port, payload[1], payload[2])
        elif kind == CANCEL_REPLY:
            self._handle_cancel_reply(ctx, payload[1])
        elif kind == ELECTED:
            if ctx.decision is None:
                ctx.decide_follower(payload[1])

    @staticmethod
    def max_level(n: int) -> int:
        """The level at which a candidate holds everyone's support."""
        return max(1, ceil_log2(n))
