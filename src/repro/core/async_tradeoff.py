"""Algorithm 2 / Theorem 5.1: the asynchronous message/time tradeoff.

Setting: asynchronous clique, adversarial wake-up, adversarial (≤ 1 time
unit) FIFO message delays, obliviously-chosen port mapping.  For a
parameter ``k ∈ [2, O(log n / log log n)]`` the algorithm elects a unique
leader whp within ``k + 8`` time units while sending ``O(n^(1 + 1/k))``
messages whp.

Protocol (paper's Algorithm 2):

* **Wake-up spray** — upon waking (by the adversary or by any message), a
  node sends ``⟨wake⟩`` over ``Θ(n^(1/k))`` uniformly random ports.  The
  cover-tree argument (Lemmas 5.4–5.8) shows every node wakes within
  ``k + 4`` time units whp.
* **Candidacy** — a waking node becomes a candidate with probability
  ``Θ(log n / n)``; a candidate draws a rank from ``[n^4]``, stores it in
  its own ``ρ_winner``, and sends ``⟨compete, rank⟩`` to
  ``⌈4√(n·log n)⌉`` random *referees*.
* **Refereeing** — a node ``v`` holds the best rank seen so far in
  ``ρ_winner`` (plus how to reach the candidate that owns it):

  - empty ``ρ_winner`` → store the rank, grant ``⟨win⟩``;
  - ``rank ≤ ρ_winner`` → reply ``⟨lose⟩``;
  - ``rank > ρ_winner`` → *consult* the stored winner ``w``: if ``w`` has
    already become leader it stays the winner and the newcomer gets
    ``⟨lose⟩``; otherwise ``w`` drops out of the race, and the newcomer is
    stored and granted ``⟨win⟩``.  (If the stored winner is ``v`` itself,
    the consultation is local.)  While one consultation is in flight,
    further competes are queued FIFO — a faithful serialization of the
    paper's per-referee processing.

* **Decision** — a candidate that collected ``⟨win⟩`` from *all* its
  referees (and never dropped out) decides LEADER and broadcasts
  ``⟨leader⟩``; every other node decides NON_LEADER upon that
  announcement (dropped candidates decide as soon as they drop).

Uniqueness (Lemma 5.9): any two candidates share a referee whp, and a
shared referee's win grants are linearized by the consult protocol — the
earlier winner provably was not yet leader and drops.  The maximum-rank
candidate never drops (nobody outranks it), so whp exactly one leader
emerges.

Parameters expose the paper's constants: ``gamma`` (wake-up fan-out
coefficient), ``candidate_coeff`` (the paper's 4 in ``4 log n / n``),
``referee_coeff`` (the paper's 4 in ``⌈4√(n log n)⌉``).
"""

from __future__ import annotations

import math
from typing import Any, Deque, Optional, Tuple
from collections import deque

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.asyncnet.engine import AsyncContext
from repro.mathutil import ceil_pow_frac

__all__ = ["AsyncTradeoffElection"]

WAKE = "wake"
COMPETE = "compete"
WIN = "win"
LOSE = "lose"
CONFIRM = "confirm"
CONFIRM_REPLY = "confirm_reply"
LEADER = "leader"


class AsyncTradeoffElection(AsyncAlgorithm):
    """Algorithm 2 with tradeoff parameter ``k``."""

    def __init__(
        self,
        k: int = 2,
        gamma: float = 3.0,
        candidate_coeff: float = 4.0,
        referee_coeff: float = 2.0,
    ) -> None:
        if k < 2:
            raise ValueError("Theorem 5.1 requires k >= 2")
        if gamma <= 0 or candidate_coeff <= 0 or referee_coeff <= 0:
            raise ValueError("coefficients must be positive")
        self.k = k
        self.gamma = gamma
        self.candidate_coeff = candidate_coeff
        self.referee_coeff = referee_coeff
        # candidate state
        self.candidate = False
        self.rank: Optional[int] = None
        self.needed = 0
        self.wins = 0
        self.dropped = False
        self.leader = False
        # referee state
        self.rho_winner: Optional[int] = None
        self.winner_port: Optional[int] = None  # None while the winner is me
        self.busy = False
        self.pending: Optional[Tuple[int, int]] = None
        self.queue: Deque[Tuple[int, int]] = deque()

    # ------------------------------------------------------------------ #
    # parameter schedule

    def wake_fanout(self, n: int) -> int:
        """``min(n-1, ⌈γ·n^(1/k)⌉)`` wake-up messages per waking node."""
        return min(n - 1, math.ceil(self.gamma * ceil_pow_frac(n, 1, self.k)))

    def candidate_probability(self, n: int) -> float:
        return min(1.0, self.candidate_coeff * math.log(n) / n)

    def referee_count(self, n: int) -> int:
        return min(n - 1, math.ceil(self.referee_coeff * math.sqrt(n * math.log(n))))

    # ------------------------------------------------------------------ #
    # wake-up phase

    def on_wake(self, ctx: AsyncContext) -> None:
        n = ctx.n
        if n == 1:
            ctx.decide_leader()
            return
        ctx.send_many(ctx.sample_ports(self.wake_fanout(n)), (WAKE,))
        if ctx.rng.random() < self.candidate_probability(n):
            self.candidate = True
            self.rank = ctx.rng.randrange(1, n**4 + 1)
            self.rho_winner = self.rank
            self.winner_port = None  # the stored winner is me
            referees = ctx.sample_ports(self.referee_count(n))
            ctx.send_many(referees, (COMPETE, self.rank))
            self.needed = len(referees)

    # ------------------------------------------------------------------ #
    # message handlers

    def on_message(self, ctx: AsyncContext, port: int, payload: Any) -> None:
        kind = payload[0]
        if kind == WAKE:
            return  # waking is handled by the engine via on_wake
        if kind == COMPETE:
            self._handle_compete(ctx, port, payload[1])
        elif kind == WIN:
            self._handle_win(ctx)
        elif kind == LOSE:
            self._drop_out(ctx)
        elif kind == CONFIRM:
            self._handle_confirm(ctx, port)
        elif kind == CONFIRM_REPLY:
            self._handle_confirm_reply(ctx, payload[1])
        elif kind == LEADER:
            if ctx.decision is None:
                ctx.decide_follower(payload[1])

    # ------------------------------------------------------------------ #
    # candidate side

    def _handle_win(self, ctx: AsyncContext) -> None:
        if not self.candidate or self.dropped or self.leader:
            return
        self.wins += 1
        if self.wins >= self.needed:
            self.leader = True
            ctx.decide_leader()
            ctx.broadcast((LEADER, ctx.my_id))

    def _drop_out(self, ctx: AsyncContext) -> None:
        """This candidate leaves the race (lose verdict or consultation)."""
        if self.leader:
            return  # cannot happen in a correct run; kept for robustness
        self.dropped = True
        if ctx.decision is None:
            ctx.decide_follower()

    def _handle_confirm(self, ctx: AsyncContext, port: int) -> None:
        # I am the stored winner at some referee; a higher rank arrived
        # there.  If I already became leader I stay leader; otherwise I
        # drop out of the race (paper lines 21-29).
        if self.leader:
            ctx.send(port, (CONFIRM_REPLY, True))
        else:
            self._drop_out(ctx)
            ctx.send(port, (CONFIRM_REPLY, False))

    # ------------------------------------------------------------------ #
    # referee side

    def _handle_compete(self, ctx: AsyncContext, port: int, rank: int) -> None:
        if self.busy:
            # A consultation is in flight.  Ranks that cannot become the
            # new winner lose immediately (the settled winner's rank will
            # be at least the pool maximum, or the old winner turned out
            # to be the leader and everything pending loses anyway);
            # genuinely higher ranks join the pool and are settled in one
            # batch when the consultation answer arrives.  This keeps the
            # win-grant chain serialized — which the uniqueness argument
            # of Lemma 5.9 requires — without stacking consultation
            # round-trips, which would break the ``k + 8`` time bound.
            assert self.pending is not None
            pool_max = max(
                self.rho_winner or 0,
                self.pending[1],
                max((r for _p, r in self.queue), default=0),
            )
            if rank <= pool_max:
                ctx.send(port, (LOSE,))
            else:
                self.queue.append((port, rank))
            return
        if self.rho_winner is None:
            self.rho_winner = rank
            self.winner_port = port
            ctx.send(port, (WIN,))
            return
        if rank <= self.rho_winner:
            ctx.send(port, (LOSE,))
            return
        # rank beats the stored winner: consult it.
        if self.winner_port is None:
            # The stored winner is me (I am a candidate holding my own
            # rank): the consultation is local.
            if self.leader:
                ctx.send(port, (LOSE,))
            else:
                self._drop_out(ctx)
                self.rho_winner = rank
                self.winner_port = port
                ctx.send(port, (WIN,))
            return
        self.busy = True
        self.pending = (port, rank)
        ctx.send(self.winner_port, (CONFIRM,))

    def _handle_confirm_reply(self, ctx: AsyncContext, winner_is_leader: bool) -> None:
        assert self.pending is not None, "confirm_reply without pending compete"
        pool = [self.pending]
        pool.extend(self.queue)
        self.pending = None
        self.queue.clear()
        self.busy = False
        if winner_is_leader:
            # The stored winner already became leader: everyone pending
            # loses and the stored winner stays.
            for port, _rank in pool:
                ctx.send(port, (LOSE,))
            return
        # The old winner dropped out; the best pooled rank is the new
        # winner (this is the "unless v meanwhile received a request from
        # some z > u" clause of the paper), everyone else loses.
        best_port, best_rank = max(pool, key=lambda entry: entry[1])
        self.rho_winner = best_rank
        self.winner_port = best_port
        for port, _rank in pool:
            if port != best_port:
                ctx.send(port, (LOSE,))
        ctx.send(best_port, (WIN,))
