"""The improved deterministic tradeoff algorithm (Theorem 3.10).

Setting: synchronous clique, simultaneous wake-up, unique IDs.

For a parameter ``k ≥ 3`` the algorithm runs ``k - 2`` two-round
*iterations* followed by a single broadcast round — ``ℓ = 2k - 3`` rounds
in total — and sends ``O(ℓ · n^(1 + 2/(ℓ+1)))`` messages:

* In round 1 of iteration ``i`` every *survivor* (initially: everyone)
  sends its ID to ``⌈n^(i/(k-1))⌉`` other nodes, its *referees*.
* In round 2 each referee responds only to the highest ID it received
  this iteration and discards the rest.
* A node stays a survivor for iteration ``i + 1`` iff **every** one of
  its referees responded.
* After iteration ``k - 2``, the remaining survivors broadcast their IDs
  to everyone; a survivor terminates as leader iff its own ID exceeds all
  IDs it received, and every other node adopts the maximum received ID as
  the leader (explicit election).

Why it works (paper, §3.3): a referee responds to at most one survivor
per iteration, and a surviving survivor needs all ``m_i`` of its referees,
so at most ``n / m_i`` survivors survive iteration ``i``; the node with
the globally maximal ID always survives.  Message count per iteration is
``(survivors entering i) · m_i ≤ n^(1 - (i-1)/(k-1)) · n^(i/(k-1)) =
n^(1 + 1/(k-1))`` plus at most as many responses.

The round at which each event happens is fixed and globally known
(simultaneous wake-up), so nodes switch roles purely on the round number:

====================  ==========================================
round ``2i - 1``      survivors send ``compete`` (``i ≤ k-2``);
                      survivors also tally iteration ``i-1``'s
                      responses at the start of this round
round ``2i``          referees answer the max compete
round ``2k - 3``      survivors broadcast ``final``
round ``2k - 2``      everyone decides (no messages)
====================  ==========================================
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.mathutil import ceil_pow_frac
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["ImprovedTradeoffElection"]

COMPETE = "compete"
RESPONSE = "response"
FINAL = "final"


class ImprovedTradeoffElection(SyncAlgorithm):
    """Theorem 3.10: ``ℓ``-round, ``O(ℓ·n^(1+2/(ℓ+1)))``-message election.

    Parameters
    ----------
    ell:
        The round budget; any odd integer ``≥ 3``.  Internally
        ``k = (ell + 3) / 2`` so that ``ell = 2k - 3``.
    """

    def __init__(self, ell: int = 3) -> None:
        if ell < 3 or ell % 2 == 0:
            raise ValueError("Theorem 3.10 requires an odd round budget ell >= 3")
        self.ell = ell
        self.k = (ell + 3) // 2
        self.survivor = True
        self.awaiting = 0
        self._referee_count_cache: List[int] = []

    # ------------------------------------------------------------------ #
    # parameter schedule

    def referee_count(self, n: int, iteration: int) -> int:
        """``m_i = min(⌈n^(i/(k-1))⌉, n - 1)`` referees in iteration ``i``."""
        if not self._referee_count_cache:
            self._referee_count_cache = [
                min(ceil_pow_frac(n, i, self.k - 1), n - 1)
                for i in range(1, self.k - 1)
            ]
        return self._referee_count_cache[iteration - 1]

    # ------------------------------------------------------------------ #
    # protocol

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        r = ctx.round
        k = self.k
        final_round = 2 * k - 3
        if r % 2 == 1 and r <= final_round:
            # Start of iteration (i = (r+1)/2) or the final broadcast
            # round: first tally the previous iteration's responses.
            if r > 1 and self.survivor:
                responses = sum(1 for _port, payload in inbox if payload[0] == RESPONSE)
                if responses < self.awaiting:
                    self.survivor = False
            if r < final_round:
                if self.survivor:
                    i = (r + 1) // 2
                    m = self.referee_count(ctx.n, i)
                    ctx.send_many(range(m), (COMPETE, ctx.my_id))
                    self.awaiting = m
            else:
                if self.survivor:
                    ctx.broadcast((FINAL, ctx.my_id))
        elif r % 2 == 0 and r < final_round:
            # Referee round: respond to the single highest compete.
            best_port: Optional[int] = None
            best_id = -1
            for port, payload in inbox:
                if payload[0] == COMPETE and payload[1] > best_id:
                    best_id = payload[1]
                    best_port = port
            if best_port is not None:
                ctx.send(best_port, (RESPONSE,))
        elif r == final_round + 1:
            # Decision round (silent): the maximum broadcast ID leads.
            best = ctx.my_id if self.survivor else -1
            for _port, payload in inbox:
                if payload[0] == FINAL and payload[1] > best:
                    best = payload[1]
            if self.survivor and best == ctx.my_id:
                ctx.decide_leader()
            else:
                ctx.decide_follower(best if best >= 0 else None)
            ctx.halt()
