"""The 2-round Monte Carlo baseline of Kutten et al. [16] (reconstruction).

The paper contrasts its Las Vegas bound (Theorem 3.16) with the sublinear
Monte Carlo algorithm of Kutten, Pandurangan, Peleg, Robinson and Trehan
(*Sublinear bounds for randomized leader election*, TCS 2015): 2 rounds,
``O(√n · log^(3/2) n)`` messages, success with high probability,
*implicit* election, simultaneous wake-up.

Reconstruction (matching the stated complexity):

* Round 1 — every node independently becomes a *candidate* with
  probability ``c1 · ln n / n`` (so ``Θ(log n)`` candidates in
  expectation).  A candidate draws a uniform *rank* from ``[n^4]`` and
  sends ``⟨compete, rank⟩`` to ``m = ⌈c2 · √(n · ln n)⌉`` referees chosen
  uniformly without replacement — ``Θ(√n log^(3/2) n)`` messages total.
* Round 2 — every referee replies ``⟨win⟩`` to the unique maximum-rank
  compete it received (ties get no winner — safe) and ``⟨lose⟩`` to the
  rest.
* A candidate that received ``⟨win⟩`` from *all* its referees outputs
  LEADER; everyone else outputs NON_LEADER.

Why whp: with ``Θ(log n)`` candidates, any two candidates share a referee
whp (``m² = Ω(n log n)``, birthday bound), ranks are distinct whp, and a
shared referee grants ``win`` to at most one of them; the globally
maximum-rank candidate wins all its referees.  Failure modes (no
candidate, disjoint referee sets, rank collision) each have probability
``n^(-Ω(1))``.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Tuple

from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["Kutten16Election"]

COMPETE = "compete"
WIN = "win"
LOSE = "lose"


class Kutten16Election(SyncAlgorithm):
    """2-round Monte Carlo election of [16].

    Parameters
    ----------
    candidate_coeff:
        ``c1`` in the candidacy probability ``min(1, c1 · ln n / n)``.
    referee_coeff:
        ``c2`` in the referee count ``⌈c2 · √(n · ln n)⌉`` (capped at
        ``n - 1``).
    """

    def __init__(self, candidate_coeff: float = 2.0, referee_coeff: float = 2.0) -> None:
        if candidate_coeff <= 0 or referee_coeff <= 0:
            raise ValueError("coefficients must be positive")
        self.candidate_coeff = candidate_coeff
        self.referee_coeff = referee_coeff
        self.candidate = False
        self.rank: Optional[int] = None
        self.awaiting = 0
        self.wins = 0

    def candidate_probability(self, n: int) -> float:
        if n < 2:
            return 1.0
        return min(1.0, self.candidate_coeff * math.log(n) / n)

    def referee_count(self, n: int) -> int:
        if n < 2:
            return 0
        return min(n - 1, math.ceil(self.referee_coeff * math.sqrt(n * math.log(n))))

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        n = ctx.n
        if ctx.round == 1:
            if n == 1:
                ctx.decide_leader()
                ctx.halt()
                return
            if ctx.rng.random() < self.candidate_probability(n):
                self.candidate = True
                self.rank = ctx.rng.randrange(1, n**4 + 1)
                ports = ctx.sample_ports(self.referee_count(n))
                ctx.send_many(ports, (COMPETE, self.rank))
                self.awaiting = len(ports)
            else:
                ctx.decide_follower()
        elif ctx.round == 2:
            # Referee: win to the unique maximum rank, lose to the rest.
            best_rank = -1
            best_unique = False
            for _port, payload in inbox:
                if payload[0] == COMPETE:
                    if payload[1] > best_rank:
                        best_rank = payload[1]
                        best_unique = True
                    elif payload[1] == best_rank:
                        best_unique = False
            for port, payload in inbox:
                if payload[0] == COMPETE:
                    is_winner = best_unique and payload[1] == best_rank
                    ctx.send(port, (WIN,) if is_winner else (LOSE,))
            if not self.candidate:
                ctx.halt()
        else:
            # Round 3 (silent): candidates tally their referees' verdicts.
            self.wins = sum(1 for _port, payload in inbox if payload[0] == WIN)
            if self.candidate and self.wins == self.awaiting and self.awaiting > 0:
                ctx.decide_leader()
            elif ctx.decision is None:
                ctx.decide_follower()
            ctx.halt()

    def message_bound(self, n: int) -> int:
        """Deterministic upper bound on messages actually sent in a run."""
        # Every compete triggers at most one response.
        return 2 * n * self.referee_count(n)
