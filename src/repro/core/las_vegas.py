"""Theorem 3.16 (upper bound): a 3-round Las Vegas election with O(n) messages.

The paper observes that the 2-round Monte Carlo algorithm of [16] turns
into a *Las Vegas* (never wrong) and *explicit* algorithm by adding an
announcement round: the winner announces itself in round 3, and every node
that cannot certify "exactly one leader" restarts the algorithm.  The
announcement costs ``Θ(n)`` messages, which Theorem 3.16 shows is optimal
for Las Vegas algorithms (``Ω(n)`` in expectation).

Phase structure (phase ``p`` occupies rounds ``3p+1 .. 3p+3``; all nodes
share the round counter — simultaneous wake-up):

* round ``3p+1`` — *verify/compete*: each node first inspects the
  announcements delivered from round ``3p`` of the previous phase:

  - exactly one announcement, not mine → decide NON_LEADER (explicit,
    with the leader's ID) and halt;
  - I announced and heard no other announcement → decide LEADER, halt;
  - anything else (zero announcements, or several) → *restart*: flip a
    fresh candidacy coin (probability ``c1·ln n/n``), candidates draw a
    rank from ``[n^4]`` and send ``⟨compete, rank⟩`` to
    ``⌈c2·√(n·ln n)⌉`` random referees.

* round ``3p+2`` — referees grant ``⟨win⟩`` to the unique maximum rank,
  ``⟨lose⟩`` to the rest.

* round ``3p+3`` — a candidate whose referees all granted ``win``
  broadcasts ``⟨announce, id⟩``.

Correctness is unconditional: every node sees the same multiset of
announcements per phase (announcements are broadcasts), so either all
nodes certify the same unique leader, or all nodes restart — the
algorithm can never terminate with zero or two leaders.  Each phase
succeeds with probability ``1 - n^(-Ω(1))``, so both the number of phases
and the expected message complexity ``O(n)`` hold with high probability
(the first phase already sends only ``O(√n log^(3/2) n + n)`` messages).

The constructor's ``candidate_prob_fn`` hook exists for failure-injection
tests (force a phase with zero candidates and observe the restart).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Tuple

from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["LasVegasElection"]

COMPETE = "compete"
WIN = "win"
LOSE = "lose"
ANNOUNCE = "announce"


class LasVegasElection(SyncAlgorithm):
    """Las Vegas 3-round (per phase) explicit leader election (Thm 3.16).

    Parameters
    ----------
    candidate_coeff, referee_coeff:
        As in :class:`repro.core.kutten16.Kutten16Election`.
    candidate_prob_fn:
        Optional override ``(n, phase) -> probability`` used by tests to
        inject failing phases; default is ``min(1, c1·ln n/n)`` for every
        phase.
    """

    def __init__(
        self,
        candidate_coeff: float = 2.0,
        referee_coeff: float = 2.0,
        candidate_prob_fn: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        if candidate_coeff <= 0 or referee_coeff <= 0:
            raise ValueError("coefficients must be positive")
        self.candidate_coeff = candidate_coeff
        self.referee_coeff = referee_coeff
        self.candidate_prob_fn = candidate_prob_fn
        self.candidate = False
        self.announced = False
        self.rank = 0
        self.awaiting = 0
        self.phases_run = 0

    def candidate_probability(self, n: int, phase: int) -> float:
        if self.candidate_prob_fn is not None:
            return self.candidate_prob_fn(n, phase)
        if n < 2:
            return 1.0
        return min(1.0, self.candidate_coeff * math.log(n) / n)

    def referee_count(self, n: int) -> int:
        if n < 2:
            return 0
        return min(n - 1, math.ceil(self.referee_coeff * math.sqrt(n * math.log(n))))

    # ------------------------------------------------------------------ #

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        n = ctx.n
        if n == 1:
            ctx.decide_leader()
            ctx.halt()
            return
        step = (ctx.round - 1) % 3
        phase = (ctx.round - 1) // 3
        if step == 0:
            announcements = [p[1] for _port, p in inbox if p[0] == ANNOUNCE]
            if self.announced and not announcements:
                ctx.decide_leader()
                ctx.halt()
                return
            if not self.announced and len(announcements) == 1:
                ctx.decide_follower(announcements[0])
                ctx.halt()
                return
            # Restart (zero announcements while nobody won, or a collision
            # of several winners): run a fresh phase.
            self.announced = False
            self.candidate = False
            self.phases_run = phase + 1
            if ctx.rng.random() < self.candidate_probability(n, phase):
                self.candidate = True
                self.rank = ctx.rng.randrange(1, n**4 + 1)
                ports = ctx.sample_ports(self.referee_count(n))
                ctx.send_many(ports, (COMPETE, self.rank))
                self.awaiting = len(ports)
        elif step == 1:
            best_rank = -1
            best_unique = False
            for _port, payload in inbox:
                if payload[0] == COMPETE:
                    if payload[1] > best_rank:
                        best_rank = payload[1]
                        best_unique = True
                    elif payload[1] == best_rank:
                        best_unique = False
            for port, payload in inbox:
                if payload[0] == COMPETE:
                    is_winner = best_unique and payload[1] == best_rank
                    ctx.send(port, (WIN,) if is_winner else (LOSE,))
        else:
            if self.candidate:
                wins = sum(1 for _port, p in inbox if p[0] == WIN)
                if self.awaiting > 0 and wins == self.awaiting:
                    self.announced = True
                    ctx.broadcast((ANNOUNCE, ctx.my_id))
