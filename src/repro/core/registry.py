"""Name-indexed registry of the paper's algorithms.

Used by the experiment runner, the benchmark harness and the examples to
construct algorithms uniformly.  Each entry records which engine the
algorithm runs under and which wake-up regimes it supports, so harness
code can refuse meaningless combinations early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.adversarial_2round import AdversarialTwoRoundElection
from repro.core.afek_gafni import AfekGafniElection
from repro.core.async_afek_gafni import AsyncAfekGafniElection
from repro.core.async_tradeoff import AsyncTradeoffElection
from repro.core.improved_tradeoff import ImprovedTradeoffElection
from repro.core.kutten16 import Kutten16Election
from repro.core.las_vegas import LasVegasElection
from repro.core.small_id import SmallIdElection
from repro.adversary.quorum import QuorumReElectionElection
from repro.faults.monarchical import MonarchicalElection
from repro.faults.reelect import ReElectionElection

__all__ = ["AlgorithmSpec", "ALGORITHMS", "get_algorithm"]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata for one algorithm of the paper."""

    name: str
    factory: Callable[..., Any]
    engine: str  # "sync" | "async"
    deterministic: bool
    wakeup: Tuple[str, ...]  # supported regimes: "simultaneous", "adversarial"
    paper_ref: str
    messages_formula: str
    time_formula: str

    def make(self, **params: Any) -> Callable[[], Any]:
        """A zero-argument factory suitable for the engines."""
        return lambda: self.factory(**params)

    @property
    def has_fast(self) -> bool:
        """Whether a vectorized port exists (and numpy is importable).

        The fast registry lives in :mod:`repro.fastsync`, which needs the
        optional numpy dependency; without numpy every spec simply
        reports no fast twin instead of breaking the core registry.
        """
        try:
            from repro.fastsync import FAST_ALGORITHMS
        except ImportError:
            return False
        return self.name in FAST_ALGORITHMS

    @property
    def has_fast_faults(self) -> bool:
        """Whether the vectorized port runs full :class:`FaultPlan` folds.

        True only when a fast twin exists *and* declares
        ``supports_faults`` — the contract behind auto-routing faulted
        specs onto the vectorized engine (see
        :meth:`repro.sweep.RunSpec.resolved_engine`).
        """
        try:
            from repro.fastsync import FAST_ALGORITHMS
        except ImportError:
            return False
        port = FAST_ALGORITHMS.get(self.name)
        return port is not None and getattr(port, "supports_faults", False)

    @property
    def envelope(self) -> Optional[Any]:
        """The theory-bound conformance envelope, or None when no
        theorem statement covers this algorithm (absence of a bound is
        not an error — reference rows have no envelope to check)."""
        from repro.monitor.conformance import get_envelope

        return get_envelope(self.name)

    def make_fast(self, **params: Any) -> Callable[[], Any]:
        """A zero-argument factory for the ``engine="fast"`` port.

        Raises the guidance-carrying ``ImportError`` of
        :mod:`repro.fastsync` when numpy is missing, or ``KeyError`` when
        the algorithm has no vectorized twin.
        """
        from repro.fastsync import get_fast_algorithm

        factory = get_fast_algorithm(self.name)
        return lambda: factory(**params)


ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in [
        AlgorithmSpec(
            name="improved_tradeoff",
            factory=ImprovedTradeoffElection,
            engine="sync",
            deterministic=True,
            wakeup=("simultaneous",),
            paper_ref="Theorem 3.10",
            messages_formula="O(ell * n^(1 + 2/(ell+1)))",
            time_formula="ell (odd, >= 3)",
        ),
        AlgorithmSpec(
            name="afek_gafni",
            factory=AfekGafniElection,
            engine="sync",
            deterministic=True,
            wakeup=("simultaneous", "adversarial"),
            paper_ref="Afek-Gafni [1] (baseline)",
            messages_formula="O(ell * n^(1 + 2/ell))",
            time_formula="ell (+1 announcement round)",
        ),
        AlgorithmSpec(
            name="small_id",
            factory=SmallIdElection,
            engine="sync",
            deterministic=True,
            wakeup=("simultaneous",),
            paper_ref="Algorithm 1 / Theorem 3.15",
            messages_formula="<= n * d * g",
            time_formula="<= ceil(n/d)",
        ),
        AlgorithmSpec(
            name="kutten16",
            factory=Kutten16Election,
            engine="sync",
            deterministic=False,
            wakeup=("simultaneous",),
            paper_ref="Kutten et al. [16] (baseline)",
            messages_formula="O(sqrt(n) * log^(3/2) n) whp",
            time_formula="2",
        ),
        AlgorithmSpec(
            name="las_vegas",
            factory=LasVegasElection,
            engine="sync",
            deterministic=False,
            wakeup=("simultaneous",),
            paper_ref="Theorem 3.16",
            messages_formula="O(n) whp; Omega(n) necessary",
            time_formula="3 whp",
        ),
        AlgorithmSpec(
            name="adversarial_2round",
            factory=AdversarialTwoRoundElection,
            engine="sync",
            deterministic=False,
            wakeup=("adversarial",),
            paper_ref="Theorem 4.1",
            messages_formula="O(n^(3/2) log(1/eps)) expected",
            time_formula="2",
        ),
        AlgorithmSpec(
            name="async_tradeoff",
            factory=AsyncTradeoffElection,
            engine="async",
            deterministic=False,
            wakeup=("adversarial", "simultaneous"),
            paper_ref="Algorithm 2 / Theorem 5.1",
            messages_formula="O(n^(1 + 1/k)) whp",
            time_formula="k + 8 whp",
        ),
        AlgorithmSpec(
            name="async_afek_gafni",
            factory=AsyncAfekGafniElection,
            engine="async",
            deterministic=True,
            wakeup=("simultaneous",),
            paper_ref="Section 5.4 / Theorem 5.14",
            messages_formula="O(n log n)",
            time_formula="O(log n)",
        ),
        AlgorithmSpec(
            name="monarchical",
            factory=MonarchicalElection,
            engine="sync",
            deterministic=True,
            wakeup=("simultaneous",),
            paper_ref="faults: Algo 2.6/2.8 (monarchical, detector oracle)",
            messages_formula="n - 1 per reign (one coord broadcast)",
            time_formula="detector lag + stable_rounds",
        ),
        AlgorithmSpec(
            name="reelect",
            factory=ReElectionElection,
            engine="sync",
            deterministic=False,  # depends on the wrapped inner algorithm
            wakeup=("simultaneous", "adversarial"),
            paper_ref="faults: epoch re-election wrapper",
            messages_formula="inner per epoch + (commit_rounds+1)*n' coord",
            time_formula="inner + commit_rounds per epoch",
        ),
        AlgorithmSpec(
            name="quorum_reelect",
            factory=QuorumReElectionElection,
            engine="sync",
            deterministic=False,  # depends on the wrapped inner algorithm
            wakeup=("simultaneous", "adversarial"),
            paper_ref="adversary: quorum-safe re-election (f < n/2)",
            messages_formula="reelect + (n-1) coord fan-out + quorum acks",
            time_formula="reelect + ack round trip per commit",
        ),
    ]
}


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an algorithm spec; raises ``KeyError`` with suggestions."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
