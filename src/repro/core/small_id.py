"""Algorithm 1 / Theorem 3.15: deterministic election for small ID spaces.

Setting: synchronous clique, simultaneous wake-up, IDs drawn from the
*linear-size* universe ``{1, ..., n·g(n)}`` for an integer ``g(n) ≥ 1``.
This is the regime in which the Ω(n log n) lower bound of Theorem 3.11
provably fails — the theorem needs a large ID universe, and this
algorithm is the witness.

The ID range is cut into windows of width ``d · g(n)``; in round ``i``
exactly the nodes with IDs in window ``i`` broadcast their IDs, and the
first nonempty window decides the election: everyone picks the minimum ID
heard in that round (broadcasters include their own ID).  Because at most
``d · g(n)`` IDs fit in a window, at most ``d · g(n)`` nodes ever
broadcast, giving message complexity ``≤ n · d · g(n)`` and time
``≤ ⌈n/d⌉`` rounds — e.g. sublinear time with ``o(n log n)`` messages for
constant ``g`` and ``d = o(log n)``.

The parameter ``d ≤ n`` trades time for messages exactly as in the
theorem statement.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["SmallIdElection"]

BALLOT = "ballot"


class SmallIdElection(SyncAlgorithm):
    """Algorithm 1 of the paper.

    Parameters
    ----------
    d:
        Window parameter, ``1 ≤ d ≤ n``; time ``⌈n/d⌉`` rounds, messages
        ``≤ n·d·g``.
    g:
        The universe stretch factor: IDs must lie in ``{1, ..., n·g}``.
    """

    def __init__(self, d: int, g: int = 1) -> None:
        if d < 1:
            raise ValueError("need d >= 1")
        if g < 1:
            raise ValueError("need integer g >= 1")
        self.d = d
        self.g = g
        self.sent_round = 0  # round in which this node broadcast (0 = never)

    def my_window(self, my_id: int) -> int:
        """The round in which this node's ID window opens (1-based)."""
        width = self.d * self.g
        return (my_id + width - 1) // width

    def on_wake(self, ctx: SyncContext) -> None:
        if not 1 <= ctx.my_id <= ctx.n * self.g:
            raise ValueError(
                f"Algorithm 1 requires IDs in [1, n*g] = [1, {ctx.n * self.g}]; "
                f"got {ctx.my_id}"
            )
        if self.d > ctx.n:
            raise ValueError("need d <= n")

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        ballots = [payload[1] for _port, payload in inbox if payload[0] == BALLOT]
        if self.sent_round and ctx.round == self.sent_round + 1:
            # I broadcast last round; my own ID participates.
            winner = min(ballots + [ctx.my_id])
            if winner == ctx.my_id:
                ctx.decide_leader()
            else:
                ctx.decide_follower(winner)
            ctx.halt()
            return
        if ballots:
            ctx.decide_follower(min(ballots))
            ctx.halt()
            return
        if ctx.round == self.my_window(ctx.my_id):
            ctx.broadcast((BALLOT, ctx.my_id))
            self.sent_round = ctx.round
