"""Vectorized synchronous round engine for large-``n`` sweeps.

The object-model engine (:mod:`repro.sync`) instantiates one algorithm
object, one context and one inbox list per node, which tops out around
``n ≈ 10^3`` before sweeps take minutes.  This package re-implements the
synchronous clique as flat numpy arrays — ids, candidate flags and
per-round message batches — so the paper's tradeoff frontiers can be
measured at ``n ≥ 10^5`` (see ``benchmarks/bench_fastsync_scale.py``).

Every synchronous registry algorithm has a vectorized port (the Theorem
3.10 tradeoff family, the Afek–Gafni baseline, the Theorem 3.16 Las
Vegas sampler, the Theorem 3.15 small-ID windows, the Monte Carlo
baseline of [16] and the Theorem 4.1 adversarial wake-up election);
each is cross-validated against its object-model twin — same seed, same
port map, identical winner and message/round counts — in
``tests/test_fastsync_equivalence.py`` and the per-port twin suites.
One engine run can also execute a whole *batch* of seeds of the same
configuration (``FastSyncNetwork(n, seeds=[...])``), bit-exact to the
sequential single runs in exact mode.  See DESIGN.md ("Fast vectorized
engine" and "Batched fast engine") for the array layout and the
equivalence guarantees.

numpy is an *optional* dependency: the rest of the ``repro`` package
works without it, and importing :mod:`repro.fastsync` without numpy
raises this guidance instead of a bare ``ModuleNotFoundError``.
"""

try:
    import numpy  # noqa: F401
except ImportError as exc:  # pragma: no cover - exercised via sys.modules stub
    raise ImportError(
        "repro.fastsync needs numpy, which is not installed. The vectorized "
        "engine is an optional extra: install it with `pip install numpy` "
        "(or, from a checkout, `pip install -e '.[fast]'`). The kernels sit "
        "behind the repro.fastsync.xp array-backend seam — numpy is the "
        "default backend; cupy/torch are selectable via REPRO_ARRAY_BACKEND "
        "or repro.fastsync.xp.set_backend once installed. Every other repro "
        "subpackage works without numpy — use repro.sync / repro.asyncnet "
        "instead."
    ) from exc

from repro.fastsync.algorithm import VectorAlgorithm
from repro.fastsync.algorithms import (
    VectorAdversarial2RoundElection,
    VectorAfekGafniElection,
    VectorImprovedTradeoffElection,
    VectorKutten16Election,
    VectorLasVegasElection,
    VectorSmallIdElection,
)
from repro.fastsync.engine import ArrayPortMap, FastRunResult, FastSyncNetwork
from repro.fastsync.faults import Delivered, FastFaultRuntime, delivered_total
from repro.fastsync.registry import FAST_ALGORITHMS, get_fast_algorithm
from repro.fastsync.xp import available_backends, backend_name, set_backend, xp

__all__ = [
    "ArrayPortMap",
    "Delivered",
    "FastFaultRuntime",
    "FastRunResult",
    "FastSyncNetwork",
    "delivered_total",
    "VectorAlgorithm",
    "VectorAdversarial2RoundElection",
    "VectorAfekGafniElection",
    "VectorImprovedTradeoffElection",
    "VectorKutten16Election",
    "VectorLasVegasElection",
    "VectorSmallIdElection",
    "FAST_ALGORITHMS",
    "get_fast_algorithm",
    "available_backends",
    "backend_name",
    "set_backend",
    "xp",
]
