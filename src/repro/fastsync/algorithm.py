"""Protocol for whole-clique vectorized algorithms.

A :class:`VectorAlgorithm` is a port of a *protocol*, not of one node:
where a :class:`repro.sync.SyncAlgorithm` describes what a single node
does with its inbox, a vector algorithm describes what the entire clique
does per round, operating on index arrays.  The contract:

* call :meth:`FastSyncNetwork.tick` exactly once per synchronous round
  of the original schedule — including silent decision rounds — so
  ``rounds_executed`` and ``last_send_round`` match the object engine;
* account every message batch with :meth:`FastSyncNetwork.count_messages`
  under the same payload kind the object algorithm uses;
* draw all randomness through the engine's sampling primitives
  (:meth:`bernoulli`, :meth:`rank_draws`, :meth:`first_ports`,
  :meth:`sampled_targets`) so ``exact`` mode can replay the per-node
  ``random.Random`` streams of the object engine bit-for-bit;
* finish by calling :meth:`FastSyncNetwork.decide` with the leader
  node(s).

Batched execution (:meth:`run_batch`) follows the same contract against
the engine's lane-aware primitives (``*_lanes``): state lives in global
``lane * n + node`` index arrays, every message batch is accounted per
lane, ``tick(active)`` carries the mask of lanes still running, and each
lane finishes with :meth:`FastSyncNetwork.decide_lane`.

Ports assume the simultaneous wake-up regime (every node awake in round
1) unless they declare :attr:`supports_roots` and honor the engine's
``roots`` wake-up schedule (currently ``adversarial_2round``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.fastsync.engine import FastSyncNetwork

__all__ = ["VectorAlgorithm"]


class VectorAlgorithm:
    """One whole-clique synchronous protocol, vectorized."""

    #: Registry name of the object-model twin (for diagnostics).
    name: str = "?"

    #: Whether the port honors the engine's crash masks
    #: (:attr:`FastSyncNetwork.alive`).  Crash-aware ports must filter
    #: senders and referees through the mask every round; the engine
    #: refuses to run a crash schedule against a port that does not.
    supports_crashes: bool = False

    #: Whether the port implements :meth:`run_batch` (the batch axis).
    supports_batch: bool = False

    #: Whether the port honors an adversarial wake-up schedule
    #: (:attr:`FastSyncNetwork.roots`).  Ports without it assume every
    #: node wakes in round 1.
    supports_roots: bool = False

    #: Whether the port implements a FaultPlan fold — the per-receiver
    #: round-by-round path driven through the engine's
    #: :class:`~repro.fastsync.faults.FastFaultRuntime` (partitions,
    #: link faults, kill policies, tampering).  The engine refuses to
    #: attach ``faults=`` to a port that does not.
    supports_faults: bool = False

    def run(self, net: "FastSyncNetwork") -> None:
        """Execute the full round schedule on ``net`` (see module docs)."""
        raise NotImplementedError

    def run_batch(self, net: "FastSyncNetwork") -> None:
        """Execute every lane of a batched ``net`` (see module docs)."""
        raise NotImplementedError(f"{type(self).__name__} has no batched port")
