"""Vectorized ports of six registry algorithms.

Each port reproduces its object-model twin's round schedule, message
kinds and survivor logic on index arrays — see the twins' module
docstrings (:mod:`repro.core.improved_tradeoff`,
:mod:`repro.core.afek_gafni`, :mod:`repro.core.las_vegas`,
:mod:`repro.core.small_id`, :mod:`repro.core.kutten16`,
:mod:`repro.core.adversarial_2round`) for the protocol rationale; only
the vectorization is documented here.

Full-fan-out iterations (``m = n - 1``) are never materialized: when a
survivor contacts *every* peer the referee outcome is analytic — every
referee sees the globally maximal competing ID, so the survivor set and
response count follow in O(S) — and this is what keeps the final
broadcast rounds O(1) memory at ``n = 10^5``.  The analytic branches are
exercised by the small-``n`` cross-engine equivalence tests (``n = 2``
hits them on every iteration).

Every port implements both the single-run protocol (:meth:`run`) and
the batched one (:meth:`run_batch`): batch state lives in *global*
``lane * n + node`` index arrays, every survivor/candidate array is kept
sorted so :meth:`FastSyncNetwork.lane_segments` can slice it per lane,
and per-lane termination (``tick(active)``) lets decided lanes stop
paying tick cost — the Las Vegas port is the one whose lanes genuinely
finish in different rounds.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Optional, Tuple

from repro.fastsync.xp import xp as np

from repro.fastsync.algorithm import VectorAlgorithm
from repro.fastsync.faults import delivered_total
from repro.mathutil import ceil_pow_frac, ceil_sqrt

__all__ = [
    "VectorAdversarial2RoundElection",
    "VectorAfekGafniElection",
    "VectorImprovedTradeoffElection",
    "VectorKutten16Election",
    "VectorLasVegasElection",
    "VectorSmallIdElection",
]

#: Cap on temporary row elements per scatter/gather chunk (keeps peak
#: memory for an n = 10^5, m ≈ 300 iteration in the tens of megabytes).
_ROW_CHUNK = 8_000_000

#: Edge budget per batched lane group: a compete iteration materializes
#: at most this many destination entries at once (~128 MB of int32), so
#: a 64-lane n = 10^5 batch never holds the whole batch's edge matrix.
_GROUP_EDGES = 32_000_000


def _lane_groups(net, sorted_idx: np.ndarray, m: int):
    """Yield ``(row_start, row_stop)`` lane-aligned groups of ``sorted_idx``.

    Groups pack consecutive lanes while the group's edge count
    (``rows * m``) stays under :data:`_GROUP_EDGES`; a single lane always
    forms a group even when it exceeds the budget (its scatter passes
    sub-chunk by rows).
    """
    starts, stops = net.lane_segments(sorted_idx)
    batch = net.batch
    b0 = 0
    width = max(m, 1)
    while b0 < batch:
        b1 = b0 + 1
        while b1 < batch and (stops[b1] - starts[b0]) * width <= _GROUP_EDGES:
            b1 += 1
        yield int(starts[b0]), int(stops[b1 - 1])
        b0 = b1


def _compete_iteration(
    net, senders: np.ndarray, m: int, init: np.ndarray, compete_kind: str, response_kind: str
) -> Tuple[np.ndarray, int]:
    """One materialized compete/response iteration (rounds ``2i-1``/``2i``).

    Every node in ``senders`` contacts its first ``m`` ports; a referee
    responds to the highest competing ID that beats its ``init`` floor
    (``-1``, or its own ID for self-comparing referees à la Afek–Gafni);
    a sender survives iff all ``m`` of its referees responded to it.
    Returns ``(survivors, response_count)`` and accounts both message
    batches; the referee round's :meth:`tick` happens inside.

    Crash masks: competes are *sent* (and counted) regardless of the
    destination's fate — exactly like the object engine, where the
    send is accounted and the delivery dropped — but a referee that is
    dead in the referee round neither receives nor responds, so its
    senders lose the iteration for want of a response.
    """
    ids = net.ids
    dst = net.first_ports(senders, m)
    net.count_messages(dst.size, compete_kind)
    net.tick()
    crashy = net.has_crashes
    sid = ids[senders]
    best = init.copy()
    rows = len(senders)
    chunk = max(1, _ROW_CHUNK // max(m, 1))
    with net.profile("scatter"):
        for start in range(0, rows, chunk):
            stop = min(rows, start + chunk)
            flat = dst[start:stop].reshape(-1)
            rep = np.repeat(sid[start:stop], m)
            if crashy:
                delivered = net.alive[flat]
                flat = flat[delivered]
                rep = rep[delivered]
            np.maximum.at(best, flat, rep)
    responses = int(np.count_nonzero(best > init))
    net.count_messages(responses, response_kind)
    with net.profile("compaction"):
        ok = np.empty(rows, dtype=bool)
        for start in range(0, rows, chunk):
            stop = min(rows, start + chunk)
            ok[start:stop] = (best[dst[start:stop]] == sid[start:stop, None]).all(axis=1)
        return senders[ok], responses


def _compete_iteration_lanes(
    net, senders: np.ndarray, m: int, init: np.ndarray, compete_kind: str, response_kind: str
) -> np.ndarray:
    """Batched :func:`_compete_iteration` over sorted global sender indices.

    ``init`` is the ``(batch * n,)`` referee floor in *rank space*
    (``net.ids_rank_flat`` values, or ``-1``): max-compete logic runs on
    int32 ranks — order-isomorphic to the IDs — which halves the
    scatter/gather traffic of the hot round.  The survivor check prunes
    through column 0 first: only ~``rows/m`` senders win their first
    referee, so the full all-columns gather runs on a sliver of rows.
    """
    net.count_messages_lanes(net.rows_per_lane(senders) * m, compete_kind)
    net.tick()
    crashy = net.has_crashes
    sid_all = net.ids_rank_flat[senders]
    best = init.copy()
    rows = len(senders)
    chunk = max(1, _ROW_CHUNK // max(m, 1))
    alive_flat = net.alive_flat
    ok = np.empty(rows, dtype=bool)
    # Lanes are independent, so each lane group runs its sample-scatter-
    # check pipeline end to end and frees its edge matrix before the
    # next group starts — peak memory is one group, not the whole batch.
    for gs, ge in _lane_groups(net, senders, m):
        dst = net.first_ports_lanes(senders[gs:ge], m)
        with net.profile("scatter"):
            for start in range(0, ge - gs, chunk):
                stop = min(ge - gs, start + chunk)
                flat = dst[start:stop].reshape(-1)
                rep = np.repeat(sid_all[gs + start : gs + stop], m)
                if crashy:
                    delivered = alive_flat[flat]
                    flat = flat[delivered]
                    rep = rep[delivered]
                np.maximum.at(best, flat, rep)
        # Column-0 pruning (sound with crash masks too: a dead referee's
        # floor never equals a live sender's rank — referees are never
        # self): only ~rows/m senders win their first referee, so the
        # full all-columns gather runs on a sliver of rows.
        with net.profile("compaction"):
            sid = sid_all[gs:ge]
            group_ok = best[dst[:, 0]] == sid
            cand = np.nonzero(group_ok)[0]
            if len(cand) and m > 1:
                group_ok[cand] = (best[dst[cand]] == sid[cand, None]).all(axis=1)
            ok[gs:ge] = group_ok
    responded = (best > init).reshape(net.batch, net.n)
    net.count_messages_lanes(responded.sum(axis=1), response_kind)
    return senders[ok]


def _rank_referee_grants(
    alive: Optional[np.ndarray],
    size: int,
    flat: np.ndarray,
    rep: np.ndarray,
    crashy: bool,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Referee grants for rank competitions (``kutten16`` / ``las_vegas``).

    A referee grants ``win`` to the unique maximum rank among the
    competes *delivered* to it and ``lose`` to the rest.  Returns the
    per-compete ``is_win`` mask and (when crash-aware) the delivered
    mask — undelivered competes are neither won nor lost.
    """
    best = np.zeros(size, dtype=np.int64)
    if crashy:
        delivered = alive[flat]
        np.maximum.at(best, flat[delivered], rep[delivered])
        hits = delivered & (rep == best[flat])
    else:
        delivered = None
        np.maximum.at(best, flat, rep)
        hits = rep == best[flat]
    top_count = np.zeros(size, dtype=np.int64)
    np.add.at(top_count, flat[hits], 1)
    is_win = hits & (top_count[flat] == 1)
    return is_win, delivered


# --------------------------------------------------------------------- #
# FaultPlan fold helpers (single-lane, exact or scale mode)
#
# Under a FaultPlan the analytic shortcuts above are unsound: a dropped
# compete or a healed partition changes who responds to whom, so every
# faulted round materializes its send batch and pushes it through the
# engine's FastFaultRuntime — which burns the object engine's fault and
# adversary RNG streams in the object engine's global send order (sender
# ascending, port order within a sender).  The helpers below keep that
# ordering contract; everything delivered comes back as per-kind
# :class:`~repro.fastsync.faults.Delivered` batches in arrival order.


def _send_batch(net, kind, src, dst, fields=()):
    """Account one uniform-kind send batch and deliver it through the plan."""
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.size == 0:
        return {}
    net.count_messages(src.size, kind)
    runtime = net.fault_runtime
    runtime.observe_sends(net.round, src, kind)
    return runtime.deliver(net.round, kind, src, dst, fields)


def _send_mixed(net, kinds, src, dst, fields=()):
    """Like :func:`_send_batch` for interleaved per-edge kinds (win/lose).

    The per-edge ``kinds`` sequence preserves the object engine's
    interleaving: a referee answers its competes in arrival order, so a
    link rule watching only ``win`` must see the rule RNG consumed at
    exactly the win positions of the interleaved stream.
    """
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.size == 0:
        return {}
    for kind, count in Counter(kinds).items():
        net.count_messages(count, kind)
    runtime = net.fault_runtime
    runtime.observe_sends(net.round, src, kinds)
    return runtime.deliver(net.round, kinds, src, dst, fields)


def _first_max_pick(dst, val, floor):
    """Indices of each receiver's first-arrival maximum above its floor.

    Replicates the referee scan ``if payload[1] > best: keep`` over an
    arrival-ordered edge list: only values strictly above ``floor[dst]``
    count, and among copies tied at the receiver's maximum the earliest
    arrival wins (the object scan replaces only on strict improvement).
    Returns positions into ``dst``/``val``, sorted by receiver — which
    is exactly the object engine's response send order (referees step in
    node order, one response each).
    """
    keep = val > floor[dst]
    idx = np.nonzero(keep)[0]
    if idx.size == 0:
        return idx
    order = np.lexsort((idx, -val[idx], dst[idx]))
    sd = dst[idx[order]]
    first = np.ones(order.size, dtype=bool)
    first[1:] = sd[1:] != sd[:-1]
    return idx[order[first]]


def _rank_grants_per_copy(dst, val, size):
    """Per-copy ``win`` mask of the rank referees, tamper-tolerant.

    Matches the object referee exactly: the running best starts at -1
    (tampered ranks can go negative and must stay unelectable), and a
    receiver grants ``win`` only to a *unique* copy of its final
    maximum — a duplicated top rank ties with itself and loses.
    """
    best = np.full(size, -1, dtype=np.int64)
    if dst.size:
        np.maximum.at(best, dst, val)
    hits = (val > -1) & (val == best[dst])
    top = np.zeros(size, dtype=np.int64)
    np.add.at(top, dst[hits], 1)
    return hits & (top[dst] == 1)


class VectorImprovedTradeoffElection(VectorAlgorithm):
    """Vectorized Theorem 3.10 tradeoff election (twin: ``improved_tradeoff``).

    Crash-aware: under a :class:`~repro.fastsync.FastSyncNetwork` crash
    schedule, crashed survivors drop out at the start of the round their
    crash lands on, dead referees never respond (so their senders lose
    the iteration), and only nodes alive in the silent decision round
    decide — matching the object engine's crash-stop semantics bit for
    bit in ``exact`` mode (``tests/test_fastsync_crash.py``).  Crash
    runs take the materialized path even for full fan-out, so they cost
    ``O(n·m)`` memory where the analytic branch costs ``O(1)``.
    """

    name = "improved_tradeoff"
    supports_crashes = True
    supports_batch = True
    supports_faults = True

    COMPETE = "compete"
    RESPONSE = "response"
    FINAL = "final"

    def __init__(self, ell: int = 3) -> None:
        if ell < 3 or ell % 2 == 0:
            raise ValueError("Theorem 3.10 requires an odd round budget ell >= 3")
        self.ell = ell
        self.k = (ell + 3) // 2

    def referee_count(self, n: int, iteration: int) -> int:
        """``m_i = min(⌈n^(i/(k-1))⌉, n - 1)`` — same schedule as the twin."""
        return min(ceil_pow_frac(n, iteration, self.k - 1), n - 1)

    def run(self, net) -> None:
        if net.has_faults:
            self._run_faulted(net)
            return
        n, ids = net.n, net.ids
        crashy = net.has_crashes
        survivors = np.arange(n, dtype=np.int64)
        for i in range(1, self.k - 1):
            m = self.referee_count(n, i)
            net.tick()  # round 2i-1: competes (prior tally already applied)
            if crashy:
                survivors = survivors[net.alive[survivors]]
            if m == 0:  # n == 1: the lone node competes at nobody
                net.tick()
                continue
            if m == n - 1 and not crashy:
                s_count = len(survivors)
                net.count_messages(s_count * m, self.COMPETE)
                net.tick()
                # Full fan-out, floor -1: every contacted referee responds.
                # With >= 2 survivors every node gets a compete (n responses)
                # and only the max-ID survivor keeps all its referees —
                # except at n == 2, where each node referees only for the
                # other, so both survive (the final broadcast disambiguates).
                if s_count == 1:
                    net.count_messages(n - 1, self.RESPONSE)
                elif s_count >= 2:
                    net.count_messages(n, self.RESPONSE)
                    if n > 2:
                        survivors = survivors[[int(np.argmax(ids[survivors]))]]
                continue
            init = np.full(n, -1, dtype=np.int64)
            survivors, _ = _compete_iteration(
                net, survivors, m, init, self.COMPETE, self.RESPONSE
            )
        net.tick()  # round 2k-3: surviving IDs are broadcast
        if crashy:
            survivors = survivors[net.alive[survivors]]
        net.count_messages(len(survivors) * (n - 1), self.FINAL)
        net.tick()  # round 2k-2: silent decision round
        if crashy:
            # Only nodes alive in the decision round decide; the winner
            # must both have broadcast and still be alive to lead.
            decided = int(net.alive.sum())
            if len(survivors):
                winner = int(survivors[int(np.argmax(ids[survivors]))])
                leaders = [winner] if net.alive[winner] else []
            else:
                leaders = []
            net.decide(leaders, decided_count=decided)
            return
        winner = int(survivors[int(np.argmax(ids[survivors]))])
        net.decide([winner])

    def _run_faulted(self, net) -> None:
        """The per-receiver fold under a FaultPlan (exact twin semantics).

        Dropped or blocked responses starve their survivor; duplicated
        responses over-count and keep it (``>= awaiting``, like the
        twin's ``< awaiting`` demotion); tampered compete IDs enter the
        referee's first-max scan as delivered, so a forged ID can steal
        a response.  Outputs follow the twin's explicit election: the
        winner's broadcast ID, per receiver, or ``None`` where every
        broadcast was lost.
        """
        n, ids = net.n, net.ids
        survivor = np.ones(n, dtype=bool)
        awaiting = np.zeros(n, dtype=np.int64)
        resp = None  # RESPONSE batch in flight into the next odd round
        for i in range(1, self.k - 1):
            m = self.referee_count(n, i)
            net.tick()  # round 2i-1: tally iteration i-1, then compete
            alive = net.alive
            count = np.zeros(n, dtype=np.int64)
            if resp is not None:
                ok = alive[resp.dst]
                np.add.at(count, resp.dst[ok], 1)
            # A fully starved survivor (every response dropped or dead)
            # demotes too: the tally runs even with nothing in flight.
            survivor &= count >= awaiting
            resp = None
            senders = np.nonzero(alive & survivor)[0]
            batch = {}
            if senders.size and m > 0:
                dst = net.first_ports(senders, m)
                batch = _send_batch(
                    net,
                    self.COMPETE,
                    np.repeat(senders, m),
                    dst.reshape(-1),
                    (np.repeat(ids[senders], m),),
                )
                awaiting[senders] = m
            net.tick()  # round 2i: referees answer their first-arrival max
            alive = net.alive
            resp = None
            comp = batch.get(self.COMPETE)
            if comp is not None:
                ok = alive[comp.dst]
                cdst, csrc = comp.dst[ok], comp.src[ok]
                cval = comp.fields[0][ok]
                floor = np.full(n, -1, dtype=np.int64)
                pick = _first_max_pick(cdst, cval, floor)
                resp = _send_batch(net, self.RESPONSE, cdst[pick], csrc[pick]).get(
                    self.RESPONSE
                )
        net.tick()  # round 2k-3: tally the last iteration, broadcast final
        alive = net.alive
        count = np.zeros(n, dtype=np.int64)
        if resp is not None:
            ok = alive[resp.dst]
            np.add.at(count, resp.dst[ok], 1)
        survivor &= count >= awaiting
        senders = np.nonzero(alive & survivor)[0]
        batch = {}
        if senders.size and n > 1:
            dst = net.first_ports(senders, n - 1)
            batch = _send_batch(
                net,
                self.FINAL,
                np.repeat(senders, n - 1),
                dst.reshape(-1),
                (np.repeat(ids[senders], n - 1),),
            )
        net.tick()  # round 2k-2: silent decision round
        alive = net.alive
        best = np.where(survivor, ids, np.int64(-1))
        fin = batch.get(self.FINAL)
        if fin is not None:
            ok = alive[fin.dst]
            np.maximum.at(best, fin.dst[ok], fin.fields[0][ok])
        leader_mask = alive & survivor & (best == ids)
        outputs: list = [None] * n
        for u in np.nonzero(alive)[0]:
            b = int(best[u])
            outputs[int(u)] = b if b >= 0 else None
        net.decide(
            np.nonzero(leader_mask)[0].tolist(),
            decided_count=int(alive.sum()),
            outputs=outputs,
        )

    def run_batch(self, net) -> None:
        n, ids_flat = net.n, net.ids_flat
        batch = net.batch
        crashy = net.has_crashes
        survivors = np.arange(batch * n, dtype=np.int64)
        for i in range(1, self.k - 1):
            m = self.referee_count(n, i)
            net.tick()
            if crashy:
                survivors = survivors[net.alive_flat[survivors]]
            if m == 0:
                net.tick()
                continue
            if m == n - 1 and not crashy:
                net.count_messages_lanes(net.rows_per_lane(survivors) * m, self.COMPETE)
                net.tick()
                starts, stops = net.lane_segments(survivors)
                responses = np.zeros(batch, dtype=np.int64)
                keep = []
                for b in range(batch):
                    seg = survivors[starts[b] : stops[b]]
                    if len(seg) == 1:
                        responses[b] = n - 1
                        keep.append(seg)
                    elif len(seg) >= 2:
                        responses[b] = n
                        if n > 2:
                            keep.append(seg[[int(np.argmax(ids_flat[seg]))]])
                        else:
                            keep.append(seg)
                net.count_messages_lanes(responses, self.RESPONSE)
                survivors = np.concatenate(keep) if keep else survivors[:0]
                continue
            init = np.full(batch * n, -1, dtype=np.int32)
            survivors = _compete_iteration_lanes(
                net, survivors, m, init, self.COMPETE, self.RESPONSE
            )
        net.tick()  # round 2k-3: surviving IDs are broadcast
        if crashy:
            survivors = survivors[net.alive_flat[survivors]]
        net.count_messages_lanes(net.rows_per_lane(survivors) * (n - 1), self.FINAL)
        net.tick()  # round 2k-2: silent decision round
        starts, stops = net.lane_segments(survivors)
        for b in range(batch):
            seg = survivors[starts[b] : stops[b]] - b * n
            if crashy:
                decided = int(net.alive[b].sum())
                if len(seg):
                    winner = int(seg[int(np.argmax(net.ids[seg]))])
                    leaders = [winner] if net.alive[b, winner] else []
                else:
                    leaders = []
                net.decide_lane(b, leaders, decided_count=decided)
            else:
                winner = int(seg[int(np.argmax(net.ids[seg]))])
                net.decide_lane(b, [winner])


class VectorAfekGafniElection(VectorAlgorithm):
    """Vectorized Afek–Gafni reconstruction (twin: ``afek_gafni``).

    Simultaneous wake-up only: at scale every node starts as a candidate,
    which is the head-to-head configuration the benchmarks sweep.

    Crash-aware, with one faithful sharp edge: the reconstruction's
    final iteration contacts *every* peer, so any crash that lands
    before the last referee round starves every candidate of a response
    and the protocol stalls — on both engines, which raise
    ``SimulationLimitExceeded`` in lockstep.  Crashes at or after the
    announcement round behave gracefully (dead followers simply never
    decide).
    """

    name = "afek_gafni"
    supports_crashes = True
    supports_batch = True
    supports_faults = True

    COMPETE = "compete"
    RESPONSE = "response"
    ELECTED = "elected"

    def __init__(self, ell: int = 4) -> None:
        if ell < 2:
            raise ValueError("Afek-Gafni requires ell >= 2")
        self.ell = ell
        self.iterations = max(1, ell // 2)

    def referee_count(self, n: int, iteration: int) -> int:
        return min(ceil_pow_frac(n, iteration, self.iterations), n - 1)

    def run(self, net) -> None:
        if net.has_faults:
            self._run_faulted(net)
            return
        n, ids = net.n, net.ids
        crashy = net.has_crashes
        candidates = np.arange(n, dtype=np.int64)
        for i in range(1, self.iterations + 1):
            m = self.referee_count(n, i)
            net.tick()  # round 2i-1: competes
            if crashy:
                candidates = candidates[net.alive[candidates]]
            if m == 0:  # n == 1
                net.tick()
                continue
            if m == n - 1 and not crashy:
                s_count = len(candidates)
                net.count_messages(s_count * m, self.COMPETE)
                net.tick()
                # Full fan-out with self-comparing referees: the max-ID
                # candidate beats every referee's floor and is the only
                # referee that never responds, so it alone survives and
                # exactly n - 1 responses flow.
                if s_count:
                    net.count_messages(n - 1, self.RESPONSE)
                    candidates = candidates[[int(np.argmax(ids[candidates]))]]
                continue
            init = np.full(n, -1, dtype=np.int64)
            init[candidates] = ids[candidates]
            candidates, _ = _compete_iteration(
                net, candidates, m, init, self.COMPETE, self.RESPONSE
            )
        net.tick()  # round 2K+1: the surviving candidate announces
        if crashy:
            candidates = candidates[net.alive[candidates]]
        if len(candidates) == 0:
            if not crashy:  # pragma: no cover - the max ID always survives
                raise RuntimeError("afek_gafni lost every candidate")
            # Every candidate crashed (or lost to a dead referee): nobody
            # announces and the object engine's referees idle until the
            # round limit — replicate the stall.
            while True:
                net.tick()
        net.count_messages(len(candidates) * (n - 1), self.ELECTED)
        if n >= 2:
            net.tick()  # round 2K+2: followers receive the announcement
        if crashy:
            # The winner decided LEADER at the announcement round — that
            # decision is permanent even if it crashes afterwards; the
            # followers decide only if alive when the broadcast lands.
            winner = int(candidates[int(np.argmax(ids[candidates]))])
            decided = int(net.alive.sum()) + (0 if net.alive[winner] else 1)
            net.decide([winner], decided_count=decided)
            return
        net.decide(candidates.tolist())

    def _run_faulted(self, net) -> None:
        """The FaultPlan fold: drops can leave several (or zero) winners.

        A candidate starved of any response drops out, so under message
        loss *multiple* candidates can reach the announcement round each
        believing it won — every one decides LEADER and broadcasts, and
        each follower adopts the first ``elected`` payload it receives,
        exactly like the twin.  Zero announcers (or followers cut off
        from every announcement) leave stragglers spinning until the
        round limit, on both engines.
        """
        n, ids = net.n, net.ids
        candidate = np.ones(n, dtype=bool)
        awaiting = np.zeros(n, dtype=np.int64)
        resp = None
        for i in range(1, self.iterations + 1):
            m = self.referee_count(n, i)
            net.tick()  # round 2i-1: tally iteration i-1, then compete
            alive = net.alive
            count = np.zeros(n, dtype=np.int64)
            if resp is not None:
                ok = alive[resp.dst]
                np.add.at(count, resp.dst[ok], 1)
            # Starved candidates (every response dead or dropped) demote
            # too, so the tally runs even with nothing in flight.
            candidate &= count >= awaiting
            resp = None
            senders = np.nonzero(alive & candidate)[0]
            batch = {}
            if senders.size and m > 0:
                dst = net.first_ports(senders, m)
                batch = _send_batch(
                    net,
                    self.COMPETE,
                    np.repeat(senders, m),
                    dst.reshape(-1),
                    (np.repeat(ids[senders], m),),
                )
                awaiting[senders] = m
            net.tick()  # round 2i: self-comparing referees answer
            alive = net.alive
            resp = None
            comp = batch.get(self.COMPETE)
            if comp is not None:
                ok = alive[comp.dst]
                cdst, csrc = comp.dst[ok], comp.src[ok]
                cval = comp.fields[0][ok]
                # A referee that is itself a live candidate floors the
                # scan at its own ID (it implicitly competes at itself).
                floor = np.where(candidate, ids, np.int64(-1))
                pick = _first_max_pick(cdst, cval, floor)
                resp = _send_batch(net, self.RESPONSE, cdst[pick], csrc[pick]).get(
                    self.RESPONSE
                )
        net.tick()  # round 2K+1: surviving candidates announce
        alive = net.alive
        count = np.zeros(n, dtype=np.int64)
        if resp is not None:
            ok = alive[resp.dst]
            np.add.at(count, resp.dst[ok], 1)
        candidate &= count >= awaiting
        announcers = np.nonzero(alive & candidate)[0]
        decided = np.zeros(n, dtype=bool)
        halted = np.zeros(n, dtype=bool)
        outputs: list = [None] * n
        batch = {}
        if announcers.size:
            decided[announcers] = True
            halted[announcers] = True
            for u in announcers:
                outputs[int(u)] = int(ids[u])
            if n > 1:
                dst = net.first_ports(announcers, n - 1)
                batch = _send_batch(
                    net,
                    self.ELECTED,
                    np.repeat(announcers, n - 1),
                    dst.reshape(-1),
                    (np.repeat(ids[announcers], n - 1),),
                )
        leaders = announcers.tolist()
        inflight = delivered_total(batch)
        # Followers halt on their first elected payload; stragglers that
        # never get one keep the run alive until the round limit (the
        # twin's referees idle the same way).
        while bool((net.alive & ~halted).any()) or inflight:
            net.tick()
            alive = net.alive
            el = batch.get(self.ELECTED)
            if el is not None:
                ok = alive[el.dst] & ~halted[el.dst]
                edst, eval_ = el.dst[ok], el.fields[0][ok]
                order = np.argsort(edst, kind="stable")
                edst, eval_ = edst[order], eval_[order]
                first = np.ones(edst.size, dtype=bool)
                first[1:] = edst[1:] != edst[:-1]
                for d, v in zip(edst[first], eval_[first]):
                    outputs[int(d)] = int(v)
                decided[edst[first]] = True
                halted[edst[first]] = True
            batch = {}
            inflight = 0
        net.decide(leaders, decided_count=int(decided.sum()), outputs=outputs)

    def run_batch(self, net) -> None:
        n, ids_flat = net.n, net.ids_flat
        batch = net.batch
        crashy = net.has_crashes
        candidates = np.arange(batch * n, dtype=np.int64)
        for i in range(1, self.iterations + 1):
            m = self.referee_count(n, i)
            net.tick()
            if crashy:
                candidates = candidates[net.alive_flat[candidates]]
            if m == 0:
                net.tick()
                continue
            if m == n - 1 and not crashy:
                net.count_messages_lanes(net.rows_per_lane(candidates) * m, self.COMPETE)
                net.tick()
                starts, stops = net.lane_segments(candidates)
                responses = np.zeros(batch, dtype=np.int64)
                keep = []
                for b in range(batch):
                    seg = candidates[starts[b] : stops[b]]
                    if len(seg):
                        responses[b] = n - 1
                        keep.append(seg[[int(np.argmax(ids_flat[seg]))]])
                net.count_messages_lanes(responses, self.RESPONSE)
                candidates = np.concatenate(keep) if keep else candidates[:0]
                continue
            init = np.full(batch * n, -1, dtype=np.int32)
            init[candidates] = net.ids_rank_flat[candidates]
            candidates = _compete_iteration_lanes(
                net, candidates, m, init, self.COMPETE, self.RESPONSE
            )
        net.tick()  # round 2K+1: the surviving candidates announce
        if crashy:
            candidates = candidates[net.alive_flat[candidates]]
        counts = net.rows_per_lane(candidates)
        if (counts == 0).any():
            if not crashy:  # pragma: no cover - the max ID always survives
                raise RuntimeError("afek_gafni lost every candidate")
            # A lane with no announcer stalls; sequential runs of its
            # seed raise the same SimulationLimitExceeded.
            while True:
                net.tick()
        net.count_messages_lanes(counts * (n - 1), self.ELECTED)
        if n >= 2:
            net.tick()  # round 2K+2: followers receive the announcement
        starts, stops = net.lane_segments(candidates)
        for b in range(batch):
            seg = candidates[starts[b] : stops[b]] - b * n
            if crashy:
                winner = int(seg[int(np.argmax(net.ids[seg]))])
                decided = int(net.alive[b].sum()) + (0 if net.alive[b, winner] else 1)
                net.decide_lane(b, [winner], decided_count=decided)
            else:
                net.decide_lane(b, seg.tolist())


class VectorSmallIdElection(VectorAlgorithm):
    """Vectorized Algorithm 1 / Theorem 3.15 (twin: ``small_id``).

    The object twin's round structure is embarrassingly data-parallel:
    the ID range is cut into windows of width ``d·g``; rounds tick
    silently until the first window that contains an ID, whose members
    broadcast their ballots; everyone decides on the minimum ballot one
    round later.  The port alone is a one-liner over the id array —
    ``w = min((ids + d·g - 1) // (d·g))`` — which makes ``small_id`` the
    cheapest vectorized algorithm in the registry: zero messages until
    the deciding window, then one ``O(b·n)`` accounting step for the
    ``b ≤ d·g`` broadcasters.  Matches the twin bit for bit in exact
    mode: same rounds, same message counts, same winner
    (``tests/test_fastsync_small_id.py``).

    Crash-aware: a window whose members all died stays silent, so the
    opening round is the first window with a *live* member; the minimum
    live broadcaster leads only if it survives into the decision round.
    """

    name = "small_id"
    supports_crashes = True
    supports_batch = True
    supports_faults = True

    BALLOT = "ballot"

    def __init__(self, d: int, g: int = 1) -> None:
        if d < 1:
            raise ValueError("need d >= 1")
        if g < 1:
            raise ValueError("need integer g >= 1")
        self.d = d
        self.g = g

    def _windows(self, net) -> np.ndarray:
        n, ids = net.n, net.ids
        if self.d > n:
            raise ValueError("need d <= n")
        if int(ids.min()) < 1 or int(ids.max()) > n * self.g:
            raise ValueError(
                f"Algorithm 1 requires IDs in [1, n*g] = [1, {n * self.g}]; "
                f"got {int(ids.min() if ids.min() < 1 else ids.max())}"
            )
        width = self.d * self.g
        return (ids + width - 1) // width

    def _run_faulted(self, net) -> None:
        """FaultPlan fold: lost ballots re-open later windows.

        A node that hears no ballot (partitioned away, or its window's
        broadcasters all dropped) simply waits for its *own* window and
        broadcasts then — so under partitions each component elects its
        own minimum, and the fold runs window by window until every live
        node has decided and nothing is in flight, like the twin.
        """
        n, ids = net.n, net.ids
        windows = self._windows(net)
        big = np.iinfo(np.int64).max
        halted = np.zeros(n, dtype=bool)
        decided = np.zeros(n, dtype=bool)
        sent_round = np.zeros(n, dtype=np.int64)
        outputs: list = [None] * n
        leaders: list = []
        batch = {}
        while True:
            r = net.tick()
            alive = net.alive
            act = alive & ~halted
            bal = batch.get(self.BALLOT)
            min_bal = np.full(n, big, dtype=np.int64)
            has_bal = np.zeros(n, dtype=bool)
            if bal is not None:
                ok = act[bal.dst]
                np.minimum.at(min_bal, bal.dst[ok], bal.fields[0][ok])
                has_bal[bal.dst[ok]] = True
            # Branch precedence mirrors the twin's handler: a node that
            # broadcast last round decides (its own ID participates);
            # otherwise any ballot decides it; otherwise its window may
            # open this round.
            deciders = act & (sent_round > 0) & (sent_round + 1 == r)
            win_sent = np.minimum(min_bal, ids)
            new_lead = deciders & (win_sent == ids)
            leaders.extend(np.nonzero(new_lead)[0].tolist())
            for u in np.nonzero(deciders)[0]:
                outputs[int(u)] = int(win_sent[u])
            rec = act & ~deciders & has_bal
            for u in np.nonzero(rec)[0]:
                outputs[int(u)] = int(min_bal[u])
            decided |= deciders | rec
            halted |= deciders | rec
            bc = act & ~deciders & ~rec & (windows == r)
            batch = {}
            if bc.any():
                idxs = np.nonzero(bc)[0]
                if n > 1:
                    dst = net.first_ports(idxs, n - 1)
                    batch = _send_batch(
                        net,
                        self.BALLOT,
                        np.repeat(idxs, n - 1),
                        dst.reshape(-1),
                        (np.repeat(ids[idxs], n - 1),),
                    )
                sent_round[bc] = r
            if not (net.alive & ~halted).any() and delivered_total(batch) == 0:
                break
        net.decide(leaders, decided_count=int(decided.sum()), outputs=outputs)

    def run(self, net) -> None:
        if net.has_faults:
            self._run_faulted(net)
            return
        n, ids = net.n, net.ids
        windows = self._windows(net)
        if net.has_crashes:
            # The opening round is the first window with a live member;
            # every round ticks (crashes land inside tick()).
            while True:
                r = net.tick()
                broadcasters = np.nonzero((windows == r) & net.alive)[0]
                if len(broadcasters):
                    break
            net.count_messages(len(broadcasters) * (n - 1), self.BALLOT)
            net.tick()
            winner = int(broadcasters[int(np.argmin(ids[broadcasters]))])
            leaders = [winner] if net.alive[winner] else []
            net.decide(leaders, decided_count=int(net.alive.sum()))
            return
        opening = int(windows.min())
        # Rounds 1 .. opening-1 are silent; the window's members
        # broadcast in round ``opening`` and everyone decides in the
        # round after, exactly like the per-node twin.
        for _ in range(opening):
            net.tick()
        broadcasters = np.nonzero(windows == opening)[0]
        net.count_messages(len(broadcasters) * (n - 1), self.BALLOT)
        net.tick()
        winner = int(broadcasters[int(np.argmin(ids[broadcasters]))])
        net.decide([winner])

    def run_batch(self, net) -> None:
        n, ids = net.n, net.ids
        batch = net.batch
        windows = self._windows(net)
        # stage 0: scanning for the opening window; 1: broadcast sent,
        # deciding next round; 2: done.
        stage = np.zeros(batch, dtype=np.int64)
        broadcasters: list = [None] * batch
        while (stage < 2).any():
            active = stage < 2
            net.tick(active)
            counts = np.zeros(batch, dtype=np.int64)
            for b in np.nonzero(active)[0]:
                if stage[b] == 1:
                    seg = broadcasters[b]
                    winner = int(seg[int(np.argmin(ids[seg]))])
                    leaders = [winner] if net.alive[b, winner] else []
                    net.decide_lane(b, leaders, decided_count=int(net.alive[b].sum()))
                    stage[b] = 2
                    continue
                r = int(net.lane_round[b])
                seg = np.nonzero((windows == r) & net.alive[b])[0]
                if len(seg):
                    broadcasters[b] = seg
                    counts[b] = len(seg) * (n - 1)
                    stage[b] = 1
            net.count_messages_lanes(counts, self.BALLOT)


class VectorLasVegasElection(VectorAlgorithm):
    """Vectorized Theorem 3.16 Las Vegas election (twin: ``las_vegas``).

    Crash-aware: dead nodes flip no candidacy coins, dead referees grant
    nothing (so their candidates can never collect a full win set), a
    candidate must be alive in the broadcast round to announce, and the
    unique announcer leads only if it survives into the decision round.
    In batch mode lanes finish in different phases — decided lanes stop
    ticking and drawing while the stragglers keep restarting.
    """

    name = "las_vegas"
    supports_crashes = True
    supports_batch = True
    supports_faults = True

    COMPETE = "compete"
    WIN = "win"
    LOSE = "lose"
    ANNOUNCE = "announce"

    def __init__(
        self,
        candidate_coeff: float = 2.0,
        referee_coeff: float = 2.0,
        candidate_prob_fn: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        if candidate_coeff <= 0 or referee_coeff <= 0:
            raise ValueError("coefficients must be positive")
        self.candidate_coeff = candidate_coeff
        self.referee_coeff = referee_coeff
        self.candidate_prob_fn = candidate_prob_fn
        self.phases_run = 0

    def candidate_probability(self, n: int, phase: int) -> float:
        if self.candidate_prob_fn is not None:
            return self.candidate_prob_fn(n, phase)
        if n < 2:
            return 1.0
        return min(1.0, self.candidate_coeff * math.log(n) / n)

    def referee_count(self, n: int) -> int:
        if n < 2:
            return 0
        return min(n - 1, math.ceil(self.referee_coeff * math.sqrt(n * math.log(n))))

    def _run_faulted(self, net) -> None:
        """FaultPlan fold: per-receiver certification, phase by phase.

        The twin's safety argument leans on announcements being reliable
        broadcasts; under faults that breaks *per receiver* — a node
        whose single announcement copy was dropped restarts while the
        rest follow, and a duplicated copy fails the ``exactly one``
        check.  The fold therefore tracks decisions per node and keeps
        phasing until every live node decided and nothing is in flight.
        """
        n, ids = net.n, net.ids
        if n == 1:
            net.tick()
            net.decide([0], outputs=[int(ids[0])])
            return
        m = self.referee_count(n)
        halted = np.zeros(n, dtype=bool)
        decided = np.zeros(n, dtype=bool)
        announced = np.zeros(n, dtype=bool)
        cand_mask = np.zeros(n, dtype=bool)
        awaiting = np.zeros(n, dtype=np.int64)
        outputs: list = [None] * n
        leaders: list = []
        ann_batch = {}
        phase = 0
        while True:
            net.tick()  # round 3p+1: verify announcements / restart
            alive = net.alive
            act = alive & ~halted
            ann = ann_batch.get(self.ANNOUNCE)
            ann_count = np.zeros(n, dtype=np.int64)
            ann_val = np.zeros(n, dtype=np.int64)
            if ann is not None:
                ok = act[ann.dst]
                np.add.at(ann_count, ann.dst[ok], 1)
                ann_val[ann.dst[ok]] = ann.fields[0][ok]
            new_lead = act & announced & (ann_count == 0)
            new_follow = act & ~announced & (ann_count == 1)
            leaders.extend(np.nonzero(new_lead)[0].tolist())
            for u in np.nonzero(new_lead)[0]:
                outputs[int(u)] = int(ids[u])
            for u in np.nonzero(new_follow)[0]:
                outputs[int(u)] = int(ann_val[u])
            decided |= new_lead | new_follow
            halted |= new_lead | new_follow
            undecided = act & ~new_lead & ~new_follow
            if not undecided.any():
                break
            self.phases_run = phase + 1
            announced &= ~undecided
            prob = self.candidate_probability(n, phase)
            coin = net.bernoulli(prob)
            cand_mask = undecided & coin
            cand = np.nonzero(cand_mask)[0]
            comp_batch = {}
            if cand.size:
                ranks = net.rank_draws(cand, n**4)
                dst = net.sampled_targets(cand, m)
                comp_batch = _send_batch(
                    net,
                    self.COMPETE,
                    np.repeat(cand, m),
                    dst.reshape(-1),
                    (np.repeat(ranks, m),),
                )
                awaiting[cand] = m
            net.tick()  # round 3p+2: referees grant win/lose per copy
            alive = net.alive
            act = alive & ~halted
            comp = comp_batch.get(self.COMPETE)
            wl_batch = {}
            if comp is not None:
                ok = act[comp.dst]
                cdst, csrc = comp.dst[ok], comp.src[ok]
                cval = comp.fields[0][ok]
                order = np.argsort(cdst, kind="stable")
                cdst, csrc, cval = cdst[order], csrc[order], cval[order]
                is_win = _rank_grants_per_copy(cdst, cval, n)
                kinds = [self.WIN if w else self.LOSE for w in is_win]
                wl_batch = _send_mixed(net, kinds, cdst, csrc)
            if not (alive & ~halted).any() and delivered_total(wl_batch) == 0:
                break
            net.tick()  # round 3p+3: full-win candidates announce
            alive = net.alive
            act = alive & ~halted
            win = wl_batch.get(self.WIN)
            win_count = np.zeros(n, dtype=np.int64)
            if win is not None:
                ok = act[win.dst]
                np.add.at(win_count, win.dst[ok], 1)
            announcers = np.nonzero(
                act & cand_mask & (awaiting > 0) & (win_count == awaiting)
            )[0]
            announced[announcers] = True
            ann_batch = {}
            if announcers.size:
                dst = net.first_ports(announcers, n - 1)
                ann_batch = _send_batch(
                    net,
                    self.ANNOUNCE,
                    np.repeat(announcers, n - 1),
                    dst.reshape(-1),
                    (np.repeat(ids[announcers], n - 1),),
                )
            if not (alive & ~halted).any() and delivered_total(ann_batch) == 0:
                break
            phase += 1
        net.decide(leaders, decided_count=int(decided.sum()), outputs=outputs)

    def run(self, net) -> None:
        if net.has_faults:
            self._run_faulted(net)
            return
        n, ids = net.n, net.ids
        if n == 1:
            net.tick()
            net.decide([0])
            return
        crashy = net.has_crashes
        m = self.referee_count(n)
        announcers = np.empty(0, dtype=np.int64)
        phase = 0
        while True:
            net.tick()  # round 3p+1: verify previous announcements / compete
            if len(announcers) == 1:
                winner = int(announcers[0])
                if crashy:
                    leaders = [winner] if net.alive[winner] else []
                    net.decide(leaders, decided_count=int(net.alive.sum()))
                else:
                    net.decide([winner])
                return
            # Zero or several announcers: every node restarts the phase.
            self.phases_run = phase + 1
            prob = self.candidate_probability(n, phase)
            coin = net.bernoulli(prob)
            if crashy:
                coin &= net.alive
            cand = np.nonzero(coin)[0]
            ranks = net.rank_draws(cand, n**4)
            dst = net.sampled_targets(cand, m)
            net.count_messages(dst.size, self.COMPETE)
            net.tick()  # round 3p+2: referees grant win/lose per compete
            flat = dst.reshape(-1)
            rep = np.repeat(ranks, m)
            is_win, delivered = _rank_referee_grants(net.alive, n, flat, rep, crashy)
            wins = int(np.count_nonzero(is_win))
            considered = int(np.count_nonzero(delivered)) if crashy else flat.size
            net.count_messages(wins, self.WIN)
            net.count_messages(considered - wins, self.LOSE)
            net.tick()  # round 3p+3: all-win candidates broadcast
            ok = is_win.reshape(len(cand), m).all(axis=1) if len(cand) else np.empty(0, bool)
            announcers = cand[ok]
            if crashy:
                announcers = announcers[net.alive[announcers]]
            net.count_messages(len(announcers) * (n - 1), self.ANNOUNCE)
            phase += 1

    def run_batch(self, net) -> None:
        n = net.n
        batch = net.batch
        if n == 1:
            net.tick()
            for b in range(batch):
                net.decide_lane(b, [0])
            return
        crashy = net.has_crashes
        m = self.referee_count(n)
        announcers = [np.empty(0, dtype=np.int64) for _ in range(batch)]  # lane-local
        active = np.ones(batch, dtype=bool)
        phase = 0
        while active.any():
            net.tick(active)  # round 3p+1: verify previous announcements
            for b in np.nonzero(active)[0]:
                if len(announcers[b]) == 1:
                    winner = int(announcers[b][0])
                    if crashy:
                        leaders = [winner] if net.alive[b, winner] else []
                        net.decide_lane(b, leaders, decided_count=int(net.alive[b].sum()))
                    else:
                        net.decide_lane(b, [winner])
                    active[b] = False
            if not active.any():
                return
            act_idx = np.nonzero(active)[0]
            self.phases_run = phase + 1
            prob = self.candidate_probability(n, phase)
            coin = net.bernoulli_lanes(prob, lanes=act_idx)
            if crashy:
                coin &= net.alive
            cand = np.nonzero(coin.reshape(-1))[0]
            ranks = net.rank_draws_lanes(cand, n**4)
            dst = net.sampled_targets_lanes(cand, m)
            net.count_messages_lanes(net.rows_per_lane(cand) * m, self.COMPETE)
            net.tick(active)  # round 3p+2: referees grant win/lose
            flat = dst.reshape(-1)
            rep = np.repeat(ranks, m)
            is_win, delivered = _rank_referee_grants(
                net.alive_flat, batch * n, flat, rep, crashy
            )
            lanes_of = flat // n
            wins_lanes = np.bincount(lanes_of[is_win], minlength=batch)
            if crashy:
                considered = np.bincount(lanes_of[delivered], minlength=batch)
            else:
                considered = np.bincount(lanes_of, minlength=batch)
            net.count_messages_lanes(wins_lanes, self.WIN)
            net.count_messages_lanes(considered - wins_lanes, self.LOSE)
            net.tick(active)  # round 3p+3: all-win candidates broadcast
            ok = is_win.reshape(len(cand), m).all(axis=1) if len(cand) else np.empty(0, bool)
            ann = cand[ok]
            if crashy:
                ann = ann[net.alive_flat[ann]]
            net.count_messages_lanes(net.rows_per_lane(ann) * (n - 1), self.ANNOUNCE)
            starts, stops = net.lane_segments(ann)
            for b in act_idx:
                announcers[b] = ann[starts[b] : stops[b]] - b * n
            phase += 1


class VectorKutten16Election(VectorAlgorithm):
    """Vectorized 2-round Monte Carlo baseline (twin: ``kutten16``).

    Round 1: every node flips the ``c1·ln n/n`` candidacy coin;
    candidates draw a rank and contact ``⌈c2·√(n·ln n)⌉`` sampled
    referees.  Round 2: referees grant ``win`` to the unique maximum
    rank.  Round 3 (silent): candidates whose referees all granted
    ``win`` decide LEADER — zero or several leaders are possible, which
    is the Monte Carlo failure mode the twin measures.  With no
    candidates at all the run ends after round 2, like the twin.

    Crash-aware: dead nodes flip no coins, dead referees grant nothing,
    and a winning candidate must survive into round 3 to decide.
    """

    name = "kutten16"
    supports_crashes = True
    supports_batch = True
    supports_faults = True

    COMPETE = "compete"
    WIN = "win"
    LOSE = "lose"

    def __init__(self, candidate_coeff: float = 2.0, referee_coeff: float = 2.0) -> None:
        if candidate_coeff <= 0 or referee_coeff <= 0:
            raise ValueError("coefficients must be positive")
        self.candidate_coeff = candidate_coeff
        self.referee_coeff = referee_coeff

    def candidate_probability(self, n: int) -> float:
        if n < 2:
            return 1.0
        return min(1.0, self.candidate_coeff * math.log(n) / n)

    def referee_count(self, n: int) -> int:
        if n < 2:
            return 0
        return min(n - 1, math.ceil(self.referee_coeff * math.sqrt(n * math.log(n))))

    def _run_faulted(self, net) -> None:
        """FaultPlan fold: the Monte Carlo tally under lossy links.

        A dropped win (or a blocked compete) silently demotes its
        candidate; a *duplicated* win over-counts and demotes it too
        (the twin requires exactly ``awaiting`` wins).  Outputs are all
        ``None`` except the self-declared leaders — the twin's election
        is implicit.
        """
        n, ids = net.n, net.ids
        net.tick()  # round 1: candidacy coins + competes
        alive = net.alive
        if n == 1:
            net.decide([0], outputs=[int(ids[0])])
            return
        coin = net.bernoulli(self.candidate_probability(n))
        cand_mask = alive & coin
        alive1 = alive.copy()
        cand = np.nonzero(cand_mask)[0]
        m = self.referee_count(n)
        comp_batch = {}
        if cand.size:
            ranks = net.rank_draws(cand, n**4)
            dst = net.sampled_targets(cand, m)
            comp_batch = _send_batch(
                net,
                self.COMPETE,
                np.repeat(cand, m),
                dst.reshape(-1),
                (np.repeat(ranks, m),),
            )
        net.tick()  # round 2: referees grant win/lose; non-candidates halt
        alive = net.alive
        comp = comp_batch.get(self.COMPETE)
        wl_batch = {}
        if comp is not None:
            ok = alive[comp.dst]
            cdst, csrc = comp.dst[ok], comp.src[ok]
            cval = comp.fields[0][ok]
            order = np.argsort(cdst, kind="stable")
            cdst, csrc, cval = cdst[order], csrc[order], cval[order]
            is_win = _rank_grants_per_copy(cdst, cval, n)
            kinds = [self.WIN if w else self.LOSE for w in is_win]
            wl_batch = _send_mixed(net, kinds, cdst, csrc)
        if not (alive & cand_mask).any() and delivered_total(wl_batch) == 0:
            # No live candidate and nothing in flight: the run ends with
            # the silent referee round, like the twin.
            net.decide(
                [],
                decided_count=int((alive1 & ~coin).sum()),
                outputs=[None] * n,
            )
            return
        net.tick()  # round 3 (silent): candidates tally their verdicts
        alive = net.alive
        win = wl_batch.get(self.WIN)
        win_count = np.zeros(n, dtype=np.int64)
        if win is not None:
            ok = alive[win.dst]
            np.add.at(win_count, win.dst[ok], 1)
        act3 = alive & cand_mask
        lead = act3 & (win_count == m)
        outputs: list = [None] * n
        leaders = np.nonzero(lead)[0]
        for u in leaders:
            outputs[int(u)] = int(ids[u])
        net.decide(
            leaders.tolist(),
            decided_count=int((alive1 & ~coin).sum()) + int(act3.sum()),
            outputs=outputs,
        )

    def run(self, net) -> None:
        if net.has_faults:
            self._run_faulted(net)
            return
        n = net.n
        crashy = net.has_crashes
        net.tick()  # round 1: candidacy coins + competes
        if n == 1:
            net.decide([0])
            return
        coin = net.bernoulli(self.candidate_probability(n))
        if crashy:
            coin &= net.alive
        alive1 = net.alive.copy() if crashy else None
        cand = np.nonzero(coin)[0]
        m = self.referee_count(n)
        ranks = net.rank_draws(cand, n**4)
        dst = net.sampled_targets(cand, m)
        net.count_messages(dst.size, self.COMPETE)
        net.tick()  # round 2: referees grant win/lose; non-candidates halt
        if len(cand) == 0:
            # Nobody competed: every live node decided NON_LEADER in
            # round 1 and the run ends after the silent referee round.
            decided = int(alive1.sum()) if crashy else n
            net.decide([], decided_count=decided)
            return
        flat = dst.reshape(-1)
        rep = np.repeat(ranks, m)
        is_win, delivered = _rank_referee_grants(net.alive, n, flat, rep, crashy)
        wins = int(np.count_nonzero(is_win))
        considered = int(np.count_nonzero(delivered)) if crashy else flat.size
        net.count_messages(wins, self.WIN)
        net.count_messages(considered - wins, self.LOSE)
        net.tick()  # round 3 (silent): candidates tally their verdicts
        ok = is_win.reshape(len(cand), m).all(axis=1)
        winners = cand[ok]
        if crashy:
            winners = winners[net.alive[winners]]
            # Non-candidates decided (permanently) in round 1 while
            # alive; candidates decide in round 3 only if still alive.
            decided = int((alive1 & ~coin).sum()) + int(net.alive[cand].sum())
            net.decide(winners.tolist(), decided_count=decided)
            return
        net.decide(winners.tolist())

    def run_batch(self, net) -> None:
        n = net.n
        batch = net.batch
        crashy = net.has_crashes
        net.tick()  # round 1
        if n == 1:
            for b in range(batch):
                net.decide_lane(b, [0])
            return
        coin = net.bernoulli_lanes(self.candidate_probability(n))
        if crashy:
            coin &= net.alive
        alive1 = net.alive.copy() if crashy else None
        cand = np.nonzero(coin.reshape(-1))[0]
        m = self.referee_count(n)
        ranks = net.rank_draws_lanes(cand, n**4)
        dst = net.sampled_targets_lanes(cand, m)
        cand_lanes = net.rows_per_lane(cand)
        net.count_messages_lanes(cand_lanes * m, self.COMPETE)
        active = cand_lanes > 0
        net.tick()  # round 2: every lane runs its referee round
        for b in np.nonzero(~active)[0]:
            decided = int(alive1[b].sum()) if crashy else n
            net.decide_lane(b, [], decided_count=decided)
        if not active.any():
            return
        flat = dst.reshape(-1)
        rep = np.repeat(ranks, m)
        is_win, delivered = _rank_referee_grants(
            net.alive_flat, batch * n, flat, rep, crashy
        )
        lanes_of = flat // n
        wins_lanes = np.bincount(lanes_of[is_win], minlength=batch)
        if crashy:
            considered = np.bincount(lanes_of[delivered], minlength=batch)
        else:
            considered = np.bincount(lanes_of, minlength=batch)
        net.count_messages_lanes(wins_lanes, self.WIN)
        net.count_messages_lanes(considered - wins_lanes, self.LOSE)
        net.tick(active)  # round 3 (silent) for lanes with candidates
        ok = is_win.reshape(len(cand), m).all(axis=1)
        winners = cand[ok]
        if crashy:
            winners = winners[net.alive_flat[winners]]
        starts, stops = net.lane_segments(winners)
        c_starts, c_stops = net.lane_segments(cand)
        for b in np.nonzero(active)[0]:
            seg = winners[starts[b] : stops[b]] - b * n
            if crashy:
                lane_cand = cand[c_starts[b] : c_stops[b]] - b * n
                decided = int((alive1[b] & ~coin[b]).sum()) + int(
                    net.alive[b][lane_cand].sum()
                )
                net.decide_lane(b, seg.tolist(), decided_count=decided)
            else:
                net.decide_lane(b, seg.tolist())


class VectorAdversarial2RoundElection(VectorAlgorithm):
    """Vectorized Theorem 4.1 election (twin: ``adversarial_2round``).

    The only wake-up-aware port: the engine's ``roots`` schedule names
    the adversarially woken nodes (default: everyone).  Round 1: roots
    send wake-ups over ``⌈√n⌉`` sampled ports.  Round 2: every node
    that *received* a wake-up flips the ``log(1/ε)/⌈√n⌉`` candidacy
    coin (receipt-based reading — see the twin's module docstring);
    candidates broadcast their ranks.  Round 3: the unique maximum rank
    leads; rank collisions elect nobody; with zero candidates only the
    awake nodes decide (as followers) and the sleepers sleep on —
    the ε-probability failure the theorem prices in.
    """

    name = "adversarial_2round"
    supports_batch = True
    supports_roots = True
    supports_faults = True

    WAKE = "wake"
    RANK = "rank"

    def __init__(self, epsilon: float = 0.05) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("need 0 < epsilon < 1")
        self.epsilon = epsilon

    def candidate_probability(self, n: int) -> float:
        return min(1.0, math.log(1.0 / self.epsilon) / ceil_sqrt(n))

    def run(self, net) -> None:
        if net.has_faults:
            self._run_faulted(net)
            return
        n = net.n
        roots = net.roots if net.roots is not None else np.arange(n, dtype=np.int64)
        net.tick()  # round 1: roots send wake-ups
        if n == 1:
            net.decide([0])
            return
        m = min(ceil_sqrt(n), n - 1)
        dst = net.sampled_targets(roots, m)
        net.count_messages(dst.size, self.WAKE)
        net.tick()  # round 2: wake-up receivers flip candidacy coins
        eligible = np.zeros(n, dtype=bool)
        eligible[np.unique(dst.reshape(-1))] = True
        coin = net.bernoulli(self.candidate_probability(n))
        cand = np.nonzero(eligible & coin)[0]
        ranks = net.rank_draws(cand, n**4)
        net.count_messages(len(cand) * (n - 1), self.RANK)
        net.tick()  # round 3: every rank receiver decides
        if len(cand) == 0:
            is_root = np.zeros(n, dtype=bool)
            is_root[roots] = True
            awake = int((is_root | eligible).sum())
            net.decide([], decided_count=awake, awake_count=awake)
            return
        top = int(ranks.max())
        holders = cand[ranks == top]
        leaders = [int(holders[0])] if len(holders) == 1 else []
        net.decide(leaders, decided_count=n, awake_count=n)

    def _run_faulted(self, net) -> None:
        """Fault fold: the twin's wake-round state machine, per receiver.

        The closed-form shortcut of :meth:`run` assumes fault-free
        delivery (every sampled wake-up arrives, every rank broadcast
        reaches everyone); under a plan each node's wake round and each
        receiver's surviving rank multiset must be tracked explicitly.
        """
        n, ids = net.n, net.ids
        roots = net.roots if net.roots is not None else np.arange(n, dtype=np.int64)
        net.tick()  # round 1: alive roots wake and send wake-ups
        if n == 1:
            net.decide([0], outputs=[int(ids[0])])
            return
        alive = net.alive
        root_mask = np.zeros(n, dtype=bool)
        root_mask[roots] = True
        wake_round = np.zeros(n, dtype=np.int64)
        wake_round[root_mask & alive] = 1
        m = min(ceil_sqrt(n), n - 1)
        senders = np.nonzero(root_mask & alive)[0]
        wake_batch = {}
        if senders.size:
            dst = net.sampled_targets(senders, m)
            wake_batch = _send_batch(
                net, self.WAKE, np.repeat(senders, m), dst.reshape(-1)
            )
        if not (alive & (wake_round > 0)).any() and delivered_total(wake_batch) == 0:
            # Every root crashed before waking: round 1 ran empty.
            net.decide(
                [],
                decided_count=0,
                awake_count=int((wake_round > 0).sum()),
                outputs=[None] * n,
            )
            return
        net.tick()  # round 2: wake-up receivers flip candidacy coins
        alive = net.alive
        got = np.zeros(n, dtype=bool)
        for b in wake_batch.values():
            ok = alive[b.dst]
            got[b.dst[ok]] = True
        wake_round[got & (wake_round == 0)] = 2
        coin = net.bernoulli(self.candidate_probability(n))
        cand_mask = got & coin
        cand = np.nonzero(cand_mask)[0]
        rank = np.zeros(n, dtype=np.int64)
        rank_batch = {}
        if cand.size:
            rank[cand] = net.rank_draws(cand, n**4)
            dst = net.first_ports(cand, n - 1)
            rank_batch = _send_batch(
                net,
                self.RANK,
                np.repeat(cand, n - 1),
                dst.reshape(-1),
                (np.repeat(rank[cand], n - 1), np.repeat(ids[cand], n - 1)),
            )
        # Awake non-root non-candidates become followers now (without
        # halting — they stay up so in-flight broadcasts are not dropped).
        decided = got & ~coin & ~root_mask
        if not (alive & (wake_round > 0)).any() and delivered_total(rank_batch) == 0:
            net.decide(
                [],
                decided_count=int(decided.sum()),
                awake_count=int((wake_round > 0).sum()),
                outputs=[None] * n,
            )
            return
        net.tick()  # round 3: every awake node decides
        alive = net.alive
        got3 = np.zeros(n, dtype=bool)
        for b in rank_batch.values():  # any kind wakes, stale replays included
            ok = alive[b.dst]
            got3[b.dst[ok]] = True
        wake_round[got3 & (wake_round == 0)] = 3
        rk = rank_batch.get(self.RANK)
        has_rank = np.zeros(n, dtype=bool)
        imin = np.iinfo(np.int64).min
        best_rank = np.full(n, imin, dtype=np.int64)
        top_cnt = np.zeros(n, dtype=np.int64)
        best_sender = np.full(n, imin, dtype=np.int64)
        if rk is not None:
            ok = alive[rk.dst]
            rdst, rval, rsend = rk.dst[ok], rk.fields[0][ok], rk.fields[1][ok]
            has_rank[rdst] = True
            np.maximum.at(best_rank, rdst, rval)
            top = rval == best_rank[rdst]
            np.add.at(top_cnt, rdst[top], 1)
            # max(ranks) compares (rank, sender) tuples: the max sender
            # among maximum-rank entries wins (used only when unique).
            np.maximum.at(best_sender, rdst[top], rsend[top])
        deciders = alive & (wake_round > 0)
        newly = deciders & ~decided
        beaten = has_rank & (best_rank >= rank)
        lead_mask = newly & cand_mask & ~beaten
        followers = newly & ~lead_mask
        own_tie = cand_mask & (rank == best_rank)
        good = followers & has_rank & (top_cnt <= 1) & ~own_tie
        out_val = np.zeros(n, dtype=np.int64)
        out_val[good] = best_sender[good]
        out_val[lead_mask] = ids[lead_mask]
        has_out = good | lead_mask
        decided |= newly
        outputs = [int(out_val[u]) if has_out[u] else None for u in range(n)]
        net.decide(
            np.nonzero(lead_mask)[0].tolist(),
            decided_count=int(decided.sum()),
            awake_count=int((wake_round > 0).sum()),
            outputs=outputs,
        )

    def run_batch(self, net) -> None:
        n = net.n
        batch = net.batch
        roots = net.roots if net.roots is not None else np.arange(n, dtype=np.int64)
        net.tick()  # round 1
        if n == 1:
            for b in range(batch):
                net.decide_lane(b, [0])
            return
        m = min(ceil_sqrt(n), n - 1)
        roots_g = (np.arange(batch, dtype=np.int64)[:, None] * n + roots[None, :]).reshape(-1)
        eligible = np.zeros(batch * n, dtype=bool)
        for gs, ge in _lane_groups(net, roots_g, m):
            dst = net.sampled_targets_lanes(roots_g[gs:ge], m)
            eligible[dst.reshape(-1)] = True
        net.count_messages_lanes(np.full(batch, len(roots) * m, dtype=np.int64), self.WAKE)
        net.tick()  # round 2
        coin = net.bernoulli_lanes(self.candidate_probability(n))
        cand = np.nonzero(eligible & coin.reshape(-1))[0]
        ranks = net.rank_draws_lanes(cand, n**4)
        net.count_messages_lanes(net.rows_per_lane(cand) * (n - 1), self.RANK)
        net.tick()  # round 3
        is_root = np.zeros(n, dtype=bool)
        is_root[roots] = True
        eligible2 = eligible.reshape(batch, n)
        starts, stops = net.lane_segments(cand)
        for b in range(batch):
            seg = cand[starts[b] : stops[b]]
            if len(seg) == 0:
                awake = int((is_root | eligible2[b]).sum())
                net.decide_lane(b, [], decided_count=awake, awake_count=awake)
                continue
            r = ranks[starts[b] : stops[b]]
            top = int(r.max())
            holders = seg[r == top]
            leaders = [int(holders[0] - b * n)] if len(holders) == 1 else []
            net.decide_lane(b, leaders, decided_count=n, awake_count=n)
