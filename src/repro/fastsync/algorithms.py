"""Vectorized ports of four registry algorithms.

Each port reproduces its object-model twin's round schedule, message
kinds and survivor logic on index arrays — see the twins' module
docstrings (:mod:`repro.core.improved_tradeoff`,
:mod:`repro.core.afek_gafni`, :mod:`repro.core.las_vegas`,
:mod:`repro.core.small_id`) for the protocol rationale; only the
vectorization is documented here.

Full-fan-out iterations (``m = n - 1``) are never materialized: when a
survivor contacts *every* peer the referee outcome is analytic — every
referee sees the globally maximal competing ID, so the survivor set and
response count follow in O(S) — and this is what keeps the final
broadcast rounds O(1) memory at ``n = 10^5``.  The analytic branches are
exercised by the small-``n`` cross-engine equivalence tests (``n = 2``
hits them on every iteration).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from repro.fastsync.algorithm import VectorAlgorithm
from repro.mathutil import ceil_pow_frac

__all__ = [
    "VectorAfekGafniElection",
    "VectorImprovedTradeoffElection",
    "VectorLasVegasElection",
    "VectorSmallIdElection",
]

#: Cap on temporary row elements per scatter/gather chunk (keeps peak
#: memory for an n = 10^5, m ≈ 300 iteration in the tens of megabytes).
_ROW_CHUNK = 8_000_000


def _compete_iteration(
    net, senders: np.ndarray, m: int, init: np.ndarray, compete_kind: str, response_kind: str
) -> Tuple[np.ndarray, int]:
    """One materialized compete/response iteration (rounds ``2i-1``/``2i``).

    Every node in ``senders`` contacts its first ``m`` ports; a referee
    responds to the highest competing ID that beats its ``init`` floor
    (``-1``, or its own ID for self-comparing referees à la Afek–Gafni);
    a sender survives iff all ``m`` of its referees responded to it.
    Returns ``(survivors, response_count)`` and accounts both message
    batches; the referee round's :meth:`tick` happens inside.

    Crash masks: competes are *sent* (and counted) regardless of the
    destination's fate — exactly like the object engine, where the
    send is accounted and the delivery dropped — but a referee that is
    dead in the referee round neither receives nor responds, so its
    senders lose the iteration for want of a response.
    """
    ids = net.ids
    dst = net.first_ports(senders, m)
    net.count_messages(dst.size, compete_kind)
    net.tick()
    crashy = net.has_crashes
    sid = ids[senders]
    best = init.copy()
    rows = len(senders)
    chunk = max(1, _ROW_CHUNK // max(m, 1))
    for start in range(0, rows, chunk):
        stop = min(rows, start + chunk)
        flat = dst[start:stop].reshape(-1)
        rep = np.repeat(sid[start:stop], m)
        if crashy:
            delivered = net.alive[flat]
            flat = flat[delivered]
            rep = rep[delivered]
        np.maximum.at(best, flat, rep)
    responses = int(np.count_nonzero(best > init))
    net.count_messages(responses, response_kind)
    ok = np.empty(rows, dtype=bool)
    for start in range(0, rows, chunk):
        stop = min(rows, start + chunk)
        ok[start:stop] = (best[dst[start:stop]] == sid[start:stop, None]).all(axis=1)
    return senders[ok], responses


class VectorImprovedTradeoffElection(VectorAlgorithm):
    """Vectorized Theorem 3.10 tradeoff election (twin: ``improved_tradeoff``).

    The only crash-aware port so far: under a
    :class:`~repro.fastsync.FastSyncNetwork` crash schedule, crashed
    survivors drop out at the start of the round their crash lands on,
    dead referees never respond (so their senders lose the iteration),
    and only nodes alive in the silent decision round decide — matching
    the object engine's crash-stop semantics bit for bit in ``exact``
    mode (``tests/test_fastsync_crash.py``).  Crash runs take the
    materialized path even for full fan-out, so they cost ``O(n·m)``
    memory where the analytic branch costs ``O(1)``.
    """

    name = "improved_tradeoff"
    supports_crashes = True

    COMPETE = "compete"
    RESPONSE = "response"
    FINAL = "final"

    def __init__(self, ell: int = 3) -> None:
        if ell < 3 or ell % 2 == 0:
            raise ValueError("Theorem 3.10 requires an odd round budget ell >= 3")
        self.ell = ell
        self.k = (ell + 3) // 2

    def referee_count(self, n: int, iteration: int) -> int:
        """``m_i = min(⌈n^(i/(k-1))⌉, n - 1)`` — same schedule as the twin."""
        return min(ceil_pow_frac(n, iteration, self.k - 1), n - 1)

    def run(self, net) -> None:
        n, ids = net.n, net.ids
        crashy = net.has_crashes
        survivors = np.arange(n, dtype=np.int64)
        for i in range(1, self.k - 1):
            m = self.referee_count(n, i)
            net.tick()  # round 2i-1: competes (prior tally already applied)
            if crashy:
                survivors = survivors[net.alive[survivors]]
            if m == 0:  # n == 1: the lone node competes at nobody
                net.tick()
                continue
            if m == n - 1 and not crashy:
                s_count = len(survivors)
                net.count_messages(s_count * m, self.COMPETE)
                net.tick()
                # Full fan-out, floor -1: every contacted referee responds.
                # With >= 2 survivors every node gets a compete (n responses)
                # and only the max-ID survivor keeps all its referees —
                # except at n == 2, where each node referees only for the
                # other, so both survive (the final broadcast disambiguates).
                if s_count == 1:
                    net.count_messages(n - 1, self.RESPONSE)
                elif s_count >= 2:
                    net.count_messages(n, self.RESPONSE)
                    if n > 2:
                        survivors = survivors[[int(np.argmax(ids[survivors]))]]
                continue
            init = np.full(n, -1, dtype=np.int64)
            survivors, _ = _compete_iteration(
                net, survivors, m, init, self.COMPETE, self.RESPONSE
            )
        net.tick()  # round 2k-3: surviving IDs are broadcast
        if crashy:
            survivors = survivors[net.alive[survivors]]
        net.count_messages(len(survivors) * (n - 1), self.FINAL)
        net.tick()  # round 2k-2: silent decision round
        if crashy:
            # Only nodes alive in the decision round decide; the winner
            # must both have broadcast and still be alive to lead.
            decided = int(net.alive.sum())
            if len(survivors):
                winner = int(survivors[int(np.argmax(ids[survivors]))])
                leaders = [winner] if net.alive[winner] else []
            else:
                leaders = []
            net.decide(leaders, decided_count=decided)
            return
        winner = int(survivors[int(np.argmax(ids[survivors]))])
        net.decide([winner])


class VectorAfekGafniElection(VectorAlgorithm):
    """Vectorized Afek–Gafni reconstruction (twin: ``afek_gafni``).

    Simultaneous wake-up only: at scale every node starts as a candidate,
    which is the head-to-head configuration the benchmarks sweep.
    """

    name = "afek_gafni"

    COMPETE = "compete"
    RESPONSE = "response"
    ELECTED = "elected"

    def __init__(self, ell: int = 4) -> None:
        if ell < 2:
            raise ValueError("Afek-Gafni requires ell >= 2")
        self.ell = ell
        self.iterations = max(1, ell // 2)

    def referee_count(self, n: int, iteration: int) -> int:
        return min(ceil_pow_frac(n, iteration, self.iterations), n - 1)

    def run(self, net) -> None:
        n, ids = net.n, net.ids
        candidates = np.arange(n, dtype=np.int64)
        for i in range(1, self.iterations + 1):
            m = self.referee_count(n, i)
            net.tick()  # round 2i-1: competes
            if m == 0:  # n == 1
                net.tick()
                continue
            if m == n - 1:
                s_count = len(candidates)
                net.count_messages(s_count * m, self.COMPETE)
                net.tick()
                # Full fan-out with self-comparing referees: the max-ID
                # candidate beats every referee's floor and is the only
                # referee that never responds, so it alone survives and
                # exactly n - 1 responses flow.
                if s_count:
                    net.count_messages(n - 1, self.RESPONSE)
                    candidates = candidates[[int(np.argmax(ids[candidates]))]]
                continue
            init = np.full(n, -1, dtype=np.int64)
            init[candidates] = ids[candidates]
            candidates, _ = _compete_iteration(
                net, candidates, m, init, self.COMPETE, self.RESPONSE
            )
        net.tick()  # round 2K+1: the surviving candidate announces
        if len(candidates) == 0:  # pragma: no cover - the max ID always survives
            raise RuntimeError("afek_gafni lost every candidate")
        net.count_messages(len(candidates) * (n - 1), self.ELECTED)
        if n >= 2:
            net.tick()  # round 2K+2: followers receive the announcement
        net.decide(candidates.tolist())


class VectorSmallIdElection(VectorAlgorithm):
    """Vectorized Algorithm 1 / Theorem 3.15 (twin: ``small_id``).

    The object twin's round structure is embarrassingly data-parallel:
    the ID range is cut into windows of width ``d·g``; rounds tick
    silently until the first window that contains an ID, whose members
    broadcast their ballots; everyone decides on the minimum ballot one
    round later.  The port alone is a one-liner over the id array —
    ``w = min((ids + d·g - 1) // (d·g))`` — which makes ``small_id`` the
    cheapest vectorized algorithm in the registry: zero messages until
    the deciding window, then one ``O(b·n)`` accounting step for the
    ``b ≤ d·g`` broadcasters.  Matches the twin bit for bit in exact
    mode: same rounds, same message counts, same winner
    (``tests/test_fastsync_small_id.py``).
    """

    name = "small_id"

    BALLOT = "ballot"

    def __init__(self, d: int, g: int = 1) -> None:
        if d < 1:
            raise ValueError("need d >= 1")
        if g < 1:
            raise ValueError("need integer g >= 1")
        self.d = d
        self.g = g

    def run(self, net) -> None:
        n, ids = net.n, net.ids
        if self.d > n:
            raise ValueError("need d <= n")
        if int(ids.min()) < 1 or int(ids.max()) > n * self.g:
            raise ValueError(
                f"Algorithm 1 requires IDs in [1, n*g] = [1, {n * self.g}]; "
                f"got {int(ids.min() if ids.min() < 1 else ids.max())}"
            )
        width = self.d * self.g
        windows = (ids + width - 1) // width
        opening = int(windows.min())
        # Rounds 1 .. opening-1 are silent; the window's members
        # broadcast in round ``opening`` and everyone decides in the
        # round after, exactly like the per-node twin.
        for _ in range(opening):
            net.tick()
        broadcasters = np.nonzero(windows == opening)[0]
        net.count_messages(len(broadcasters) * (n - 1), self.BALLOT)
        net.tick()
        winner = int(broadcasters[int(np.argmin(ids[broadcasters]))])
        net.decide([winner])


class VectorLasVegasElection(VectorAlgorithm):
    """Vectorized Theorem 3.16 Las Vegas election (twin: ``las_vegas``)."""

    name = "las_vegas"

    COMPETE = "compete"
    WIN = "win"
    LOSE = "lose"
    ANNOUNCE = "announce"

    def __init__(
        self,
        candidate_coeff: float = 2.0,
        referee_coeff: float = 2.0,
        candidate_prob_fn: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        if candidate_coeff <= 0 or referee_coeff <= 0:
            raise ValueError("coefficients must be positive")
        self.candidate_coeff = candidate_coeff
        self.referee_coeff = referee_coeff
        self.candidate_prob_fn = candidate_prob_fn
        self.phases_run = 0

    def candidate_probability(self, n: int, phase: int) -> float:
        if self.candidate_prob_fn is not None:
            return self.candidate_prob_fn(n, phase)
        if n < 2:
            return 1.0
        return min(1.0, self.candidate_coeff * math.log(n) / n)

    def referee_count(self, n: int) -> int:
        if n < 2:
            return 0
        return min(n - 1, math.ceil(self.referee_coeff * math.sqrt(n * math.log(n))))

    def run(self, net) -> None:
        n, ids = net.n, net.ids
        if n == 1:
            net.tick()
            net.decide([0])
            return
        m = self.referee_count(n)
        announcers = np.empty(0, dtype=np.int64)
        phase = 0
        while True:
            net.tick()  # round 3p+1: verify previous announcements / compete
            if len(announcers) == 1:
                net.decide([int(announcers[0])])
                return
            # Zero or several announcers: every node restarts the phase.
            self.phases_run = phase + 1
            prob = self.candidate_probability(n, phase)
            cand = np.nonzero(net.bernoulli(prob))[0]
            ranks = net.rank_draws(cand, n**4)
            dst = net.sampled_targets(cand, m)
            net.count_messages(dst.size, self.COMPETE)
            net.tick()  # round 3p+2: referees grant win/lose per compete
            flat = dst.reshape(-1)
            rep = np.repeat(ranks, m)
            best = np.zeros(n, dtype=np.int64)
            np.maximum.at(best, flat, rep)
            hits = rep == best[flat]
            top_count = np.zeros(n, dtype=np.int64)
            np.add.at(top_count, flat[hits], 1)
            is_win = hits & (top_count[flat] == 1)
            wins = int(np.count_nonzero(is_win))
            net.count_messages(wins, self.WIN)
            net.count_messages(flat.size - wins, self.LOSE)
            net.tick()  # round 3p+3: all-win candidates broadcast
            ok = is_win.reshape(len(cand), m).all(axis=1) if len(cand) else np.empty(0, bool)
            announcers = cand[ok]
            net.count_messages(len(announcers) * (n - 1), self.ANNOUNCE)
            phase += 1
