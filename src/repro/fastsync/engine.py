"""The vectorized synchronous round engine.

Instead of one algorithm object, context and inbox per node, the whole
clique is a handful of flat arrays:

* ``ids``      — ``int64[n]``, the unique node identifiers;
* per-round message *batches* — ``(senders, destinations)`` index arrays
  built by the algorithm with the engine's sampling primitives;
* metric counters identical in meaning to :class:`repro.sync.SyncMetrics`
  (``messages_total``, ``last_send_round``, ``rounds_executed``,
  per-kind counts).

A :class:`~repro.fastsync.algorithm.VectorAlgorithm` drives the whole
round schedule itself (it is a port of the *protocol*, not of one node),
calling :meth:`FastSyncNetwork.tick` once per synchronous round and the
sampling/accounting primitives in between.  The engine owns everything
that must be shared between algorithms: id layout, randomness, the port
model, round/message accounting and the termination limit.

Two port-model modes
--------------------

``mode="exact"``
    The clique's port mapping is materialized up front as an
    ``(n, n-1)`` permutation matrix — row ``u`` is a uniformly random
    ordering of the other nodes, exactly the distribution the
    object-model engine's :class:`~repro.net.ports.RandomPortPolicy`
    resolves lazily.  Per-node ``random.Random`` streams are seeded with
    the same ``master.getrandbits(64)`` schedule as
    :class:`repro.sync.SyncNetwork`, so an object-model run given
    :meth:`FastSyncNetwork.port_map` and the same seed consumes
    *identical* randomness: winners and message/round counts match
    exactly (``tests/test_fastsync_equivalence.py``).  Memory is
    ``O(n^2)`` — intended for ``n ≤ exact_limit``.

``mode="scale"``
    No materialized port map.  "Send over ports ``0..m-1``" and "send
    over ``m`` sampled ports" both become "send to ``m`` distinct
    uniformly random peers", which is the same *distribution* a random
    port mapping induces, drawn from one ``numpy`` PCG64 generator.
    Memory is ``O(messages per round)``, which is what unlocks
    ``n ≥ 10^5`` (sub-quadratic algorithms never materialize ``n^2``
    anything).  Runs are deterministic per ``(n, seed, mode)`` but do
    not replay the object engine bit-for-bit; see DESIGN.md for the
    exact equivalence contract.

``mode="auto"`` picks ``exact`` for ``n ≤ exact_limit`` (default 2048)
and ``scale`` above.

The batch axis
--------------

``FastSyncNetwork(n, seeds=[s0, s1, ...])`` (or ``batch=k``, which
expands to ``seeds=[seed, seed+1, ..., seed+k-1]``) runs *many
independent elections of the same (n, algorithm) configuration in one
engine execution*: state arrays grow a leading lane dimension
(``alive`` is ``(batch, n)``), every lane draws from its **own** RNG
streams seeded exactly like a single run with that lane's seed, crash
masks apply per lane, and per-lane termination lets finished lanes stop
paying tick cost.  ``run()`` then returns one :class:`FastRunResult`
per lane.  In ``exact`` mode lane ``b`` replays a single run with seed
``seeds[b]`` bit for bit (``tests/test_fastsync_batch.py``); in
``scale`` mode lanes are deterministic per ``(n, seed, mode)`` and
distribution-equivalent, but the batched path uses a faster int32
collision-resampling sampler, so its draws differ from the legacy
single-run scale stream (see DESIGN.md "Batched fast engine").
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fastsync.xp import xp as np

from repro.common import SimulationLimitExceeded, SurvivorAccounting
from repro.net.ports import PortMap
from repro.telemetry.profile import NULL_PROFILE

__all__ = ["ArrayPortMap", "DEFAULT_EXACT_LIMIT", "FastRunResult", "FastSyncNetwork"]

#: ``mode="auto"``'s exact/scale crossover; also the ceiling below which
#: the scenario batch coordinator may group acts into multi-lane runs
#: (exact-mode lanes replay single runs bit for bit).
DEFAULT_EXACT_LIMIT = 2048

#: Above this many row elements, distinct-target generation falls back to
#: chunked argpartition instead of whole-matrix rejection sampling.
_KEY_CHUNK_ELEMS = 30_000_000

#: Safety valve for the collision-resampling loops: statistically the
#: loops converge geometrically, so this is never reached.
_RESAMPLE_LIMIT = 500


class ArrayPortMap(PortMap):
    """A fully materialized port mapping backed by a permutation matrix.

    ``dest[u, i]`` is the node reached through port ``i`` of node ``u``;
    each row is a permutation of the other ``n - 1`` nodes.  The reverse
    port of a link is recovered from the inverse permutation, so the
    mapping is involutive as required by the model.  This is the adapter
    that lets the *object-model* engine run on the exact wiring a
    :class:`FastSyncNetwork` used, which is what the cross-engine
    equivalence tests rely on.
    """

    def __init__(self, dest: np.ndarray) -> None:
        n = dest.shape[0]
        super().__init__(n)
        if dest.shape != (n, max(0, n - 1)):
            raise ValueError(f"need an (n, n-1) destination matrix, got {dest.shape}")
        self._dest = dest
        # rank[v, u] = the port of node v that leads to node u.
        rank = np.full((n, n), -1, dtype=np.int64)
        if n > 1:
            rows = np.arange(n)[:, None]
            rank[rows, dest] = np.arange(n - 1, dtype=np.int64)[None, :]
        self._rank = rank

    def resolve(self, u: int, port: int):
        self.check_port(u, port)
        v = int(self._dest[u, port])
        return (v, int(self._rank[v, u]))

    def is_resolved(self, u: int, port: int) -> bool:
        self.check_port(u, port)
        return True

    def linked_peers(self, u: int):
        return (v for v in range(self.n) if v != u)


@dataclass
class FastRunResult(SurvivorAccounting):
    """Summary of one vectorized execution (mirrors ``SyncRunResult``)."""

    n: int
    mode: str
    ids: List[int]
    rounds_executed: int
    messages: int
    last_send_round: int
    leaders: List[int]
    leader_ids: List[int]
    decided_count: int
    awake_count: int
    halted_count: int
    messages_by_kind: Dict[str, int]
    sends_by_round: Dict[int, int]
    wall_time_s: float
    crashed: List[int] = field(default_factory=list)  # crash-mask casualties
    fault_metrics: Optional[object] = None
    seed: Optional[int] = None  # the run (or lane) seed, when known
    #: Per-node decision values (``None`` = undecided or decided-None),
    #: populated by the faulted folds so twin tests can compare the full
    #: output vector against ``SyncRunResult.outputs``.
    outputs: Optional[List[Optional[int]]] = None

    @property
    def unique_leader(self) -> bool:
        return len(self.leaders) == 1

    @property
    def elected_id(self) -> Optional[int]:
        return self.leader_ids[0] if self.unique_leader else None


def _random_port_matrix(rng: np.random.Generator, n: int) -> np.ndarray:
    """An ``(n, n-1)`` matrix whose rows are random orderings of peers."""
    if n == 1:
        return np.empty((1, 0), dtype=np.int64)
    keys = rng.random((n, n))
    np.fill_diagonal(keys, np.inf)  # self is never a peer: sorts last
    return np.argsort(keys, axis=1, kind="stable")[:, : n - 1]


def _validated_schedule(
    crashes: Sequence[Tuple[int, float]], n: int
) -> List[Tuple[float, int]]:
    """Normalize one crash schedule to a sorted ``(at, node)`` list."""
    schedule: List[Tuple[float, int]] = []
    seen_nodes = set()
    for node, at in crashes:
        node = int(node)
        if not 0 <= node < n:
            raise ValueError(f"crash target {node} out of range for n={n}")
        if node in seen_nodes:
            raise ValueError(f"node {node} is scheduled to crash twice")
        if at < 0:
            raise ValueError("crash schedule entries need at >= 0")
        seen_nodes.add(node)
        schedule.append((float(at), node))
    if len(schedule) >= n:
        raise ValueError("cannot schedule every node to crash")
    return sorted(schedule)


def _sample_distinct(
    rng: np.random.Generator, src_local: np.ndarray, m: int, n: int
) -> np.ndarray:
    """``m`` distinct uniform peers (≠ self) per row — the batched sampler.

    The batched scale path treats a target row as a *set* (every port's
    referee logic is symmetric over columns), which unlocks the two
    tricks the legacy single-run sampler cannot use:

    * rows are kept **sorted in place** — duplicate detection costs one
      copy-free int32 sort per pass instead of the legacy fancy-index
      copy plus int64 ``np.sort`` copy;
    * the self-peer is excluded by remapping draws from ``[0, n-1)``
      that hit ``src`` onto the reserved value ``n-1`` (exactly uniform
      over the peers), instead of the branchy shift-add.

    Only the colliding *positions* are redrawn (in a sorted row they are
    the adjacent-equal slots; one copy of each value survives, the rest
    get fresh uniform draws, and the affected rows re-sort and recheck).
    By exchangeability of the iid redraws this converges to the uniform
    distinct-set distribution — same as the legacy whole-row rejection,
    but with redraw volume proportional to the collisions, which is what
    keeps the mid-range ``m² >> n`` iterations cheap (see DESIGN.md
    "Batched fast engine").  For ``m`` above half the peer count the
    *excluded* set is sampled instead.
    """
    rows = len(src_local)
    if m == 0 or rows == 0:
        return np.empty((rows, m), dtype=np.int32)
    src32 = src_local.astype(np.int32)
    if m == n - 1:
        full = np.arange(n - 1, dtype=np.int32)[None, :]
        return full + (full >= src32[:, None])
    if m > (n - 1) // 2:
        # Complement trick: draw the n-1-m excluded peers (cheap), keep
        # the rest.  nonzero() walks row-major, so the reshape is exact.
        excluded = _sample_distinct(rng, src_local, (n - 1) - m, n)
        keep = np.ones((rows, n), dtype=bool)
        keep[np.arange(rows), src_local] = False
        keep[np.arange(rows)[:, None], excluded] = False
        return np.nonzero(keep)[1].astype(np.int32).reshape(rows, m)
    last = np.int32(n - 1)
    draw = rng.integers(0, n - 1, size=(rows, m), dtype=np.int32)
    np.copyto(draw, last, where=draw == src32[:, None])
    if m == 1:
        return draw
    draw.sort(axis=1)
    dup = draw[:, 1:] == draw[:, :-1]
    pending = np.nonzero(dup.any(axis=1))[0]
    for _ in range(_RESAMPLE_LIMIT):
        if not len(pending):
            return draw
        # In a sorted row, duplicate positions are the adjacent-equal
        # slots: redraw exactly those (keeping one copy of each value),
        # re-sort the affected rows in place, and recheck only them.
        sub = draw[pending]
        r_idx, c_idx = np.nonzero(sub[:, 1:] == sub[:, :-1])
        fresh = rng.integers(0, n - 1, size=len(r_idx), dtype=np.int32)
        np.copyto(fresh, last, where=fresh == src32[pending[r_idx]])
        sub[r_idx, c_idx + 1] = fresh
        sub.sort(axis=1)
        draw[pending] = sub
        pending = pending[(sub[:, 1:] == sub[:, :-1]).any(axis=1)]
    raise RuntimeError(  # pragma: no cover - statistically unreachable
        "distinct-target resampling failed to converge"
    )


class FastSyncNetwork:
    """An ``n``-clique executing one :class:`VectorAlgorithm` end to end.

    With ``seeds=[...]`` (or ``batch=k``) the network runs in *batch
    mode*: one execution simulates ``len(seeds)`` independent elections
    (lanes) of the same configuration — see the module docstring.
    """

    def __init__(
        self,
        n: int,
        *,
        ids: Optional[Sequence[int]] = None,
        seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
        batch: Optional[int] = None,
        mode: str = "auto",
        exact_limit: int = DEFAULT_EXACT_LIMIT,
        max_rounds: Optional[int] = None,
        crashes: Optional[Sequence[Tuple[int, float]]] = None,
        lane_crashes: Optional[Sequence[Optional[Sequence[Tuple[int, float]]]]] = None,
        roots: Optional[Sequence[int]] = None,
        faults: Optional[object] = None,
        quorum: bool = False,
        telemetry: Optional[object] = None,
        profiler: Optional[object] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        if mode not in ("auto", "exact", "scale"):
            raise ValueError(f"mode must be auto|exact|scale, got {mode!r}")
        self.n = n
        self.seed = seed
        self.mode = ("exact" if n <= exact_limit else "scale") if mode == "auto" else mode

        # ---- batch-axis resolution -------------------------------------
        if seeds is not None:
            lane_seeds = [int(s) for s in seeds]
            if not lane_seeds:
                raise ValueError("need at least one lane seed")
            if batch is not None and batch != len(lane_seeds):
                raise ValueError(
                    f"batch={batch} disagrees with len(seeds)={len(lane_seeds)}"
                )
            self.batch: Optional[int] = len(lane_seeds)
            self.lane_seeds: Optional[Tuple[int, ...]] = tuple(lane_seeds)
        elif batch is not None:
            if batch < 1:
                raise ValueError("need batch >= 1")
            self.batch = int(batch)
            self.lane_seeds = tuple(seed + b for b in range(self.batch))
        else:
            self.batch = None
            self.lane_seeds = None

        if ids is None:
            id_array = np.arange(1, n + 1, dtype=np.int64)
        else:
            id_array = np.asarray(list(ids), dtype=np.int64)
            if id_array.shape != (n,):
                raise ValueError(f"need {n} IDs, got {id_array.shape}")
            if np.unique(id_array).size != n:
                raise ValueError("IDs must be distinct")
        self.ids = id_array
        self.max_rounds = max_rounds if max_rounds is not None else max(4096, 32 * n)

        # ---- adversarial wake-up roots ---------------------------------
        if roots is not None:
            root_list = sorted({int(u) for u in roots})
            if not root_list:
                raise ValueError("need at least one initially-awake root")
            if not all(0 <= u < n for u in root_list):
                raise ValueError("root indices must be in [0, n)")
            self.roots: Optional[np.ndarray] = np.asarray(root_list, dtype=np.int64)
        else:
            self.roots = None

        # ---- randomness ------------------------------------------------
        if self.batch is None:
            if self.mode == "exact":
                # Mirror SyncNetwork's seeding schedule: one master stream,
                # one 64-bit draw per node, in node order.  (SyncNetwork only
                # skips its port-policy draw when a port map is supplied —
                # which is exactly how the twin run is constructed.)
                master = random.Random(seed)
                self._node_rngs = [random.Random(master.getrandbits(64)) for _ in range(n)]
                self._rng = np.random.default_rng(np.random.PCG64(seed))
                self._ports = _random_port_matrix(self._rng, n)
            else:
                self._node_rngs = None
                self._rng = np.random.default_rng(np.random.PCG64(seed))
                self._ports = None
            self._lane_node_rngs = None
            self._lane_ports = None
            self._lane_rngs = None
        else:
            if self.batch * n > 2**31 - 1:
                raise ValueError(
                    f"batch * n = {self.batch * n} exceeds the int32 index "
                    "space; split the sweep into smaller batches"
                )
            self._node_rngs = None
            self._rng = None
            self._ports = None
            if self.mode == "exact":
                # Lane b is seeded exactly like a single run with seed
                # seeds[b]: same master schedule, same port matrix.
                self._lane_node_rngs = []
                self._lane_ports = np.empty((self.batch, n, max(0, n - 1)), dtype=np.int64)
                for b, s in enumerate(self.lane_seeds):
                    master = random.Random(s)
                    self._lane_node_rngs.append(
                        [random.Random(master.getrandbits(64)) for _ in range(n)]
                    )
                    rng_b = np.random.default_rng(np.random.PCG64(s))
                    self._lane_ports[b] = _random_port_matrix(rng_b, n)
                self._lane_rngs = None
            else:
                self._lane_node_rngs = None
                self._lane_ports = None
                self._lane_rngs = [
                    np.random.default_rng(np.random.PCG64(s)) for s in self.lane_seeds
                ]
            self.ids_flat = np.tile(self.ids, self.batch)
            self._ids_rank_flat: Optional[np.ndarray] = None

        # ---- crash masks -----------------------------------------------
        # (the ROADMAP "array extension"): a deterministic crash-stop
        # schedule of (node, at-round) pairs, applied at the start of
        # round ``at`` exactly like the object engine's CrashFault
        # handling.  ``alive`` is the shared ground-truth mask
        # crash-aware algorithms filter senders/referees through.  In
        # batch mode ``crashes`` is shared by every lane; ``lane_crashes``
        # gives each lane its own schedule.
        if self.batch is None:
            if lane_crashes is not None:
                raise ValueError("lane_crashes needs batch mode (pass seeds= or batch=)")
            self._crash_schedule = _validated_schedule(crashes or (), n)
            self._crash_idx = 0
            self.alive = np.ones(n, dtype=bool)
            self.crashed_at: Dict[int, float] = {}
        else:
            if crashes is not None and lane_crashes is not None:
                raise ValueError("pass either crashes (shared) or lane_crashes, not both")
            if lane_crashes is not None:
                if len(lane_crashes) != self.batch:
                    raise ValueError(
                        f"need {self.batch} lane crash schedules, got {len(lane_crashes)}"
                    )
                self._lane_crash_schedules = [
                    _validated_schedule(sched or (), n) for sched in lane_crashes
                ]
            else:
                shared = _validated_schedule(crashes or (), n)
                self._lane_crash_schedules = [list(shared) for _ in range(self.batch)]
            self._lane_crash_idx = [0] * self.batch
            self.alive = np.ones((self.batch, n), dtype=bool)
            self.lane_crashed_at: List[Dict[int, float]] = [
                {} for _ in range(self.batch)
            ]

        # ---- fault runtime (FaultPlan-driven path) -----------------------
        # ``faults=`` attaches a full FaultPlan — partitions, link rules,
        # kill policies, tampering — through the FastFaultRuntime adapter;
        # the lightweight ``crashes=`` mask path stays separate (and the
        # two are mutually exclusive: a plan carries its own schedule).
        self.quorum = bool(quorum)
        if faults is not None:
            if self.batch is not None:
                raise ValueError(
                    "faulted runs are single-lane; the sweep executor runs "
                    "batched faulted specs one seed at a time"
                )
            if self._crash_schedule:
                raise ValueError(
                    "pass the crash schedule inside the FaultPlan when faults= is set"
                )
            from repro.fastsync.faults import FastFaultRuntime

            self.fault_runtime: Optional[FastFaultRuntime] = FastFaultRuntime(
                faults, n, [int(i) for i in self.ids], seed
            )
        else:
            self.fault_runtime = None

        # ---- accounting ------------------------------------------------
        self.round = 0
        if self.batch is None:
            self.messages_total = 0
            self.last_send_round = 0
            self.messages_by_kind: Dict[str, int] = {}
            self.sends_by_round: Dict[int, int] = {}
            self._leaders: Optional[List[int]] = None
            self._decided_count = 0
            self._awake_override: Optional[int] = None
            self._outputs: Optional[List[Optional[int]]] = None
        else:
            self.lane_round = np.zeros(self.batch, dtype=np.int64)
            self._messages_lanes = np.zeros(self.batch, dtype=np.int64)
            self._last_send_lanes = np.zeros(self.batch, dtype=np.int64)
            self._kind_lanes: Dict[str, np.ndarray] = {}
            self._round_lanes: Dict[int, np.ndarray] = {}
            self._lane_leaders: List[Optional[List[int]]] = [None] * self.batch
            self._lane_decided = np.zeros(self.batch, dtype=np.int64)
            self._lane_awake: List[Optional[int]] = [None] * self.batch
        self._ran = False

        # ---- observability ---------------------------------------------
        # Both hooks are opt-in and None by default: the disabled paths
        # are a single attribute test per round / accounting call, which
        # the telemetry-overhead bench keeps within budget.
        self._telemetry = telemetry
        self._profiler = profiler
        if telemetry is not None:
            telemetry.bind(self)

    def profile(self, name: str):
        """A timing context for one kernel phase (no-op when disabled)."""
        if self._profiler is None:
            return NULL_PROFILE
        return self._profiler.phase(name)

    @property
    def has_crashes(self) -> bool:
        """Whether this run carries a crash schedule (mask path active)."""
        if self.batch is None:
            return bool(self._crash_schedule)
        return any(self._lane_crash_schedules)

    @property
    def has_faults(self) -> bool:
        """Whether a FaultPlan runtime is attached (faulted fold path)."""
        return self.batch is None and self.fault_runtime is not None

    @property
    def alive_flat(self) -> np.ndarray:
        """The ``(batch * n,)`` view of the per-lane alive masks."""
        return self.alive.reshape(-1)

    @property
    def ids_rank_flat(self) -> np.ndarray:
        """Rank-compressed IDs (``int32``, per lane), for cheap comparisons.

        ``ids_rank_flat[g]`` is the rank of node ``g % n``'s ID within
        the (lane-shared) ID array — order-isomorphic to the IDs, so
        max-compete logic can run on int32 ranks instead of arbitrary
        int64 identifiers, halving scatter/gather traffic.
        """
        if self._ids_rank_flat is None:
            rank = np.empty(self.n, dtype=np.int32)
            rank[np.argsort(self.ids)] = np.arange(self.n, dtype=np.int32)
            self._ids_rank_flat = np.tile(rank, self.batch)
        return self._ids_rank_flat

    # ------------------------------------------------------------------ #
    # port model

    def port_map(self, lane: Optional[int] = None) -> ArrayPortMap:
        """The materialized mapping, for running an object-model twin.

        Only available in ``exact`` mode — ``scale`` mode never holds the
        ``O(n^2)`` matrix, by design.  In batch mode pass the ``lane``
        whose wiring you want (each lane has its own matrix).
        """
        if self.batch is not None:
            if self._lane_ports is None:
                raise RuntimeError(
                    "port_map() needs mode='exact'; scale mode does not materialize "
                    "the O(n^2) port matrix"
                )
            if lane is None:
                raise RuntimeError("batch mode: pass port_map(lane=b)")
            return ArrayPortMap(self._lane_ports[lane])
        if self._ports is None:
            raise RuntimeError(
                "port_map() needs mode='exact'; scale mode does not materialize "
                "the O(n^2) port matrix"
            )
        return ArrayPortMap(self._ports)

    # ------------------------------------------------------------------ #
    # round/message accounting (called by algorithms)

    def _apply_crash(self, node: int, at: float) -> None:
        """Crash-stop ``node`` (skipped if it would leave nobody alive)."""
        if self.alive[node] and int(self.alive.sum()) > 1:
            self.alive[node] = False
            self.crashed_at[node] = at

    def _quorum_veto(self, leaders, outputs):
        """Strip leaders that cannot reach a majority of the clique.

        The fast-engine port of the ``quorum_reelect`` gate: a claimed
        leader only stands if the alive nodes it can still reach (its
        partition component at the final round, or everyone absent
        partitions) form a strict majority of ``n``.  Vetoed leaders
        also lose their entry in every adopter's output.
        """
        kept = []
        vetoed_ids = set()
        for u in leaders:
            if self.fault_runtime is not None:
                reach = self.fault_runtime.reachable_alive(int(u), self.round, self.alive)
            else:
                reach = int(self.alive.sum())
            if reach > self.n // 2:
                kept.append(u)
            else:
                vetoed_ids.add(int(self.ids[u]))
        if vetoed_ids and outputs is not None:
            outputs = [None if o in vetoed_ids else o for o in outputs]
        return kept, outputs

    def _apply_crash_lane(self, lane: int, node: int, at: float) -> None:
        if self.alive[lane, node] and int(self.alive[lane].sum()) > 1:
            self.alive[lane, node] = False
            self.lane_crashed_at[lane][node] = at

    def tick(self, active: Optional[np.ndarray] = None) -> int:
        """Advance the global round counter by one synchronous round.

        Scheduled crashes with ``at <= round`` take effect here — at the
        *start* of the round, before that round's deliveries and sends —
        matching the object engine's ``_apply_due_crashes`` semantics.
        In batch mode ``active`` is a ``(batch,)`` bool mask of lanes
        still running: finished lanes stop ticking (their round counters
        freeze and their pending crashes wait for the post-run drain).
        """
        self.round += 1
        if self.round > self.max_rounds:
            raise SimulationLimitExceeded(
                f"no termination after {self.max_rounds} rounds (n={self.n})"
            )
        if self.batch is None:
            while (
                self._crash_idx < len(self._crash_schedule)
                and self._crash_schedule[self._crash_idx][0] <= self.round
            ):
                at, node = self._crash_schedule[self._crash_idx]
                self._crash_idx += 1
                self._apply_crash(node, at)
            if self.fault_runtime is not None:
                self.fault_runtime.apply_due_crashes(self.alive, self.round)
            if self._telemetry is not None:
                faulty = bool(self._crash_schedule) or self.fault_runtime is not None
                survivors = int(self.alive.sum()) if faulty else self.n
                self._telemetry.on_tick(0, self.round, survivors)
            return self.round
        lanes = range(self.batch) if active is None else np.nonzero(active)[0]
        for b in lanes:
            self.lane_round[b] += 1
            sched = self._lane_crash_schedules[b]
            i = self._lane_crash_idx[b]
            r = self.lane_round[b]
            while i < len(sched) and sched[i][0] <= r:
                at, node = sched[i]
                i += 1
                self._apply_crash_lane(b, node, at)
            self._lane_crash_idx[b] = i
            if self._telemetry is not None:
                survivors = int(self.alive[b].sum()) if sched else self.n
                self._telemetry.on_tick(int(b), int(self.lane_round[b]), survivors)
        return self.round

    def count_messages(self, count: int, kind: str) -> None:
        """Record ``count`` messages of ``kind`` sent in the current round."""
        if count <= 0:
            return
        count = int(count)
        self.messages_total += count
        self.last_send_round = self.round
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + count
        self.sends_by_round[self.round] = self.sends_by_round.get(self.round, 0) + count
        if self._telemetry is not None:
            self._telemetry.on_send(0, self.round, kind, count)

    def count_messages_lanes(self, counts: np.ndarray, kind: str) -> None:
        """Per-lane :meth:`count_messages`: ``counts`` is ``(batch,)``."""
        counts = np.asarray(counts, dtype=np.int64)
        mask = counts > 0
        if not mask.any():
            return
        sent = np.where(mask, counts, 0)
        self._messages_lanes += sent
        self._last_send_lanes[mask] = self.lane_round[mask]
        kind_arr = self._kind_lanes.setdefault(kind, np.zeros(self.batch, dtype=np.int64))
        kind_arr += sent
        round_arr = self._round_lanes.setdefault(
            self.round, np.zeros(self.batch, dtype=np.int64)
        )
        round_arr += sent
        if self._telemetry is not None:
            for b in np.nonzero(mask)[0]:
                self._telemetry.on_send(
                    int(b), int(self.lane_round[b]), kind, int(counts[b])
                )

    def decide(
        self,
        leader_nodes: Sequence[int],
        decided_count: Optional[int] = None,
        awake_count: Optional[int] = None,
        outputs: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        """Record the election outcome (every node has decided and halted).

        ``awake_count`` overrides the default all-awake accounting for
        ports running under an adversarial wake-up schedule.  The
        faulted folds additionally pass the per-node ``outputs`` vector
        (who each node thinks won), which under partitions genuinely
        differs between receivers.
        """
        self._leaders = [int(u) for u in leader_nodes]
        self._decided_count = self.n if decided_count is None else int(decided_count)
        self._awake_override = awake_count
        if outputs is not None:
            if len(outputs) != self.n:
                raise ValueError(f"need {self.n} outputs, got {len(outputs)}")
            self._outputs = [None if o is None else int(o) for o in outputs]
        if self._telemetry is not None:
            self._telemetry.on_decide(0, self.round, self._leaders)

    def decide_lane(
        self,
        lane: int,
        leader_nodes: Sequence[int],
        decided_count: Optional[int] = None,
        awake_count: Optional[int] = None,
    ) -> None:
        """Per-lane :meth:`decide` (a finished lane stops ticking)."""
        self._lane_leaders[lane] = [int(u) for u in leader_nodes]
        self._lane_decided[lane] = self.n if decided_count is None else int(decided_count)
        self._lane_awake[lane] = awake_count
        if self._telemetry is not None:
            self._telemetry.on_decide(
                int(lane), int(self.lane_round[lane]), self._lane_leaders[lane]
            )

    # ------------------------------------------------------------------ #
    # sampling primitives (mode-dependent)

    def first_ports(self, src: np.ndarray, m: int) -> np.ndarray:
        """Destinations of "send over ports ``0..m-1``" for each node in ``src``.

        Exact mode reads the materialized matrix (so repeated calls see
        the *same* ports, like the object engine); scale mode draws
        fresh distinct peers, the distribution a random port mapping
        induces on first use.
        """
        if m > self.n - 1:
            raise ValueError(f"cannot use {m} of {self.n - 1} ports")
        with self.profile("sampling"):
            if self._ports is not None:
                return self._ports[src, :m]
            return self._distinct_targets(src, m)

    def sampled_targets(self, src: np.ndarray, m: int) -> np.ndarray:
        """Destinations of "send over ``m`` sampled ports" (``ctx.sample_ports``)."""
        if m > self.n - 1:
            raise ValueError(f"cannot sample {m} of {self.n - 1} ports")
        with self.profile("sampling"):
            if self._node_rngs is not None:
                out = np.empty((len(src), m), dtype=np.int64)
                port_range = range(self.n - 1)
                for row, u in enumerate(src):
                    ports = self._node_rngs[u].sample(port_range, m)
                    out[row] = self._ports[u, ports]
                return out
            return self._distinct_targets(src, m)

    def bernoulli(self, p: float) -> np.ndarray:
        """One biased coin per node (all ``n`` nodes draw, in node order)."""
        if self._node_rngs is not None:
            return np.fromiter(
                (rng.random() < p for rng in self._node_rngs), dtype=bool, count=self.n
            )
        return self._rng.random(self.n) < p

    def rank_draws(self, src: np.ndarray, high: int) -> np.ndarray:
        """One uniform draw from ``[1, high]`` per node in ``src``.

        Scale mode caps ``high`` at ``2^62`` so draws stay in int64 —
        ranks only need to be near-collision-free, not exactly
        ``[n^4]``-distributed (exact mode keeps the true range).
        """
        if self._node_rngs is not None:
            return np.fromiter(
                (self._node_rngs[u].randrange(1, high + 1) for u in src),
                dtype=np.int64,
                count=len(src),
            )
        return self._rng.integers(1, min(high, 2**62) + 1, size=len(src), dtype=np.int64)

    def _distinct_targets(self, src: np.ndarray, m: int) -> np.ndarray:
        """``m`` distinct uniform peers (≠ self) per row, vectorized.

        Small ``m`` uses whole-matrix rejection (draw, detect duplicate
        rows, redraw those rows); large ``m`` switches to argpartition
        over per-row random keys, chunked so the key matrix never
        exceeds ~``_KEY_CHUNK_ELEMS`` floats.
        """
        n = self.n
        rows = len(src)
        if m == 0 or rows == 0:
            return np.empty((rows, m), dtype=np.int64)
        src_col = np.asarray(src, dtype=np.int64)[:, None]
        if m == n - 1:
            full = np.arange(n - 1, dtype=np.int64)[None, :]
            return full + (full >= src_col)
        if m * m <= 4 * n:
            draw = self._rng.integers(0, n - 1, size=(rows, m), dtype=np.int64)
            dst = draw + (draw >= src_col)
            if m > 1:
                pending = np.arange(rows)
                for _ in range(_RESAMPLE_LIMIT):
                    chk = np.sort(dst[pending], axis=1)
                    bad = (chk[:, 1:] == chk[:, :-1]).any(axis=1)
                    if not bad.any():
                        break
                    pending = pending[bad]
                    draw = self._rng.integers(0, n - 1, size=(len(pending), m), dtype=np.int64)
                    dst[pending] = draw + (draw >= src_col[pending])
                else:  # pragma: no cover - statistically unreachable
                    raise RuntimeError("distinct-target rejection failed to converge")
            return dst
        out = np.empty((rows, m), dtype=np.int64)
        chunk = max(1, _KEY_CHUNK_ELEMS // n)
        src_flat = np.asarray(src, dtype=np.int64)
        for start in range(0, rows, chunk):
            stop = min(rows, start + chunk)
            keys = self._rng.random((stop - start, n))
            keys[np.arange(stop - start), src_flat[start:stop]] = np.inf
            out[start:stop] = np.argpartition(keys, m, axis=1)[:, :m]
        return out

    # ------------------------------------------------------------------ #
    # batched sampling primitives (operate on *global* indices lane*n+u)

    def lane_segments(self, src_global: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(starts, stops)`` slicing a sorted global index array per lane."""
        edges = np.arange(1, self.batch + 1, dtype=np.int64) * self.n
        stops = np.searchsorted(src_global, edges, side="left")
        starts = np.concatenate(([0], stops[:-1]))
        return starts, stops

    def rows_per_lane(self, src_global: np.ndarray) -> np.ndarray:
        """How many of the sorted global rows fall in each lane."""
        starts, stops = self.lane_segments(src_global)
        return stops - starts

    def first_ports_lanes(self, src_global: np.ndarray, m: int) -> np.ndarray:
        """Batched :meth:`first_ports`; rows keyed by global index."""
        if m > self.n - 1:
            raise ValueError(f"cannot use {m} of {self.n - 1} ports")
        n = self.n
        with self.profile("sampling"):
            if self._lane_ports is not None:
                lane = src_global // n
                node = src_global - lane * n
                return self._lane_ports[lane, node, :m] + (lane * n)[:, None]
            return self._distinct_targets_lanes(src_global, m)

    def sampled_targets_lanes(self, src_global: np.ndarray, m: int) -> np.ndarray:
        """Batched :meth:`sampled_targets`; rows keyed by global index."""
        if m > self.n - 1:
            raise ValueError(f"cannot sample {m} of {self.n - 1} ports")
        n = self.n
        with self.profile("sampling"):
            if self._lane_node_rngs is not None:
                out = np.empty((len(src_global), m), dtype=np.int64)
                port_range = range(n - 1)
                for row, g in enumerate(src_global):
                    b, u = divmod(int(g), n)
                    ports = self._lane_node_rngs[b][u].sample(port_range, m)
                    out[row] = self._lane_ports[b, u, ports] + b * n
                return out
            return self._distinct_targets_lanes(src_global, m)

    def bernoulli_lanes(
        self, p: float, lanes: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """One coin per node per lane — ``(batch, n)`` bool.

        ``lanes`` restricts the draw to those lane indices (finished
        lanes stop consuming randomness); other rows come back False.
        """
        out = np.zeros((self.batch, self.n), dtype=bool)
        lane_list = range(self.batch) if lanes is None else [int(b) for b in lanes]
        if self._lane_node_rngs is not None:
            for b in lane_list:
                out[b] = np.fromiter(
                    (rng.random() < p for rng in self._lane_node_rngs[b]),
                    dtype=bool,
                    count=self.n,
                )
        else:
            for b in lane_list:
                out[b] = self._lane_rngs[b].random(self.n) < p
        return out

    def rank_draws_lanes(self, src_global: np.ndarray, high: int) -> np.ndarray:
        """Batched :meth:`rank_draws`; rows keyed by global index."""
        n = self.n
        if self._lane_node_rngs is not None:
            return np.fromiter(
                (
                    self._lane_node_rngs[int(g) // n][int(g) % n].randrange(1, high + 1)
                    for g in src_global
                ),
                dtype=np.int64,
                count=len(src_global),
            )
        out = np.empty(len(src_global), dtype=np.int64)
        starts, stops = self.lane_segments(src_global)
        capped = min(high, 2**62)
        for b in range(self.batch):
            s, e = starts[b], stops[b]
            if s == e:
                continue
            out[s:e] = self._lane_rngs[b].integers(
                1, capped + 1, size=e - s, dtype=np.int64
            )
        return out

    def _distinct_targets_lanes(self, src_global: np.ndarray, m: int) -> np.ndarray:
        """Per-lane distinct sampling through the optimized int32 path.

        Returns global int32 targets (the constructor guarantees
        ``batch * n`` fits int32).
        """
        n = self.n
        out = np.empty((len(src_global), m), dtype=np.int32)
        starts, stops = self.lane_segments(src_global)
        for b in range(self.batch):
            s, e = starts[b], stops[b]
            if s == e:
                continue
            local = src_global[s:e] - b * n
            np.add(
                _sample_distinct(self._lane_rngs[b], local, m, n),
                np.int32(b * n),
                out=out[s:e],
            )
        return out

    # ------------------------------------------------------------------ #
    # execution

    def run(self, algorithm):
        """Execute ``algorithm`` once and summarize the run.

        Single mode returns one :class:`FastRunResult`; batch mode
        returns a list with one result per lane, in lane order.
        """
        if self._ran:
            raise RuntimeError("a FastSyncNetwork is single-use, like SyncNetwork")
        if self.has_crashes and not getattr(algorithm, "supports_crashes", False):
            raise ValueError(
                f"{type(algorithm).__name__} has no crash-mask support; "
                "only crash-aware vectorized ports can run under a crash "
                "schedule — use the object engine with a FaultPlan for the "
                "other algorithms"
            )
        if self.roots is not None and not getattr(algorithm, "supports_roots", False):
            raise ValueError(
                f"{type(algorithm).__name__} assumes simultaneous wake-up; "
                "only wake-up-aware vectorized ports (adversarial_2round) "
                "accept a roots= schedule"
            )
        if self.fault_runtime is not None and not getattr(
            algorithm, "supports_faults", False
        ):
            raise ValueError(
                f"{type(algorithm).__name__} has no FaultPlan fold; use the "
                "object engine for plans against this algorithm"
            )
        self._ran = True
        if self.batch is None:
            start = time.perf_counter()
            algorithm.run(self)
            wall = time.perf_counter() - start
            if self._leaders is None:
                raise RuntimeError(
                    f"{type(algorithm).__name__}.run() returned without calling decide()"
                )
            # Post-quiescence crashes still happen (to the machines, not
            # the protocol), mirroring SyncNetwork's drain of pending
            # crashes.
            while self._crash_idx < len(self._crash_schedule):
                at, node = self._crash_schedule[self._crash_idx]
                self._crash_idx += 1
                self._apply_crash(node, at)
            fault_metrics = None
            if self.fault_runtime is not None:
                self.fault_runtime.drain_pending(self.alive)
                crashed_at = self.fault_runtime.crashed_at
                fault_metrics = self.fault_runtime.metrics
            else:
                crashed_at = self.crashed_at
            never_woke = sum(1 for at in crashed_at.values() if at <= 1)
            if self._awake_override is not None:
                awake = self._awake_override
                halted = self._decided_count
            else:
                awake = self.n - never_woke
                faulty = self.has_crashes or self.fault_runtime is not None
                halted = self._decided_count if faulty else self.n
            leaders = list(self._leaders)
            outputs = self._outputs
            if self.quorum and leaders:
                leaders, outputs = self._quorum_veto(leaders, outputs)
            return FastRunResult(
                n=self.n,
                mode=self.mode,
                ids=[int(i) for i in self.ids],
                rounds_executed=self.round,
                messages=self.messages_total,
                last_send_round=self.last_send_round,
                leaders=leaders,
                leader_ids=[int(self.ids[u]) for u in leaders],
                decided_count=self._decided_count,
                awake_count=awake,
                halted_count=halted,
                messages_by_kind=dict(self.messages_by_kind),
                sends_by_round=dict(self.sends_by_round),
                wall_time_s=wall,
                crashed=sorted(crashed_at),
                fault_metrics=fault_metrics,
                seed=self.seed,
                outputs=outputs,
            )
        if not getattr(algorithm, "supports_batch", False):
            raise ValueError(
                f"{type(algorithm).__name__} has no batched implementation; "
                "run it one seed at a time (omit seeds=/batch=)"
            )
        start = time.perf_counter()
        algorithm.run_batch(self)
        wall = time.perf_counter() - start
        results: List[FastRunResult] = []
        # Box the shared IDs once; each lane gets its own shallow copy so
        # mutating one record's ids cannot leak into its siblings.
        ids_list = [int(i) for i in self.ids]
        for b in range(self.batch):
            if self._lane_leaders[b] is None:
                raise RuntimeError(
                    f"{type(algorithm).__name__}.run_batch() finished without "
                    f"deciding lane {b}"
                )
            sched = self._lane_crash_schedules[b]
            i = self._lane_crash_idx[b]
            while i < len(sched):
                at, node = sched[i]
                i += 1
                self._apply_crash_lane(b, node, at)
            self._lane_crash_idx[b] = i
            crashed_at = self.lane_crashed_at[b]
            never_woke = sum(1 for at in crashed_at.values() if at <= 1)
            lane_has_crashes = bool(sched)
            decided = int(self._lane_decided[b])
            if self._lane_awake[b] is not None:
                awake = int(self._lane_awake[b])
                halted = decided
            else:
                awake = self.n - never_woke
                halted = decided if lane_has_crashes else self.n
            leaders = self._lane_leaders[b]
            results.append(
                FastRunResult(
                    n=self.n,
                    mode=self.mode,
                    ids=list(ids_list),
                    rounds_executed=int(self.lane_round[b]),
                    messages=int(self._messages_lanes[b]),
                    last_send_round=int(self._last_send_lanes[b]),
                    leaders=list(leaders),
                    leader_ids=[int(self.ids[u]) for u in leaders],
                    decided_count=decided,
                    awake_count=awake,
                    halted_count=halted,
                    messages_by_kind={
                        k: int(v[b]) for k, v in self._kind_lanes.items() if v[b] > 0
                    },
                    sends_by_round={
                        r: int(v[b]) for r, v in self._round_lanes.items() if v[b] > 0
                    },
                    wall_time_s=wall / self.batch,
                    crashed=sorted(crashed_at),
                    seed=self.lane_seeds[b],
                )
            )
        return results
