"""The vectorized synchronous round engine.

Instead of one algorithm object, context and inbox per node, the whole
clique is a handful of flat arrays:

* ``ids``      — ``int64[n]``, the unique node identifiers;
* per-round message *batches* — ``(senders, destinations)`` index arrays
  built by the algorithm with the engine's sampling primitives;
* metric counters identical in meaning to :class:`repro.sync.SyncMetrics`
  (``messages_total``, ``last_send_round``, ``rounds_executed``,
  per-kind counts).

A :class:`~repro.fastsync.algorithm.VectorAlgorithm` drives the whole
round schedule itself (it is a port of the *protocol*, not of one node),
calling :meth:`FastSyncNetwork.tick` once per synchronous round and the
sampling/accounting primitives in between.  The engine owns everything
that must be shared between algorithms: id layout, randomness, the port
model, round/message accounting and the termination limit.

Two port-model modes
--------------------

``mode="exact"``
    The clique's port mapping is materialized up front as an
    ``(n, n-1)`` permutation matrix — row ``u`` is a uniformly random
    ordering of the other nodes, exactly the distribution the
    object-model engine's :class:`~repro.net.ports.RandomPortPolicy`
    resolves lazily.  Per-node ``random.Random`` streams are seeded with
    the same ``master.getrandbits(64)`` schedule as
    :class:`repro.sync.SyncNetwork`, so an object-model run given
    :meth:`FastSyncNetwork.port_map` and the same seed consumes
    *identical* randomness: winners and message/round counts match
    exactly (``tests/test_fastsync_equivalence.py``).  Memory is
    ``O(n^2)`` — intended for ``n ≤ exact_limit``.

``mode="scale"``
    No materialized port map.  "Send over ports ``0..m-1``" and "send
    over ``m`` sampled ports" both become "send to ``m`` distinct
    uniformly random peers", which is the same *distribution* a random
    port mapping induces, drawn from one ``numpy`` PCG64 generator.
    Memory is ``O(messages per round)``, which is what unlocks
    ``n ≥ 10^5`` (sub-quadratic algorithms never materialize ``n^2``
    anything).  Runs are deterministic per ``(n, seed, mode)`` but do
    not replay the object engine bit-for-bit; see DESIGN.md for the
    exact equivalence contract.

``mode="auto"`` picks ``exact`` for ``n ≤ exact_limit`` (default 2048)
and ``scale`` above.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common import SimulationLimitExceeded, SurvivorAccounting
from repro.net.ports import PortMap

__all__ = ["ArrayPortMap", "FastRunResult", "FastSyncNetwork"]

#: Above this many row elements, distinct-target generation falls back to
#: chunked argpartition instead of whole-matrix rejection sampling.
_KEY_CHUNK_ELEMS = 30_000_000


class ArrayPortMap(PortMap):
    """A fully materialized port mapping backed by a permutation matrix.

    ``dest[u, i]`` is the node reached through port ``i`` of node ``u``;
    each row is a permutation of the other ``n - 1`` nodes.  The reverse
    port of a link is recovered from the inverse permutation, so the
    mapping is involutive as required by the model.  This is the adapter
    that lets the *object-model* engine run on the exact wiring a
    :class:`FastSyncNetwork` used, which is what the cross-engine
    equivalence tests rely on.
    """

    def __init__(self, dest: np.ndarray) -> None:
        n = dest.shape[0]
        super().__init__(n)
        if dest.shape != (n, max(0, n - 1)):
            raise ValueError(f"need an (n, n-1) destination matrix, got {dest.shape}")
        self._dest = dest
        # rank[v, u] = the port of node v that leads to node u.
        rank = np.full((n, n), -1, dtype=np.int64)
        if n > 1:
            rows = np.arange(n)[:, None]
            rank[rows, dest] = np.arange(n - 1, dtype=np.int64)[None, :]
        self._rank = rank

    def resolve(self, u: int, port: int):
        self.check_port(u, port)
        v = int(self._dest[u, port])
        return (v, int(self._rank[v, u]))

    def is_resolved(self, u: int, port: int) -> bool:
        self.check_port(u, port)
        return True

    def linked_peers(self, u: int):
        return (v for v in range(self.n) if v != u)


@dataclass
class FastRunResult(SurvivorAccounting):
    """Summary of one vectorized execution (mirrors ``SyncRunResult``)."""

    n: int
    mode: str
    ids: List[int]
    rounds_executed: int
    messages: int
    last_send_round: int
    leaders: List[int]
    leader_ids: List[int]
    decided_count: int
    awake_count: int
    halted_count: int
    messages_by_kind: Dict[str, int]
    sends_by_round: Dict[int, int]
    wall_time_s: float
    crashed: List[int] = field(default_factory=list)  # crash-mask casualties
    fault_metrics: Optional[object] = None

    @property
    def unique_leader(self) -> bool:
        return len(self.leaders) == 1

    @property
    def elected_id(self) -> Optional[int]:
        return self.leader_ids[0] if self.unique_leader else None


class FastSyncNetwork:
    """An ``n``-clique executing one :class:`VectorAlgorithm` end to end."""

    def __init__(
        self,
        n: int,
        *,
        ids: Optional[Sequence[int]] = None,
        seed: int = 0,
        mode: str = "auto",
        exact_limit: int = 2048,
        max_rounds: Optional[int] = None,
        crashes: Optional[Sequence[Tuple[int, float]]] = None,
    ) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        if mode not in ("auto", "exact", "scale"):
            raise ValueError(f"mode must be auto|exact|scale, got {mode!r}")
        self.n = n
        self.seed = seed
        self.mode = ("exact" if n <= exact_limit else "scale") if mode == "auto" else mode
        if ids is None:
            id_array = np.arange(1, n + 1, dtype=np.int64)
        else:
            id_array = np.asarray(list(ids), dtype=np.int64)
            if id_array.shape != (n,):
                raise ValueError(f"need {n} IDs, got {id_array.shape}")
            if np.unique(id_array).size != n:
                raise ValueError("IDs must be distinct")
        self.ids = id_array
        self.max_rounds = max_rounds if max_rounds is not None else max(4096, 32 * n)

        if self.mode == "exact":
            # Mirror SyncNetwork's seeding schedule: one master stream,
            # one 64-bit draw per node, in node order.  (SyncNetwork only
            # skips its port-policy draw when a port map is supplied —
            # which is exactly how the twin run is constructed.)
            master = random.Random(seed)
            self._node_rngs = [random.Random(master.getrandbits(64)) for _ in range(n)]
            self._rng = np.random.default_rng(np.random.PCG64(seed))
            self._ports = self._random_port_matrix()
        else:
            self._node_rngs = None
            self._rng = np.random.default_rng(np.random.PCG64(seed))
            self._ports = None

        # Crash masks (the ROADMAP "array extension"): a deterministic
        # crash-stop schedule of (node, at-round) pairs, applied at the
        # start of round ``at`` exactly like the object engine's
        # CrashFault handling.  ``alive`` is the shared ground-truth
        # mask crash-aware algorithms filter senders/referees through.
        schedule: List[Tuple[float, int]] = []
        if crashes:
            seen_nodes = set()
            for node, at in crashes:
                node = int(node)
                if not 0 <= node < n:
                    raise ValueError(f"crash target {node} out of range for n={n}")
                if node in seen_nodes:
                    raise ValueError(f"node {node} is scheduled to crash twice")
                if at < 0:
                    raise ValueError("crash schedule entries need at >= 0")
                seen_nodes.add(node)
                schedule.append((float(at), node))
            if len(schedule) >= n:
                raise ValueError("cannot schedule every node to crash")
        self._crash_schedule = sorted(schedule)
        self._crash_idx = 0
        self.alive = np.ones(n, dtype=bool)
        self.crashed_at: Dict[int, float] = {}

        self.round = 0
        self.messages_total = 0
        self.last_send_round = 0
        self.messages_by_kind: Dict[str, int] = {}
        self.sends_by_round: Dict[int, int] = {}
        self._leaders: Optional[List[int]] = None
        self._decided_count = 0
        self._ran = False

    @property
    def has_crashes(self) -> bool:
        """Whether this run carries a crash schedule (mask path active)."""
        return bool(self._crash_schedule)

    # ------------------------------------------------------------------ #
    # port model

    def _random_port_matrix(self) -> np.ndarray:
        """An ``(n, n-1)`` matrix whose rows are random orderings of peers."""
        n = self.n
        if n == 1:
            return np.empty((1, 0), dtype=np.int64)
        keys = self._rng.random((n, n))
        np.fill_diagonal(keys, np.inf)  # self is never a peer: sorts last
        return np.argsort(keys, axis=1, kind="stable")[:, : n - 1]

    def port_map(self) -> ArrayPortMap:
        """The materialized mapping, for running an object-model twin.

        Only available in ``exact`` mode — ``scale`` mode never holds the
        ``O(n^2)`` matrix, by design.
        """
        if self._ports is None:
            raise RuntimeError(
                "port_map() needs mode='exact'; scale mode does not materialize "
                "the O(n^2) port matrix"
            )
        return ArrayPortMap(self._ports)

    # ------------------------------------------------------------------ #
    # round/message accounting (called by algorithms)

    def _apply_crash(self, node: int, at: float) -> None:
        """Crash-stop ``node`` (skipped if it would leave nobody alive)."""
        if self.alive[node] and int(self.alive.sum()) > 1:
            self.alive[node] = False
            self.crashed_at[node] = at

    def tick(self) -> int:
        """Advance the global round counter by one synchronous round.

        Scheduled crashes with ``at <= round`` take effect here — at the
        *start* of the round, before that round's deliveries and sends —
        matching the object engine's ``_apply_due_crashes`` semantics.
        """
        self.round += 1
        if self.round > self.max_rounds:
            raise SimulationLimitExceeded(
                f"no termination after {self.max_rounds} rounds (n={self.n})"
            )
        while (
            self._crash_idx < len(self._crash_schedule)
            and self._crash_schedule[self._crash_idx][0] <= self.round
        ):
            at, node = self._crash_schedule[self._crash_idx]
            self._crash_idx += 1
            self._apply_crash(node, at)
        return self.round

    def count_messages(self, count: int, kind: str) -> None:
        """Record ``count`` messages of ``kind`` sent in the current round."""
        if count <= 0:
            return
        count = int(count)
        self.messages_total += count
        self.last_send_round = self.round
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + count
        self.sends_by_round[self.round] = self.sends_by_round.get(self.round, 0) + count

    def decide(self, leader_nodes: Sequence[int], decided_count: Optional[int] = None) -> None:
        """Record the election outcome (every node has decided and halted)."""
        self._leaders = [int(u) for u in leader_nodes]
        self._decided_count = self.n if decided_count is None else int(decided_count)

    # ------------------------------------------------------------------ #
    # sampling primitives (mode-dependent)

    def first_ports(self, src: np.ndarray, m: int) -> np.ndarray:
        """Destinations of "send over ports ``0..m-1``" for each node in ``src``.

        Exact mode reads the materialized matrix (so repeated calls see
        the *same* ports, like the object engine); scale mode draws
        fresh distinct peers, the distribution a random port mapping
        induces on first use.
        """
        if m > self.n - 1:
            raise ValueError(f"cannot use {m} of {self.n - 1} ports")
        if self._ports is not None:
            return self._ports[src, :m]
        return self._distinct_targets(src, m)

    def sampled_targets(self, src: np.ndarray, m: int) -> np.ndarray:
        """Destinations of "send over ``m`` sampled ports" (``ctx.sample_ports``)."""
        if m > self.n - 1:
            raise ValueError(f"cannot sample {m} of {self.n - 1} ports")
        if self._node_rngs is not None:
            out = np.empty((len(src), m), dtype=np.int64)
            port_range = range(self.n - 1)
            for row, u in enumerate(src):
                ports = self._node_rngs[u].sample(port_range, m)
                out[row] = self._ports[u, ports]
            return out
        return self._distinct_targets(src, m)

    def bernoulli(self, p: float) -> np.ndarray:
        """One biased coin per node (all ``n`` nodes draw, in node order)."""
        if self._node_rngs is not None:
            return np.fromiter(
                (rng.random() < p for rng in self._node_rngs), dtype=bool, count=self.n
            )
        return self._rng.random(self.n) < p

    def rank_draws(self, src: np.ndarray, high: int) -> np.ndarray:
        """One uniform draw from ``[1, high]`` per node in ``src``.

        Scale mode caps ``high`` at ``2^62`` so draws stay in int64 —
        ranks only need to be near-collision-free, not exactly
        ``[n^4]``-distributed (exact mode keeps the true range).
        """
        if self._node_rngs is not None:
            return np.fromiter(
                (self._node_rngs[u].randrange(1, high + 1) for u in src),
                dtype=np.int64,
                count=len(src),
            )
        return self._rng.integers(1, min(high, 2**62) + 1, size=len(src), dtype=np.int64)

    def _distinct_targets(self, src: np.ndarray, m: int) -> np.ndarray:
        """``m`` distinct uniform peers (≠ self) per row, vectorized.

        Small ``m`` uses whole-matrix rejection (draw, detect duplicate
        rows, redraw those rows); large ``m`` switches to argpartition
        over per-row random keys, chunked so the key matrix never
        exceeds ~``_KEY_CHUNK_ELEMS`` floats.
        """
        n = self.n
        rows = len(src)
        if m == 0 or rows == 0:
            return np.empty((rows, m), dtype=np.int64)
        src_col = np.asarray(src, dtype=np.int64)[:, None]
        if m == n - 1:
            full = np.arange(n - 1, dtype=np.int64)[None, :]
            return full + (full >= src_col)
        if m * m <= 4 * n:
            draw = self._rng.integers(0, n - 1, size=(rows, m), dtype=np.int64)
            dst = draw + (draw >= src_col)
            if m > 1:
                pending = np.arange(rows)
                for _ in range(500):
                    chk = np.sort(dst[pending], axis=1)
                    bad = (chk[:, 1:] == chk[:, :-1]).any(axis=1)
                    if not bad.any():
                        break
                    pending = pending[bad]
                    draw = self._rng.integers(0, n - 1, size=(len(pending), m), dtype=np.int64)
                    dst[pending] = draw + (draw >= src_col[pending])
                else:  # pragma: no cover - statistically unreachable
                    raise RuntimeError("distinct-target rejection failed to converge")
            return dst
        out = np.empty((rows, m), dtype=np.int64)
        chunk = max(1, _KEY_CHUNK_ELEMS // n)
        src_flat = np.asarray(src, dtype=np.int64)
        for start in range(0, rows, chunk):
            stop = min(rows, start + chunk)
            keys = self._rng.random((stop - start, n))
            keys[np.arange(stop - start), src_flat[start:stop]] = np.inf
            out[start:stop] = np.argpartition(keys, m, axis=1)[:, :m]
        return out

    # ------------------------------------------------------------------ #
    # execution

    def run(self, algorithm) -> FastRunResult:
        """Execute ``algorithm`` once and summarize the run."""
        if self._ran:
            raise RuntimeError("a FastSyncNetwork is single-use, like SyncNetwork")
        if self.has_crashes and not getattr(algorithm, "supports_crashes", False):
            raise ValueError(
                f"{type(algorithm).__name__} has no crash-mask support; "
                "only crash-aware vectorized ports (improved_tradeoff) can run "
                "under a crash schedule — use the object engine with a FaultPlan "
                "for the other algorithms"
            )
        self._ran = True
        start = time.perf_counter()
        algorithm.run(self)
        wall = time.perf_counter() - start
        if self._leaders is None:
            raise RuntimeError(
                f"{type(algorithm).__name__}.run() returned without calling decide()"
            )
        # Post-quiescence crashes still happen (to the machines, not the
        # protocol), mirroring SyncNetwork's drain of pending crashes.
        while self._crash_idx < len(self._crash_schedule):
            at, node = self._crash_schedule[self._crash_idx]
            self._crash_idx += 1
            self._apply_crash(node, at)
        never_woke = sum(1 for at in self.crashed_at.values() if at <= 1)
        return FastRunResult(
            n=self.n,
            mode=self.mode,
            ids=[int(i) for i in self.ids],
            rounds_executed=self.round,
            messages=self.messages_total,
            last_send_round=self.last_send_round,
            leaders=list(self._leaders),
            leader_ids=[int(self.ids[u]) for u in self._leaders],
            decided_count=self._decided_count,
            awake_count=self.n - never_woke,
            halted_count=self._decided_count if self.has_crashes else self.n,
            messages_by_kind=dict(self.messages_by_kind),
            sends_by_round=dict(self.sends_by_round),
            wall_time_s=wall,
            crashed=sorted(self.crashed_at),
        )
