"""The vectorized fault runtime: one :class:`FaultPlan` drives all engines.

:class:`FastFaultRuntime` is the fast engine's counterpart of
:class:`repro.faults.runtime.FaultRuntime`.  It does **not** reimplement
the fault semantics — it *wraps* a real object-model runtime (same
``faults:{seed}`` / ``adversary:{seed}`` RNG streams, same drop budgets,
kill heap, tamper rules and metrics object) and drives it edge-by-edge
in the object engine's global send order whenever a per-edge decision
consumes randomness or mutates budget state.  Everything that is
RNG-free is vectorized:

* **partition masks** — component labels are materialized once per mask
  and whole edge batches are blocked with two gathers and a compare; the
  object runtime checks partitions *before* the stochastic link rules
  and consumes no randomness for blocked edges, so the vectorized check
  is not just faster but exactly stream-preserving;
* **honest, rule-free edges** — delivered via one ``np.repeat``;
* **link-rule matching** — which edges a rule *could* claim is computed
  in array form; only the matched, unblocked edges enter the Python loop
  that consumes the drop/duplication RNG stream (one
  ``FaultRuntime.deliveries`` call per edge, in send order);
* **Byzantine senders** — edges whose sender is adversarial go through
  ``AdversaryRuntime.deliver`` with the payload reconstructed as the
  object engine's tuple, so tamper budgets, replay memory and the
  adversary RNG stream advance identically.

Because the wrapped runtime sees the same decisions in the same order,
an exact-mode fast run under a plan is **bit-identical** to the object
engine's run of the same plan (``tests/test_twin_differential.py``), and
a scale-mode run consumes the identical fault/adversary streams on top
of its own port distribution.

Message *payloads* live in array form as ``(kind, *fields)`` column
batches: a compete batch is ``kind="compete"`` plus one int64 field
column (the competing ID), a rank broadcast carries two field columns,
a response carries none.  :meth:`FastFaultRuntime.deliver` returns the
surviving copies bucketed per kind — replayed stale payloads may come
back under a *different* kind than they were sent with, exactly like
the object engine's inbox, and the vectorized folds filter by kind just
as the per-node handlers do.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.fastsync.xp import xp as np

from repro.faults.plan import FaultPlan, PartitionMask
from repro.faults.runtime import FaultRuntime

__all__ = ["Delivered", "FastFaultRuntime", "delivered_total"]


class Delivered(NamedTuple):
    """One kind's delivered copies, in arrival (= global send) order.

    ``src``/``dst`` are int64 node-index arrays with one entry per
    delivered *copy* (duplicates appear twice, in FIFO positions);
    ``fields`` holds the payload columns after the kind tag.
    """

    src: np.ndarray
    dst: np.ndarray
    fields: Tuple[np.ndarray, ...]


def delivered_total(batches: Optional[Dict[str, Delivered]]) -> int:
    """How many copies a :meth:`FastFaultRuntime.deliver` call put in flight.

    This is the object engine's liveness currency: a round with zero
    active nodes still executes when the previous round left copies in
    ``_inboxes_next`` — even copies addressed to halted or crashed
    receivers — so the folds use this count to replicate the engine's
    termination rule exactly.
    """
    if not batches:
        return 0
    return int(sum(b.src.size for b in batches.values()))


class FastFaultRuntime:
    """Array-facing adapter around one object-model :class:`FaultRuntime`.

    The adapter is bound to a single run (``n`` nodes, one seed) just
    like the runtime it wraps.  ``inner`` stays a public attribute: the
    engine's result assembly reads ``inner.metrics`` and
    ``inner.crashed_at`` directly, so faulted fast results carry the
    very same :class:`~repro.faults.runtime.FaultMetrics` object an
    object-engine run would.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n: int,
        ids: Sequence[int],
        seed: int,
    ) -> None:
        plan.validate_for(n)
        self.plan = plan
        self.n = n
        self.inner = FaultRuntime(plan, n, [int(i) for i in ids], seed)
        self._labels: Dict[int, np.ndarray] = {}
        self._policy_kinds = frozenset(
            kind for policy in plan.policies for kind in policy.kinds
        )
        if plan.adversary is not None:
            byz = np.zeros(n, dtype=bool)
            for u in plan.adversary.byzantine:
                byz[u] = True
            self._byz_mask: Optional[np.ndarray] = byz
        else:
            self._byz_mask = None

    # ------------------------------------------------------------------ #
    # crash schedule (pass-through to the wrapped runtime)

    @property
    def metrics(self):
        return self.inner.metrics

    @property
    def crashed_at(self) -> Dict[int, float]:
        return self.inner.crashed_at

    def apply_due_crashes(self, alive: np.ndarray, now: float) -> None:
        """Apply scheduled crashes with ``at <= now`` to the alive mask.

        Mirrors ``SyncNetwork._apply_due_crashes``: the wrapped runtime
        arbitrates (protection, last-survivor rule) and records the
        casualty at the *current* round, exactly like the object
        engine's ``_crash(u)``.
        """
        for u in self.inner.due_crashes(now):
            if self.inner.approve_crash(u):
                alive[u] = False
                self.inner.note_crash(u, now)

    def drain_pending(self, alive: np.ndarray) -> None:
        """Post-quiescence crashes (mirrors the object engine's drain)."""
        for at, u in self.inner.drain_pending():
            if self.inner.approve_crash(u):
                alive[u] = False
                self.inner.note_crash(u, at)

    # ------------------------------------------------------------------ #
    # kill policies

    def observe_sends(
        self,
        now: float,
        senders: np.ndarray,
        kinds: Union[str, Sequence[str]],
    ) -> None:
        """Feed one round's sends to the kill policies, in send order.

        ``FaultRuntime.observe_send`` consumes no randomness and is
        idempotent per sender, so the batch is deduplicated to first
        occurrences; when every policy budget is spent (or no policy
        watches these kinds) the whole call is a no-op — which is what
        keeps the common fault-free-kind rounds at array speed.
        """
        if not self.plan.policies or self.inner.kills_remaining() == 0:
            return
        uniform = isinstance(kinds, str)
        if uniform and kinds not in self._policy_kinds:
            return
        inner = self.inner
        seen = set()
        for i, u in enumerate(np.asarray(senders).ravel()):
            u = int(u)
            kind = kinds if uniform else kinds[i]
            if (u, kind) in seen:
                continue
            seen.add((u, kind))
            inner.observe_send(now, u, kind)
            if inner.kills_remaining() == 0:
                return

    # ------------------------------------------------------------------ #
    # partitions

    def _component_labels(self, mask: PartitionMask) -> np.ndarray:
        """Per-node component label for ``mask`` (-1 = isolated)."""
        labels = self._labels.get(id(mask))
        if labels is None:
            labels = np.full(self.n, -1, dtype=np.int64)
            for c, comp in enumerate(mask.components):
                for u in comp:
                    labels[u] = c
            self._labels[id(mask)] = labels
        return labels

    def _blocked(self, src: np.ndarray, dst: np.ndarray, now: float) -> np.ndarray:
        """Which edges any active partition mask blocks (RNG-free)."""
        blocked = np.zeros(src.size, dtype=bool)
        for mask in self.plan.partitions:
            if not mask.active(now):
                continue
            labels = self._component_labels(mask)
            ls, ld = labels[src], labels[dst]
            blocked |= (ls < 0) | (ld < 0) | (ls != ld)
        return blocked

    def reachable_alive(self, u: int, now: float, alive: np.ndarray) -> int:
        """How many alive nodes (including ``u``) can still reach ``u``.

        The quorum veto's connectivity oracle: intersects the alive mask
        with ``u``'s component under every active partition mask.
        """
        ok = np.asarray(alive, dtype=bool).copy()
        for mask in self.plan.partitions:
            if not mask.active(now):
                continue
            labels = self._component_labels(mask)
            if labels[u] < 0:
                ok &= np.arange(self.n) == u
            else:
                ok &= labels == labels[u]
        ok &= np.asarray(alive, dtype=bool)
        return int(ok.sum())

    # ------------------------------------------------------------------ #
    # delivery

    def deliver(
        self,
        now: float,
        kinds: Union[str, Sequence[str]],
        src: np.ndarray,
        dst: np.ndarray,
        fields: Tuple[np.ndarray, ...] = (),
    ) -> Dict[str, Delivered]:
        """Push one round's send batch through the plan, in send order.

        ``src``/``dst`` list the attempted sends in the object engine's
        global order (sender ascending, port order within a sender);
        ``kinds`` is one kind string for a uniform batch or a per-edge
        sequence for interleaved batches (win/lose grants).  Returns the
        surviving copies bucketed by delivered kind — the caller filters
        receivers by *their* state at the delivery round, because the
        object engine burns fault randomness at send time even for
        messages a dead receiver will never read.
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        m = src.size
        if m == 0:
            return {}
        uniform = isinstance(kinds, str)
        plan = self.plan
        inner = self.inner
        copies = np.ones(m, dtype=np.int64)

        blocked = self._blocked(src, dst, now)
        if blocked.any():
            inner.metrics.partition_blocked += int(blocked.sum())
            copies[blocked] = 0

        if plan.links:
            matched = np.zeros(m, dtype=bool)
            for rule in plan.links:
                hit = np.ones(m, dtype=bool)
                if rule.kinds is not None:
                    if uniform:
                        if kinds not in rule.kinds:
                            continue
                    else:
                        hit &= np.fromiter(
                            (k in rule.kinds for k in kinds), dtype=bool, count=m
                        )
                if rule.src is not None:
                    hit &= src == rule.src
                if rule.dst is not None:
                    hit &= dst == rule.dst
                matched |= hit
            for i in np.nonzero(matched & ~blocked)[0]:
                kind = kinds if uniform else kinds[i]
                copies[i] = inner.deliveries(int(src[i]), int(dst[i]), kind, now)

        # Per-kind output buffers: (positions, src, dst, field columns).
        out: Dict[str, List[Tuple[int, int, int, Tuple[int, ...]]]] = {}
        byz_order: List[np.ndarray] = []
        if self._byz_mask is not None:
            byz_edges = np.nonzero(self._byz_mask[src] & (copies > 0))[0]
        else:
            byz_edges = np.empty(0, dtype=np.int64)
        if byz_edges.size:
            adversary = inner.adversary
            honest_copies = copies.copy()
            honest_copies[byz_edges] = 0
            for i in byz_edges:
                i = int(i)
                kind = kinds if uniform else kinds[i]
                payload = (kind,) + tuple(int(col[i]) for col in fields)
                for p in adversary.deliver(int(src[i]), int(dst[i]), payload, int(copies[i])):
                    out.setdefault(p[0], []).append(
                        (i, int(src[i]), int(dst[i]), tuple(p[1:]))
                    )
        else:
            honest_copies = copies

        pos = np.repeat(np.arange(m, dtype=np.int64), honest_copies)
        batches: Dict[str, Delivered] = {}
        if pos.size:
            hsrc, hdst = src[pos], dst[pos]
            hfields = tuple(col[pos] for col in fields)
            if uniform:
                batches[kinds] = Delivered(hsrc, hdst, hfields)
                honest_pos = {kinds: pos}
            else:
                honest_pos = {}
                kind_arr = np.asarray(list(kinds), dtype=object)[pos]
                for kind in dict.fromkeys(kind_arr.tolist()):
                    sel = kind_arr == kind
                    batches[kind] = Delivered(
                        hsrc[sel], hdst[sel], tuple(col[sel] for col in hfields)
                    )
                    honest_pos[kind] = pos[sel]
        else:
            honest_pos = {}

        if out:
            # Merge tampered copies with the honest batch per kind.  A
            # position carries entries from exactly one path (an edge is
            # honest xor Byzantine), so a stable sort on edge position
            # reconstructs the global arrival order.
            for kind, entries in out.items():
                b_pos = np.asarray([e[0] for e in entries], dtype=np.int64)
                b_src = np.asarray([e[1] for e in entries], dtype=np.int64)
                b_dst = np.asarray([e[2] for e in entries], dtype=np.int64)
                arity = len(entries[0][3])
                if any(len(e[3]) != arity for e in entries):
                    raise ValueError(
                        f"mixed payload arity for tampered kind {kind!r}"
                    )
                b_fields = tuple(
                    np.asarray([e[3][j] for e in entries], dtype=np.int64)
                    for j in range(arity)
                )
                have = batches.get(kind)
                if have is None:
                    batches[kind] = Delivered(b_src, b_dst, b_fields)
                    continue
                if len(have.fields) != arity:
                    raise ValueError(
                        f"mixed payload arity for tampered kind {kind!r}"
                    )
                all_pos = np.concatenate([honest_pos[kind], b_pos])
                order = np.argsort(all_pos, kind="stable")
                batches[kind] = Delivered(
                    np.concatenate([have.src, b_src])[order],
                    np.concatenate([have.dst, b_dst])[order],
                    tuple(
                        np.concatenate([have.fields[j], b_fields[j]])[order]
                        for j in range(arity)
                    ),
                )
        return batches
