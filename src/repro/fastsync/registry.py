"""Name-indexed registry of the vectorized algorithm ports.

Keys match :data:`repro.core.ALGORITHMS` so front-ends can treat
``engine="fast"`` as a drop-in engine selection for any algorithm that
has a vectorized twin (``repro.core.AlgorithmSpec.has_fast`` /
``make_fast`` wrap this lazily so the core registry keeps importing
without numpy).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.fastsync.algorithm import VectorAlgorithm
from repro.fastsync.algorithms import (
    VectorAdversarial2RoundElection,
    VectorAfekGafniElection,
    VectorImprovedTradeoffElection,
    VectorKutten16Election,
    VectorLasVegasElection,
    VectorSmallIdElection,
)

__all__ = ["FAST_ALGORITHMS", "get_fast_algorithm"]

FAST_ALGORITHMS: Dict[str, Callable[..., VectorAlgorithm]] = {
    "improved_tradeoff": VectorImprovedTradeoffElection,
    "afek_gafni": VectorAfekGafniElection,
    "las_vegas": VectorLasVegasElection,
    "small_id": VectorSmallIdElection,
    "kutten16": VectorKutten16Election,
    "adversarial_2round": VectorAdversarial2RoundElection,
}


def get_fast_algorithm(name: str) -> Callable[..., VectorAlgorithm]:
    """Look up a vectorized port; raises ``KeyError`` with suggestions."""
    try:
        return FAST_ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(FAST_ALGORITHMS))
        raise KeyError(
            f"no vectorized port of {name!r}; fast engine supports: {known}"
        ) from None
