"""Array-namespace seam for the vectorized kernels.

Every fastsync kernel (sampling, scatter, compaction) reaches numpy
through the :data:`xp` proxy instead of a hard ``import numpy as np``:

    from repro.fastsync.xp import xp as np

``xp`` resolves to a concrete array namespace **once per process**, the
first time a kernel touches it.  The default is numpy — and because the
proxy hands back the *actual* numpy attributes (cached on first lookup,
so hot paths pay one instance-``__dict__`` hit, not a call), the default
backend is bit-for-bit the engine PR 2 shipped.  Alternative backends
are selected *before* the first kernel runs:

* ``set_backend("cupy")`` — programmatic, e.g. at worker startup;
* ``REPRO_ARRAY_BACKEND=cupy`` in the environment (what the sweep
  scheduler forwards to its worker processes);
* :class:`repro.analysis.RunSpec`'s ``backend=`` field, which calls
  :func:`set_backend` inside the executing process.

``cupy`` is a drop-in numpy namespace, so a GPU run is a backend string,
not a rewrite.  ``torch`` is accepted as an *experimental* backend via
its numpy-compatibility layer; both are optional dependencies and
resolve to a guidance-carrying :class:`BackendUnavailable` when missing.
Once resolved, the backend is pinned for the life of the process —
re-selection raises instead of silently mixing array types mid-run.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Any, List, Optional

__all__ = [
    "xp",
    "BackendUnavailable",
    "SUPPORTED_BACKENDS",
    "available_backends",
    "backend_name",
    "set_backend",
]

#: Backends :func:`set_backend` accepts, in preference order.
SUPPORTED_BACKENDS = ("numpy", "cupy", "torch")

#: Environment variable consulted (once) at resolution time.
BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"


class BackendUnavailable(ImportError):
    """A selected array backend cannot be imported (with guidance)."""


_pending: Optional[str] = None  # set_backend() choice, pre-resolution
_resolved: Optional[Any] = None  # the namespace module, post-resolution
_resolved_name: Optional[str] = None


def _import_backend(name: str) -> Any:
    if name == "numpy":
        try:
            import numpy
        except ImportError as exc:
            raise BackendUnavailable(
                "array backend 'numpy' is not installed. The vectorized "
                "engine needs it: `pip install numpy` (or `pip install -e "
                "'.[fast]'` from a checkout)."
            ) from exc
        return numpy
    if name == "cupy":
        try:
            import cupy
        except ImportError as exc:
            raise BackendUnavailable(
                "array backend 'cupy' is not installed. Install a CUDA-"
                "matched wheel (e.g. `pip install cupy-cuda12x`) or drop "
                "the backend selection (REPRO_ARRAY_BACKEND / "
                "set_backend / RunSpec.backend) to use the numpy default."
            ) from exc
        return cupy
    if name == "torch":
        try:
            import torch._numpy as torch_numpy  # numpy-compat layer
        except ImportError as exc:
            raise BackendUnavailable(
                "array backend 'torch' is experimental and needs torch >= "
                "2.1 (its torch._numpy compatibility layer). Install torch "
                "or drop the backend selection to use the numpy default."
            ) from exc
        return torch_numpy
    raise BackendUnavailable(
        f"unknown array backend {name!r}; supported: "
        + ", ".join(SUPPORTED_BACKENDS)
    )


def _resolve() -> Any:
    global _resolved, _resolved_name
    if _resolved is None:
        name = _pending or os.environ.get(BACKEND_ENV_VAR) or "numpy"
        _resolved = _import_backend(name)
        _resolved_name = name
    return _resolved


def set_backend(name: str) -> None:
    """Select the array backend for this process (before kernels run).

    Idempotent for the already-active backend; raises ``RuntimeError``
    if a *different* backend has already been resolved — the namespace
    is process-wide state, and mixing array types mid-run is never what
    anyone wants.  Worker processes therefore call this (or inherit
    ``REPRO_ARRAY_BACKEND``) at startup, before their first cell.
    """
    global _pending
    if name not in SUPPORTED_BACKENDS:
        raise BackendUnavailable(
            f"unknown array backend {name!r}; supported: "
            + ", ".join(SUPPORTED_BACKENDS)
        )
    if _resolved_name is not None:
        if name != _resolved_name:
            raise RuntimeError(
                f"array backend already resolved to {_resolved_name!r} for "
                f"this process; select {name!r} before the first fastsync "
                "kernel runs (set_backend at startup, REPRO_ARRAY_BACKEND, "
                "or RunSpec.backend)"
            )
        return
    _pending = name


def backend_name() -> str:
    """The active backend's name (resolving it if necessary)."""
    _resolve()
    assert _resolved_name is not None
    return _resolved_name


def available_backends() -> List[str]:
    """Importable backends, cheaply probed (no imports triggered)."""
    return [
        name
        for name in SUPPORTED_BACKENDS
        if importlib.util.find_spec(name) is not None
    ]


class _ArrayNamespace:
    """Lazy attribute proxy over the resolved backend module.

    The first access of each attribute resolves the backend and caches
    the attribute on the instance, so subsequent lookups never re-enter
    ``__getattr__`` — kernel inner loops see plain numpy objects.
    """

    def __getattr__(self, attr: str) -> Any:
        value = getattr(_resolve(), attr)
        object.__setattr__(self, attr, value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = _resolved_name or f"unresolved (pending={_pending!r})"
        return f"<repro.fastsync.xp namespace: {state}>"


#: The namespace the kernels import (``from repro.fastsync.xp import xp as np``).
xp = _ArrayNamespace()


def _reset_for_tests() -> None:
    """Clear resolution state (tests only — never in production code)."""
    global _pending, _resolved, _resolved_name
    _pending = None
    _resolved = None
    _resolved_name = None
    xp.__dict__.clear()
