"""Fault injection, failure detectors, and fault-tolerant election.

This subsystem adds the crash-recovery axis to the reproduction: engines
accept a :class:`FaultPlan` (crash schedules, per-link message drop and
duplication, adversarial "kill the frontrunner" policies), nodes get
failure-detector oracles through their contexts, and two fault-tolerant
algorithms — :class:`MonarchicalElection` and the epoch-based
:class:`ReElectionElection` wrapper around any registered algorithm —
turn fault schedules into survivable failovers.  Everything is
deterministic per ``(seed, FaultPlan)``.
"""

from repro.faults.detectors import (
    EventuallyPerfectDetector,
    FailureDetector,
    PerfectDetector,
    make_detector,
)
from repro.faults.monarchical import (
    AsyncMonarchicalElection,
    MonarchicalElection,
    safe_stable_rounds,
)
from repro.faults.plan import (
    CrashFault,
    DetectorSpec,
    FaultPlan,
    LeaderKillPolicy,
    LinkFaults,
    PartitionMask,
)
from repro.faults.reelect import AsyncReElectionElection, ReElectionElection
from repro.faults.runner import FailoverReport, run_failover_trial
from repro.faults.runtime import FaultMetrics, FaultRuntime

__all__ = [
    "CrashFault",
    "LinkFaults",
    "PartitionMask",
    "LeaderKillPolicy",
    "DetectorSpec",
    "FaultPlan",
    "FaultMetrics",
    "FaultRuntime",
    "FailureDetector",
    "PerfectDetector",
    "EventuallyPerfectDetector",
    "make_detector",
    "MonarchicalElection",
    "AsyncMonarchicalElection",
    "safe_stable_rounds",
    "ReElectionElection",
    "AsyncReElectionElection",
    "FailoverReport",
    "run_failover_trial",
]
