"""Failure-detector oracles (Chandra–Toueg style) for the clique engines.

A failure detector is an *oracle*: each node owns one instance and may
query it at any point of its execution for the set of peers it currently
suspects to have crashed.  Suspicions are expressed in node **IDs**, and
the detector also exposes the membership (the sorted ID list) — the
fault-tolerant layer therefore runs in a known-membership (KT1-style)
variant of the model, unlike the paper's KT0 algorithms.  This deviation
is deliberate and documented in ``docs/MODEL.md``: crash-recovery
coordination without membership knowledge is a different (and much
harder) problem than the message-complexity tradeoffs the paper studies.

Two oracles are provided, mirroring the classic hierarchy:

* :class:`PerfectDetector` (P) — strong completeness + strong accuracy,
  modulo a fixed detection ``lag``: node ``u`` crashed at time ``t`` is
  suspected by every alive node exactly from ``t + lag`` on, and no
  alive node is ever suspected.  Because the lag is shared, all alive
  nodes transition to the new suspicion set *simultaneously*, which the
  re-election wrapper exploits to keep epochs synchronized.
* :class:`EventuallyPerfectDetector` (◇P) — before ``noise_horizon``
  each (observer, peer) pair may undergo one seed-deterministic *false
  suspicion window*, after which the peer is trusted again; from
  ``noise_horizon`` on the detector is perfect.  This is the standard
  increasing-timeout construction: early timeouts fire spuriously until
  the timeout outgrows the real message delay.

Queries against the ground truth are instrumented: the first time any
node's query reveals a crashed peer, the crash's *detection time* is
recorded in :class:`~repro.faults.runtime.FaultMetrics`, so measured
detection latency reflects actual query cadence, not just the configured
lag.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Tuple

from repro.faults.plan import DetectorSpec
from repro.faults.runtime import FaultRuntime

__all__ = [
    "FailureDetector",
    "PerfectDetector",
    "EventuallyPerfectDetector",
    "make_detector",
    "engine_detector",
]


class FailureDetector:
    """Base oracle: suspicion queries over the run's ground truth.

    When the fault plan carries :class:`~repro.faults.plan.PartitionMask`
    windows the oracle is *partition-aware*: from ``start + lag`` until
    ``end + lag`` a node also suspects every peer outside its component —
    a timeout detector cannot distinguish a crashed peer from an
    unreachable one.  Partition suspicions clear when the heal becomes
    visible (``end + lag``); crash suspicions never do.
    """

    def __init__(
        self,
        node: int,
        ids: List[int],
        runtime: Optional[FaultRuntime] = None,
        port_map=None,
        lag: float = 1.0,
        partitions: Tuple = (),
        slanders: Tuple = (),
    ) -> None:
        self.node = node
        self.ids = list(ids)
        self.membership: Tuple[int, ...] = tuple(sorted(ids))
        self.runtime = runtime
        self.port_map = port_map
        self.lag = lag
        self.partitions = tuple(partitions)
        self.slanders = tuple(slanders)

    # ------------------------------------------------------------------ #
    # the oracle interface algorithms use

    def suspects(self, now: float) -> FrozenSet[int]:
        """IDs of the peers this node currently suspects."""
        return frozenset(self.ids[u] for u in self._all_suspect_indices(now))

    def alive(self, now: float) -> List[int]:
        """Membership minus suspects, sorted ascending."""
        sus = self.suspects(now)
        return [i for i in self.membership if i not in sus]

    def trusted(self, now: float) -> int:
        """The monarchical trust rule: the maximum unsuspected ID."""
        alive = self.alive(now)
        if not alive:
            # Cannot happen under the runtime's last-survivor guard; a
            # fully-noisy ◇P could still reach it, so fail loudly.
            raise RuntimeError("detector suspects the entire membership")
        return alive[-1]

    def live_ports(self, now: float) -> List[int]:
        """Ports of this node that lead to unsuspected peers, ascending.

        Resolving every port materializes the (lazy) port map for this
        node — oracle power the fault-tolerant wrappers are allowed, see
        the module docstring.  Requires the engine to have attached a
        port map.
        """
        if self.port_map is None:
            raise RuntimeError("detector has no port map attached")
        suspected = self._all_suspect_indices(now)
        return [
            port
            for port in range(len(self.ids) - 1)
            if self.port_map.peer(self.node, port) not in suspected
        ]

    def last_transition(self, now: float) -> float:
        """When the (ground-truth) suspicion set last changed; 0 if never.

        For a perfect detector this is the detection time of the newest
        crash — or partition start/heal — already visible at ``now``: the
        epoch start the re-election wrapper renumbers inner rounds from.
        """
        times = []
        if self.runtime is not None:
            times.extend(
                when + self.lag
                for when in self.runtime.crashed_at.values()
                if when + self.lag <= now
            )
        for mask in self.partitions:
            if mask.start + self.lag <= now:
                times.append(mask.start + self.lag)
            if mask.end is not None and mask.end + self.lag <= now:
                times.append(mask.end + self.lag)
        for window in self.slanders:
            if self._slander_dead(window):
                continue
            if window.start + self.lag <= now:
                times.append(window.start + self.lag)
            if window.end is not None and window.end + self.lag <= now:
                times.append(window.end + self.lag)
        return max(times, default=0.0)

    # ------------------------------------------------------------------ #
    # ground truth plumbing

    def _partition_suspect_indices(self, now: float) -> FrozenSet[int]:
        """Peers currently unreachable behind an active partition mask.

        The visibility window is the mask window shifted by the
        detection lag: separation becomes suspected at ``start + lag``
        and is forgiven at ``end + lag``.
        """
        if not self.partitions:
            return frozenset()
        suspected = set()
        for mask in self.partitions:
            if now < mask.start + self.lag:
                continue
            if mask.end is not None and now >= mask.end + self.lag:
                continue
            for peer in range(len(self.ids)):
                if peer != self.node and mask.separates(self.node, peer):
                    suspected.add(peer)
        return frozenset(suspected)

    def _slander_dead(self, window) -> bool:
        """Whether the accuser crashed before its rumor could spread."""
        if self.runtime is None:
            return False
        crashed = self.runtime.crashed_at.get(window.accuser)
        return crashed is not None and crashed <= window.start

    def _slander_suspect_indices(self, now: float) -> FrozenSet[int]:
        """Alive peers falsely suspected through an active slander window.

        The rumor is believed network-wide for the lag-shifted window —
        a timeout detector cannot refute a unilateral "X is dead" claim
        — except by the victims themselves, who keep trusting their own
        pulse.  A slander dies with its accuser: windows whose accuser
        crashed at or before their start never open.
        """
        if not self.slanders:
            return frozenset()
        suspected = set()
        for window in self.slanders:
            if not window.active(now, self.lag) or self._slander_dead(window):
                continue
            for victim in window.victims:
                if victim != self.node and victim < len(self.ids):
                    suspected.add(victim)
        return frozenset(suspected)

    def _all_suspect_indices(self, now: float) -> FrozenSet[int]:
        """Crash/noise suspicions plus partition separations plus slander."""
        return (
            self._suspect_indices(now)
            | self._partition_suspect_indices(now)
            | self._slander_suspect_indices(now)
        )

    def _crashed_indices(self, now: float) -> FrozenSet[int]:
        """Crashes old enough to have been detected (crash + lag <= now)."""
        if self.runtime is None:
            return frozenset()
        detected = frozenset(
            u
            for u, when in self.runtime.crashed_at.items()
            if when + self.lag <= now
        )
        for u in detected:
            self.runtime.note_suspicion(u, now)
        return detected

    def _suspect_indices(self, now: float) -> FrozenSet[int]:
        raise NotImplementedError


class PerfectDetector(FailureDetector):
    """P: never wrong, complete after ``lag``."""

    def _suspect_indices(self, now: float) -> FrozenSet[int]:
        return self._crashed_indices(now)


class EventuallyPerfectDetector(FailureDetector):
    """◇P: perfect after ``noise_horizon``, noisy (per observer) before."""

    def __init__(
        self,
        node: int,
        ids: List[int],
        runtime: Optional[FaultRuntime] = None,
        port_map=None,
        lag: float = 1.0,
        noise_horizon: float = 0.0,
        false_prob: float = 0.0,
        partitions: Tuple = (),
        slanders: Tuple = (),
    ) -> None:
        super().__init__(
            node, ids, runtime=runtime, port_map=port_map, lag=lag,
            partitions=partitions, slanders=slanders,
        )
        self.noise_horizon = noise_horizon
        self.false_prob = false_prob
        self._windows: Optional[List[Optional[Tuple[float, float]]]] = None

    def _false_windows(self) -> List[Optional[Tuple[float, float]]]:
        """One optional false-suspicion window per peer, seed-deterministic."""
        if self._windows is None:
            seed = self.runtime.seed if self.runtime is not None else 0
            windows: List[Optional[Tuple[float, float]]] = []
            for peer in range(len(self.ids)):
                if peer == self.node:
                    windows.append(None)
                    continue
                rng = random.Random(f"dP:{seed}:{self.node}:{peer}")
                if rng.random() >= self.false_prob:
                    windows.append(None)
                    continue
                start = rng.uniform(0.0, self.noise_horizon)
                end = rng.uniform(start, self.noise_horizon)
                windows.append((start, end))
            self._windows = windows
        return self._windows

    def _suspect_indices(self, now: float) -> FrozenSet[int]:
        suspected = set(self._crashed_indices(now))
        if now < self.noise_horizon and self.false_prob > 0.0:
            for peer, window in enumerate(self._false_windows()):
                if window is not None and window[0] <= now < window[1]:
                    suspected.add(peer)
        return frozenset(suspected)


def engine_detector(
    plan, node: int, ids: List[int], runtime: Optional[FaultRuntime], port_map=None
) -> FailureDetector:
    """Detector construction shared by both engines' ``detector_for``.

    ``plan`` may be ``None`` (no faults configured): the node then gets
    a default perfect detector over a crash-free ground truth.
    """
    spec = plan.detector if plan is not None else DetectorSpec()
    partitions = plan.partitions if plan is not None else ()
    slanders = plan.slanders if plan is not None else ()
    return make_detector(
        spec, node, ids, runtime, port_map=port_map, partitions=partitions,
        slanders=slanders,
    )


def make_detector(
    spec: DetectorSpec,
    node: int,
    ids: List[int],
    runtime: Optional[FaultRuntime],
    port_map=None,
    partitions: Tuple = (),
    slanders: Tuple = (),
) -> FailureDetector:
    """Instantiate the oracle described by a :class:`DetectorSpec`."""
    if spec.kind == "perfect":
        return PerfectDetector(
            node, ids, runtime=runtime, port_map=port_map, lag=spec.lag,
            partitions=partitions, slanders=slanders,
        )
    return EventuallyPerfectDetector(
        node,
        ids,
        runtime=runtime,
        port_map=port_map,
        lag=spec.lag,
        noise_horizon=spec.noise_horizon,
        false_prob=spec.false_prob,
        partitions=partitions,
        slanders=slanders,
    )
