"""Monarchical eventual leader election over a failure-detector oracle.

The classic textbook algorithm (Algo 2.6 / 2.8 of the reliable-broadcast
literature): every node trusts the *maximum unsuspected ID*.  With a
perfect detector this is crash-fault-tolerant leader election; with ◇P
it is eventual leader election (Ω-style): after the detector stabilizes,
all alive nodes trust the same alive node.

Simulation-shaped termination
-----------------------------

The textbook algorithm never terminates (trust may change forever).  To
fit the engines' run-to-quiescence model, a node commits its trust as an
irrevocable engine decision once the trust value has been *stable* for
``stable_rounds`` consecutive rounds (sync) or ``stable_polls`` detector
polls (async), then halts.  With a perfect detector and a finite crash
schedule this always terminates; with ◇P the stability window must
exceed the detector's ``noise_horizon`` or two nodes may commit
different leaders during the noisy prefix (eventual election is exactly
that weak — pick ``stable_rounds`` accordingly, see
:func:`safe_stable_rounds`).

Because detector output already carries IDs, followers can decide
*explicitly* (naming the leader) without any communication.  The leader
still broadcasts one ``("coord", id)`` announcement per reign — that is
the traffic failover metrics count, it wakes sleeping peers on the
asynchronous engine, and it mirrors what a datacenter coordinator would
actually do.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.sync.algorithm import Inbox, SyncAlgorithm

__all__ = [
    "MonarchicalElection",
    "AsyncMonarchicalElection",
    "safe_stable_rounds",
]

COORD = "coord"


def safe_stable_rounds(noise_horizon: float, lag: float) -> int:
    """A stability window that outlasts a ◇P detector's noisy prefix."""
    return int(math.ceil(noise_horizon + lag)) + 2


class MonarchicalElection(SyncAlgorithm):
    """Synchronous monarchical (eventual) leader election."""

    def __init__(self, stable_rounds: int = 4) -> None:
        if stable_rounds < 1:
            raise ValueError("need stable_rounds >= 1")
        self.stable_rounds = stable_rounds
        self.trust: Optional[int] = None
        self.stable = 0
        self.announced = False

    def on_round(self, ctx, inbox: Inbox) -> None:
        trust = ctx.detector.trusted(ctx.round)
        if trust != self.trust:
            self.trust = trust
            self.stable = 1
            self.announced = False
        else:
            self.stable += 1
        if trust == ctx.my_id and not self.announced and ctx.n > 1:
            ctx.broadcast((COORD, ctx.my_id))
            self.announced = True
        if self.stable >= self.stable_rounds:
            if trust == ctx.my_id:
                ctx.decide_leader()
            else:
                ctx.decide_follower(trust)
            ctx.halt()


class AsyncMonarchicalElection(AsyncAlgorithm):
    """Asynchronous monarchical election, paced by polling timers.

    Each node polls its detector every ``poll_interval`` time units and
    commits after ``stable_polls`` consecutive polls with an unchanged
    trust value.  Detection latency on this engine is therefore real:
    crash + detector lag + however long until the next poll.
    """

    POLL = "monarch-poll"

    def __init__(self, poll_interval: float = 0.5, stable_polls: int = 6) -> None:
        if poll_interval <= 0:
            raise ValueError("need poll_interval > 0")
        if stable_polls < 1:
            raise ValueError("need stable_polls >= 1")
        self.poll_interval = poll_interval
        self.stable_polls = stable_polls
        self.trust: Optional[int] = None
        self.stable = 0
        self.announced = False
        self.done = False

    def on_wake(self, ctx) -> None:
        if ctx.n == 1:
            ctx.decide_leader()
            ctx.halt()
            self.done = True
            return
        self._poll(ctx)
        if not self.done:
            ctx.set_timer(self.poll_interval, self.POLL)

    def on_message(self, ctx, port: int, payload: Any) -> None:
        # ``coord`` announcements carry no decision authority (the
        # detector does); their role is waking sleeping peers and
        # generating accountable failover traffic.
        return

    def on_timer(self, ctx, tag: Any) -> None:
        if tag != self.POLL or self.done:
            return
        self._poll(ctx)
        if not self.done:
            ctx.set_timer(self.poll_interval, self.POLL)

    def _poll(self, ctx) -> None:
        trust = ctx.detector.trusted(ctx.now)
        if trust != self.trust:
            self.trust = trust
            self.stable = 1
            self.announced = False
        else:
            self.stable += 1
        if trust == ctx.my_id and not self.announced:
            ctx.broadcast((COORD, ctx.my_id))
            self.announced = True
        if self.stable >= self.stable_polls:
            if trust == ctx.my_id:
                ctx.decide_leader()
            else:
                ctx.decide_follower(trust)
            ctx.halt()
            self.done = True
