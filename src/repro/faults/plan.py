"""Declarative, seed-reproducible fault schedules.

A :class:`FaultPlan` is the immutable description of *everything that can
go wrong* in one run: which nodes crash and when, which links drop or
duplicate messages, which adversarial policies may schedule additional
crashes while the run executes, and which failure-detector oracle the
surviving nodes are given.  The plan itself contains no randomness — all
stochastic choices (link-level drops, detector noise) are derived inside
:class:`repro.faults.runtime.FaultRuntime` from the run seed, so the same
``(seed, FaultPlan)`` pair always produces the same execution on a given
engine (see ``tests/test_fault_determinism.py``).

Time units follow the host engine: on the synchronous engine ``at`` is a
round number (the crash takes effect at the *start* of that round, before
deliveries); on the asynchronous engine ``at`` is a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "CrashFault",
    "LinkFaults",
    "PartitionMask",
    "LeaderKillPolicy",
    "DetectorSpec",
    "FaultPlan",
]


@dataclass(frozen=True)
class CrashFault:
    """Crash node ``node`` (index, not ID) at round/time ``at``.

    A crashed node takes no further steps, sends nothing, and every
    message or timer delivered to it afterwards is silently dropped —
    the classic crash-stop fault model.  Messages the node sent *before*
    crashing remain in flight (the network does not retract them).
    """

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("crash target must be a node index >= 0")
        if self.at < 0:
            raise ValueError("crash schedule entries need at >= 0")


@dataclass(frozen=True)
class LinkFaults:
    """Message-level drop/duplication on a (possibly wildcarded) link.

    ``src``/``dst`` are node indices; ``None`` means "any".  ``kinds``
    optionally restricts the rule to specific payload kinds (see
    :func:`repro.common.message_kind`).  The first rule whose scope
    matches a send decides its fate; later rules are ignored for that
    message.  Duplication delivers a second copy over the same link at
    the same nominal delivery time (the duplicate never overtakes — FIFO
    still holds).

    ``max_drops`` bounds how many messages the rule may drop over the
    whole run; after the budget is spent the rule stops dropping (it
    still claims matching messages and may still duplicate).  With
    ``drop_prob=1.0`` this gives deterministic *drop schedules* — "lose
    the first k ``ree_coord`` messages into node 3" — which is how the
    loss-tolerance regression tests pin their scenarios.
    """

    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None
    kinds: Optional[Tuple[str, ...]] = None
    max_drops: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        if self.drop_prob == 0.0 and self.duplicate_prob == 0.0:
            raise ValueError("a LinkFaults rule must drop or duplicate something")
        if self.max_drops is not None:
            if self.max_drops < 1:
                raise ValueError("max_drops must be >= 1 when set")
            if self.drop_prob == 0.0:
                raise ValueError("max_drops needs a positive drop_prob")

    def matches(self, src: int, dst: int, kind: str) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.kinds is not None and kind not in self.kinds:
            return False
        return True


@dataclass(frozen=True)
class PartitionMask:
    """Split the clique into components for a time window.

    While ``start <= now < end`` (``end=None``: for the rest of the run)
    every message whose endpoints sit in *different* components is
    silently discarded at send time — the network behaves like disjoint
    sub-cliques.  A node that appears in no component is *isolated*: it
    can reach nobody and nobody can reach it (useful for quarantining a
    single node without enumerating the rest).  Healing is automatic:
    once ``now >= end`` the mask stops matching and full connectivity
    returns; messages dropped during the window are gone (the network
    does not replay them).

    Partition drops are decided *before* the stochastic link rules and
    consume no randomness, so adding a mask never perturbs the drop/
    duplication RNG stream of an otherwise identical plan.  Detectors
    are partition-aware: from ``start + lag`` each node also suspects
    the peers outside its component (a timeout detector cannot tell a
    crashed peer from an unreachable one), which is what lets the
    re-election wrapper elect one leader *per component*.
    """

    components: Tuple[Tuple[int, ...], ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a PartitionMask needs at least one component")
        seen: Dict[int, int] = {}
        for c, comp in enumerate(self.components):
            if not comp:
                raise ValueError("partition components cannot be empty")
            for u in comp:
                if u < 0:
                    raise ValueError("component members must be node indices >= 0")
                if u in seen:
                    raise ValueError(f"node {u} appears in two partition components")
                seen[u] = c
        if self.start < 0:
            raise ValueError("partition start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("partition end must be after its start")
        object.__setattr__(self, "_component_of", seen)

    def component_of(self, u: int) -> Optional[int]:
        """The component index of node ``u`` (``None`` = isolated)."""
        return self._component_of.get(u)

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)

    def separates(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` sit in different components (time-free)."""
        cu = self._component_of.get(u)
        cv = self._component_of.get(v)
        return cu is None or cv is None or cu != cv

    def blocks(self, src: int, dst: int, now: float) -> bool:
        return self.active(now) and self.separates(src, dst)


@dataclass(frozen=True)
class LeaderKillPolicy:
    """Adversarial churn: crash whoever announces leadership first.

    The policy watches every send; when it sees a payload whose kind is
    in ``kinds`` (the announcement vocabulary of the registered
    algorithms plus the fault-tolerant wrappers), it schedules the
    *sender* — the current frontrunner — to crash ``delay`` rounds/time
    units later.  ``max_kills`` bounds the total number of crashes the
    policy may inject, so runs always terminate with at least one
    survivor (the runtime additionally refuses to crash the last alive
    node).
    """

    kinds: Tuple[str, ...] = ("leader", "elected", "announce", "coord", "ree_coord")
    delay: float = 1.0
    max_kills: int = 1

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError("kill delay must be > 0 (crashes apply strictly later)")
        if self.max_kills < 1:
            raise ValueError("max_kills must be >= 1")
        if not self.kinds:
            raise ValueError("policy needs at least one payload kind to watch")


@dataclass(frozen=True)
class DetectorSpec:
    """Which failure-detector oracle the nodes are given.

    * ``kind="perfect"`` — strong completeness and strong accuracy: a
      crashed node is suspected by every alive node exactly ``lag``
      rounds/time units after its crash, and alive nodes are never
      suspected.
    * ``kind="eventually_perfect"`` — ◇P à la the increasing-timeout
      detectors: before ``noise_horizon`` each (observer, peer) pair may
      additionally go through one *false-suspicion window* (probability
      ``false_prob``, drawn deterministically from the run seed); after
      ``noise_horizon`` the detector behaves exactly like the perfect
      one.  This models a timeout detector that wrongly suspects slow
      peers until its timeout has grown past the true message delay.
    """

    kind: str = "perfect"
    lag: float = 1.0
    noise_horizon: float = 0.0
    false_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("perfect", "eventually_perfect"):
            raise ValueError(f"unknown detector kind {self.kind!r}")
        if self.lag < 0:
            raise ValueError("detector lag must be >= 0")
        if self.kind == "perfect" and (self.noise_horizon or self.false_prob):
            raise ValueError("a perfect detector cannot have noise parameters")
        if not 0.0 <= self.false_prob <= 1.0:
            raise ValueError("false_prob must be in [0, 1]")
        if self.false_prob > 0 and self.noise_horizon <= 0:
            raise ValueError("false suspicions need a positive noise_horizon")


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule for one run.

    ``protect`` lists node indices the runtime must never crash (useful
    to pin a known survivor in adversarial sweeps).  Independently of
    ``protect``, the runtime refuses any crash that would leave zero
    alive nodes.

    ``adversary`` optionally attaches a Byzantine
    :class:`~repro.adversary.plan.AdversaryPlan` — message tampering and
    detector slander on top of the crash/omission schedule.  The import
    is deferred so the crash-only fault layer keeps zero dependencies on
    the adversary package.
    """

    crashes: Tuple[CrashFault, ...] = ()
    links: Tuple[LinkFaults, ...] = ()
    partitions: Tuple[PartitionMask, ...] = ()
    policies: Tuple[LeaderKillPolicy, ...] = ()
    detector: DetectorSpec = field(default_factory=DetectorSpec)
    protect: Tuple[int, ...] = ()
    adversary: Optional[Any] = None

    def __post_init__(self) -> None:
        seen = set()
        for crash in self.crashes:
            if crash.node in seen:
                raise ValueError(f"node {crash.node} is scheduled to crash twice")
            seen.add(crash.node)
        if seen & set(self.protect):
            raise ValueError("a node cannot be both protected and scheduled to crash")
        if self.adversary is not None:
            from repro.adversary.plan import AdversaryPlan

            if not isinstance(self.adversary, AdversaryPlan):
                raise ValueError(
                    "FaultPlan.adversary must be a repro.adversary.AdversaryPlan, "
                    f"got {type(self.adversary).__name__}"
                )

    @property
    def has_link_faults(self) -> bool:
        return bool(self.links)

    @property
    def has_partitions(self) -> bool:
        return bool(self.partitions)

    @property
    def has_adversary(self) -> bool:
        return self.adversary is not None

    @property
    def slanders(self) -> Tuple:
        """The adversary's slander windows (empty without an adversary)."""
        return self.adversary.slanders if self.adversary is not None else ()

    def validate_for(self, n: int) -> None:
        """Check node indices against a concrete clique size."""
        for crash in self.crashes:
            if crash.node >= n:
                raise ValueError(f"crash target {crash.node} out of range for n={n}")
        if len(self.crashes) >= n:
            raise ValueError("cannot schedule every node to crash")
        for u in self.protect:
            if not 0 <= u < n:
                raise ValueError(f"protected node {u} out of range for n={n}")
        for rule in self.links:
            for endpoint in (rule.src, rule.dst):
                if endpoint is not None and not 0 <= endpoint < n:
                    raise ValueError(f"link rule endpoint {endpoint} out of range")
        for mask in self.partitions:
            for comp in mask.components:
                for u in comp:
                    if u >= n:
                        raise ValueError(
                            f"partition component member {u} out of range for n={n}"
                        )
        if self.adversary is not None:
            self.adversary.validate_for(n)
