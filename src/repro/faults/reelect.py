"""Epoch-based re-election: run any registered election, survive crashes.

The wrapper turns a crash-oblivious clique election (anything in
:data:`repro.core.ALGORITHMS`) into a crash-tolerant one, following the
fast-path / recovery-path split used by real coordination services: the
paper's message-optimal algorithm runs untouched while nothing fails,
and a detector-triggered *epoch restart* re-runs it from scratch among
the survivors whenever the membership shrinks.

Mechanics
---------

* **Epochs.**  A node's epoch is the size of its detector's suspicion
  set.  With a :class:`~repro.faults.detectors.PerfectDetector` every
  alive node observes each crash at exactly the same round/at the same
  oracle time, so epoch numbers are globally consistent without any
  agreement protocol.  (The wrapper is specified for perfect detectors;
  under ◇P epochs can diverge during the noisy prefix.)
* **Sub-clique virtualization.**  At each epoch start the wrapper asks
  the detector which of its ports lead to unsuspected peers
  (:meth:`~repro.faults.detectors.FailureDetector.live_ports` — oracle
  power, see ``docs/MODEL.md``) and presents the inner algorithm with a
  *virtual clique* of the ``n' = n - crashed`` survivors: virtual ports
  ``0 .. n'-2``, ``ctx.n == n'``, and rounds renumbered from the epoch
  start.  The inner algorithm therefore runs on a perfectly healthy
  clique and keeps its correctness guarantees verbatim; the wrapper
  never needs to know how it works inside.
* **Tagging.**  Inner messages travel as ``("ree", epoch, attempt,
  payload)``; anything tagged with a stale epoch or attempt is dropped
  on receipt (a crashed leader's last words cannot pollute the next
  epoch, and a timed-out attempt's stragglers cannot pollute the
  retry).
* **Commit.**  When the inner algorithm elects, the winner broadcasts
  ``("ree_coord", epoch, id)`` to the survivors and every node commits —
  turns its tentative leader into an irrevocable engine decision — only
  after ``commit_rounds`` further rounds (``commit_delay`` time units on
  the asynchronous engine) without a new suspicion.  A crash detected
  inside the commit window aborts the commit everywhere and starts the
  next epoch, which is what makes "kill the frontrunner the moment it
  declares victory" survivable.
* **Lossy links.**  The coord broadcast is *retransmitted* every
  commit-window round (every poll tick on the asynchronous engine) and
  once more at commit — a bounded ``commit_rounds + 1`` copies per link
  — so a dropped ``ree_coord`` message, or any loss burst shorter than
  the commit window, cannot leave a follower wedged without a leader.
  Followers ignore duplicate coords, so retransmission costs messages
  but never correctness (regression: ``tests/test_fault_reelect.py``,
  lossy-commit cases).
* **Epoch-restart timeout (attempts).**  Loss on *inner* algorithm
  messages used to wedge an epoch forever: the inner election stalls
  waiting for a reply the network dropped, no coord is ever announced,
  and the run only ends at the engine's round limit.  Each epoch is now
  divided into bounded *attempts* of ``restart_rounds`` rounds
  (``restart_delay`` time units on the asynchronous engine): a node
  that reaches the attempt boundary without a tentative leader discards
  the stalled inner instance and re-runs the inner election from
  scratch, tagging messages with the new attempt number.  On the
  synchronous engine the attempt number is *computed* from the globally
  consistent epoch start (``(round - epoch_start) // restart_rounds``),
  so all undecided nodes switch attempts in lockstep; on the
  asynchronous engine restart timers fire per node and stragglers catch
  up when they see a higher attempt tag.  Nodes holding a tentative
  leader never restart — the commit retransmit path already covers
  them.  ``restart_rounds=0`` disables the timeout (the pre-fix
  behavior); ``None`` picks an adaptive default generous enough that it
  only fires on genuine stalls.

Any crash — leader or not — advances the epoch: membership changed, so
the election re-runs among the new survivor set.  That keeps the epoch
counter equal to the suspicion-set size at every node, which is the
whole synchronization argument.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.asyncnet.algorithm import AsyncAlgorithm
from repro.common import Decision
from repro.sync.algorithm import Inbox, SyncAlgorithm

__all__ = ["ReElectionElection", "AsyncReElectionElection"]

TAG = "ree"
COORD = "ree_coord"


def _resolve_factory(
    inner: Union[str, Callable[[], Any]], inner_params: Optional[Dict[str, Any]]
) -> Callable[[], Any]:
    """Accept a registry name or a zero-argument factory."""
    if callable(inner):
        if inner_params:
            raise ValueError("inner_params only apply to registry names")
        return inner
    from repro.core import get_algorithm  # deferred: registry imports us

    spec = get_algorithm(inner)
    return spec.make(**(inner_params or {}))


# --------------------------------------------------------------------- #
# synchronous wrapper


class _SyncSubClique:
    """Virtual survivor-clique context handed to the inner algorithm."""

    def __init__(self, owner: "ReElectionElection", ctx, live_ports: List[int]):
        self._owner = owner
        self._ctx = ctx
        self._v2r = live_ports  # virtual port -> real port
        self.n = len(live_ports) + 1
        self.my_id = ctx.my_id
        self.node = ctx.node
        self.rng = ctx.rng
        self.round = 0  # virtual (epoch-relative); owner refreshes it
        self.wake_round = 0
        self._decision: Optional[Decision] = None

    # topology ---------------------------------------------------------- #

    @property
    def port_count(self) -> int:
        return self.n - 1

    def all_ports(self) -> range:
        return range(self.n - 1)

    def sample_ports(self, m: int) -> List[int]:
        if m > self.port_count:
            raise ValueError(f"cannot sample {m} of {self.port_count} ports")
        return self.rng.sample(range(self.port_count), m)

    # communication ------------------------------------------------------ #

    def send(self, port: int, payload: Any) -> None:
        self._ctx.send(
            self._v2r[port], (TAG, self._owner.epoch, self._owner.attempt, payload)
        )

    def send_many(self, ports, payload: Any) -> None:
        for port in ports:
            self.send(port, payload)

    def broadcast(self, payload: Any) -> None:
        self.send_many(range(self.port_count), payload)

    # decisions ---------------------------------------------------------- #

    @property
    def decision(self) -> Optional[Decision]:
        return self._decision

    def decide_leader(self) -> None:
        self._decision = Decision.LEADER
        self._owner._inner_elected(self._ctx)

    def decide_follower(self, leader_id: Optional[int] = None) -> None:
        self._decision = Decision.NON_LEADER
        self._owner._inner_followed(leader_id)

    def halt(self) -> None:
        self._owner.inner_halted = True


class ReElectionElection(SyncAlgorithm):
    """Synchronous re-election wrapper (see module docstring)."""

    def __init__(
        self,
        inner: Union[str, Callable[[], Any]] = "afek_gafni",
        commit_rounds: int = 4,
        restart_rounds: Optional[int] = None,
        inner_params: Optional[Dict[str, Any]] = None,
        **extra_inner_params: Any,
    ) -> None:
        if commit_rounds < 1:
            raise ValueError("need commit_rounds >= 1")
        if restart_rounds is not None and restart_rounds < 0:
            raise ValueError("restart_rounds must be >= 0 (0 disables the timeout)")
        params = dict(inner_params or {})
        params.update(extra_inner_params)
        self.factory = _resolve_factory(inner, params if params else None)
        self.commit_rounds = commit_rounds
        self.restart_rounds = restart_rounds
        self.epoch = -1
        self.attempt = 0
        self.inner: Optional[SyncAlgorithm] = None
        self.proxy: Optional[_SyncSubClique] = None
        self.inner_halted = False
        self.epoch_start = 1
        self.attempt_start = 1
        self.tentative: Optional[int] = None
        self.commit_left: Optional[int] = None
        self.pending_coord_round: Optional[int] = None
        self.leader_hint: Optional[int] = None
        self.abstained = False
        self.epochs_run = 0
        self.attempts_run = 0

    # ------------------------------------------------------------------ #
    # wrapper <- inner callbacks

    def _inner_elected(self, ctx) -> None:
        # Announce over the survivor ports; activate my own tentative
        # one round later, in lockstep with the followers receiving it.
        assert self.proxy is not None
        ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))
        self.pending_coord_round = ctx.round + 1

    def _inner_followed(self, leader_id: Optional[int]) -> None:
        if leader_id is not None:
            self.leader_hint = leader_id

    # ------------------------------------------------------------------ #
    # subclass hooks (the quorum wrapper overrides these; see
    # repro.adversary.quorum for the Byzantine-tolerant variant)

    def _coord_ports(self):
        """Real ports the coord broadcast travels over (base: survivors)."""
        return self.proxy._v2r

    def _admit_epoch(self, ctx) -> bool:
        """Whether this node may elect in the freshly started epoch.

        Called after the survivor sub-clique is built but before the
        inner algorithm wakes; returning ``False`` makes the node
        abstain — it decides NON_LEADER (naming nobody) and halts.  The
        base wrapper always runs the election; the quorum wrapper gates
        on majority membership.
        """
        return True

    def _commit_ready(self, ctx) -> bool:
        """Whether the commit countdown may advance this round (base: yes)."""
        return True

    def _handle_coord(self, ctx, port: int, payload) -> None:
        """React to a coord announcement (base: adopt same-epoch leaders)."""
        _tag, epoch, leader_id = payload
        if epoch == self.epoch and self.tentative is None:
            self.tentative = leader_id
            self.commit_left = self.commit_rounds

    def _handle_extra(self, ctx, port: int, payload) -> None:
        """React to wrapper-level kinds beyond TAG/COORD (base: none)."""

    def _abstain(self, ctx) -> None:
        """Opt out of the current run: no leader can be elected here."""
        self.abstained = True
        self.inner = None
        self.inner_halted = True
        self.tentative = None
        self.commit_left = None
        self.pending_coord_round = None
        if ctx.decision is None:
            ctx.decide_follower(None)
        ctx.halt()

    # ------------------------------------------------------------------ #
    # epoch machinery

    def _restart_window(self, ctx) -> int:
        """Rounds per attempt; 0 disables the epoch-restart timeout.

        The adaptive default is far beyond any healthy inner election
        (the registered algorithms finish in O(ell) rounds), so it only
        fires on genuine loss-induced stalls.
        """
        if self.restart_rounds is not None:
            return self.restart_rounds
        return max(64, 2 * ctx.n)

    def _wake_inner(self, ctx) -> None:
        """(Re)instantiate the inner algorithm for the current attempt."""
        self.inner = self.factory()
        self.inner_halted = False
        self.proxy._decision = None
        self.proxy.round = ctx.round - self.attempt_start + 1
        self.proxy.wake_round = self.proxy.round
        self.attempts_run += 1
        self.inner.on_wake(self.proxy)

    def _restart(self, ctx, suspects: frozenset) -> None:
        self.epoch = len(suspects)
        self.epochs_run += 1
        self.epoch_start = max(1, int(ctx.detector.last_transition(ctx.round)))
        self.attempt = 0
        self.attempt_start = self.epoch_start
        self.inner_halted = False
        self.tentative = None
        self.commit_left = None
        self.pending_coord_round = None
        self.leader_hint = None
        live = ctx.detector.live_ports(ctx.round)
        self.proxy = _SyncSubClique(self, ctx, live)
        self._r2v = {real: v for v, real in enumerate(live)}
        if not self._admit_epoch(ctx):
            self._abstain(ctx)
            return
        if self.proxy.n == 1:
            # Sole survivor: nothing to elect.
            self.inner = None
            self.inner_halted = True
            self.tentative = ctx.my_id
            self.commit_left = self.commit_rounds
            return
        self._wake_inner(ctx)

    def _maybe_restart_attempt(self, ctx) -> None:
        """Bounded epoch-restart: retry a stalled inner election.

        The due attempt number is a pure function of the (globally
        consistent) epoch start and the round number, so every node that
        is still leaderless switches attempts in the same round and the
        retry runs on a consistently tagged sub-clique.  Nodes already
        holding (or announcing) a tentative leader stay on their attempt
        — the commit retransmit path delivers the coord to restarted
        peers, which then commit as followers.
        """
        window = self._restart_window(ctx)
        if window <= 0 or self.inner is None:
            return
        if self.tentative is not None or self.pending_coord_round is not None:
            return
        due = (ctx.round - self.epoch_start) // window
        if due > self.attempt:
            self.attempt = due
            self.attempt_start = self.epoch_start + due * window
            self._wake_inner(ctx)

    def on_wake(self, ctx) -> None:
        self._restart(ctx, ctx.detector.suspects(ctx.round))

    def on_round(self, ctx, inbox: Inbox) -> None:
        suspects = ctx.detector.suspects(ctx.round)
        if len(suspects) > self.epoch:
            self._restart(ctx, suspects)
        if self.abstained:
            return
        # Activate my own leadership announcement (symmetric with the
        # round in which followers receive the coord broadcast).
        if (
            self.pending_coord_round is not None
            and ctx.round >= self.pending_coord_round
        ):
            self.tentative = ctx.my_id
            self.commit_left = self.commit_rounds
            self.pending_coord_round = None
        # Bounded epoch-restart timeout: stale-attempt traffic delivered
        # this round is dropped by the routing filter below.
        self._maybe_restart_attempt(ctx)
        # Route the inbox: current-epoch/attempt inner traffic is
        # translated onto the virtual sub-clique, stale tags are dropped.
        inner_inbox: List[Tuple[int, Any]] = []
        for port, payload in inbox:
            kind = payload[0]
            if kind == TAG:
                _tag, epoch, attempt, inner_payload = payload
                if (
                    epoch == self.epoch
                    and attempt == self.attempt
                    and not self.inner_halted
                ):
                    virtual = self._r2v.get(port)
                    if virtual is not None:
                        inner_inbox.append((virtual, inner_payload))
            elif kind == COORD:
                self._handle_coord(ctx, port, payload)
            else:
                self._handle_extra(ctx, port, payload)
        if self.inner is not None and not self.inner_halted:
            self.proxy.round = ctx.round - self.attempt_start + 1
            self.inner.on_round(self.proxy, inner_inbox)
        # Commit countdown: crash-free rounds since the announcement.
        # The countdown only advances while _commit_ready holds (always,
        # for the base wrapper; quorum-satisfied, for the quorum one) —
        # a stalled countdown keeps retransmitting so missing acks or
        # lost coords can still arrive.
        if self.commit_left is not None:
            if self._commit_ready(ctx):
                self.commit_left -= 1
                if self.commit_left <= 0:
                    if self.tentative == ctx.my_id:
                        # Final retransmit at commit: a follower that lost
                        # every window copy still learns the leader.
                        ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))
                        ctx.decide_leader()
                    else:
                        ctx.decide_follower(self.tentative)
                    ctx.halt()
                    return
            if self.commit_left > 0 and self.tentative == ctx.my_id:
                # Bounded retransmit (commit_rounds - 1 copies): the links
                # are not assumed reliable, so the coord broadcast is
                # repeated every commit-window round.  Any single lost
                # ree_coord message — or any burst shorter than the
                # window — can no longer wedge the epoch with a follower
                # that never learns its leader (ROADMAP: message-loss-
                # tolerant re-election).  Followers treat duplicates as
                # no-ops, so retransmits only cost messages.
                ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))


# --------------------------------------------------------------------- #
# asynchronous wrapper


class _AsyncSubClique:
    """Virtual survivor-clique context for asynchronous inner algorithms."""

    def __init__(self, owner: "AsyncReElectionElection", ctx, live_ports: List[int]):
        self._owner = owner
        self._ctx = ctx
        self._v2r = live_ports
        self.n = len(live_ports) + 1
        self.my_id = ctx.my_id
        self.node = ctx.node
        self.rng = ctx.rng
        self.wake_time = ctx.now
        self._decision: Optional[Decision] = None

    @property
    def now(self) -> float:
        return self._ctx.now

    @property
    def port_count(self) -> int:
        return self.n - 1

    def sample_ports(self, m: int) -> List[int]:
        if m > self.port_count:
            raise ValueError(f"cannot sample {m} of {self.port_count} ports")
        return self.rng.sample(range(self.port_count), m)

    def send(self, port: int, payload: Any) -> None:
        self._ctx.send(
            self._v2r[port], (TAG, self._owner.epoch, self._owner.attempt, payload)
        )

    def send_many(self, ports, payload: Any) -> None:
        for port in ports:
            self.send(port, payload)

    def broadcast(self, payload: Any) -> None:
        self.send_many(range(self.port_count), payload)

    @property
    def decision(self) -> Optional[Decision]:
        return self._decision

    def decide_leader(self) -> None:
        self._decision = Decision.LEADER
        self._owner._inner_elected(self._ctx)

    def decide_follower(self, leader_id: Optional[int] = None) -> None:
        self._decision = Decision.NON_LEADER
        self._owner._inner_followed(leader_id)

    def halt(self) -> None:
        self._owner.inner_halted = True


class AsyncReElectionElection(AsyncAlgorithm):
    """Asynchronous re-election wrapper.

    Epoch transitions are discovered by polling the detector every
    ``poll_interval`` time units (and opportunistically whenever a
    higher-epoch message arrives — the oracle is global, so a higher tag
    proves the suspicion is already visible).  Commits are armed by a
    ``commit_delay`` timer and verified against the epoch on expiry.

    For every planned crash to abort the right commit, choose
    ``commit_delay`` greater than ``detector lag + 1 (max message delay)
    + poll_interval``.
    """

    POLL = "reelect-poll"
    COMMIT = "reelect-commit"
    RESTART = "reelect-restart"

    def __init__(
        self,
        inner: Union[str, Callable[[], Any]] = "async_tradeoff",
        commit_delay: float = 4.0,
        poll_interval: float = 0.5,
        restart_delay: Optional[float] = None,
        inner_params: Optional[Dict[str, Any]] = None,
        **extra_inner_params: Any,
    ) -> None:
        if commit_delay <= 0 or poll_interval <= 0:
            raise ValueError("commit_delay and poll_interval must be > 0")
        if restart_delay is not None and restart_delay < 0:
            raise ValueError("restart_delay must be >= 0 (0 disables the timeout)")
        params = dict(inner_params or {})
        params.update(extra_inner_params)
        self.factory = _resolve_factory(inner, params if params else None)
        self.commit_delay = commit_delay
        self.poll_interval = poll_interval
        if restart_delay is None:
            # Adaptive: far beyond a healthy inner election's time span
            # (delays are <= 1 per hop), so it only fires on stalls.
            restart_delay = max(64.0, 8.0 * commit_delay)
        self.restart_delay = restart_delay
        self.epoch = -1
        self.attempt = 0
        self.inner: Optional[AsyncAlgorithm] = None
        self.proxy: Optional[_AsyncSubClique] = None
        self.inner_halted = False
        self.tentative: Optional[int] = None
        self.commit_token: Optional[Tuple[int, int]] = None
        self.leader_hint: Optional[int] = None
        self.done = False
        self.epochs_run = 0
        self.attempts_run = 0

    # ------------------------------------------------------------------ #
    # wrapper <- inner callbacks

    def _inner_elected(self, ctx) -> None:
        assert self.proxy is not None
        ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))
        self._arm_commit(ctx, ctx.my_id)

    def _inner_followed(self, leader_id: Optional[int]) -> None:
        if leader_id is not None:
            self.leader_hint = leader_id

    def _arm_commit(self, ctx, leader_id: int) -> None:
        self.tentative = leader_id
        self.commit_token = (self.epoch, leader_id)
        ctx.set_timer(self.commit_delay, (self.COMMIT, self.epoch, leader_id))

    # ------------------------------------------------------------------ #
    # subclass hooks (see ReElectionElection and repro.adversary.quorum)

    def _coord_ports(self):
        """Real ports the coord broadcast travels over (base: survivors)."""
        return self.proxy._v2r

    def _admit_epoch(self, ctx) -> bool:
        """Whether this node may elect in the freshly started epoch."""
        return True

    def _commit_ready(self, ctx) -> bool:
        """Whether a due commit timer may fire the commit (base: yes)."""
        return True

    def _handle_coord(self, ctx, port: int, payload) -> None:
        """React to a coord announcement (base: adopt same-epoch leaders)."""
        _tag, epoch, leader_id = payload
        if epoch > self.epoch:
            self._check_epoch(ctx)
        if epoch == self.epoch and self.tentative is None:
            self._arm_commit(ctx, leader_id)

    def _handle_extra(self, ctx, port: int, payload) -> None:
        """React to wrapper-level kinds beyond TAG/COORD (base: none)."""

    def _abstain(self, ctx) -> None:
        """Opt out of the current run: no leader can be elected here."""
        self.done = True
        self.inner = None
        self.inner_halted = True
        self.tentative = None
        self.commit_token = None
        if ctx.decision is None:
            ctx.decide_follower(None)
        ctx.halt()

    # ------------------------------------------------------------------ #
    # epoch machinery

    def _wake_inner(self, ctx) -> None:
        """(Re)instantiate the inner algorithm for the current attempt."""
        self.inner = self.factory()
        self.inner_halted = False
        self.proxy._decision = None
        self.attempts_run += 1
        self.inner.on_wake(self.proxy)
        if self.restart_delay > 0:
            ctx.set_timer(self.restart_delay, (self.RESTART, self.epoch, self.attempt))

    def _restart(self, ctx, suspects: frozenset) -> None:
        self.epoch = len(suspects)
        self.epochs_run += 1
        self.attempt = 0
        self.inner_halted = False
        self.tentative = None
        self.commit_token = None
        self.leader_hint = None
        live = ctx.detector.live_ports(ctx.now)
        self.proxy = _AsyncSubClique(self, ctx, live)
        self._r2v = {real: v for v, real in enumerate(live)}
        if not self._admit_epoch(ctx):
            self._abstain(ctx)
            return
        if self.proxy.n == 1:
            self.inner = None
            self.inner_halted = True
            self._arm_commit(ctx, ctx.my_id)
            return
        self._wake_inner(ctx)

    def _catch_up_attempt(self, ctx, attempt: int) -> None:
        """Adopt a peer's higher attempt number (async restart skew)."""
        self.attempt = attempt
        self._wake_inner(ctx)

    def _check_epoch(self, ctx) -> None:
        suspects = ctx.detector.suspects(ctx.now)
        if len(suspects) > self.epoch:
            self._restart(ctx, suspects)

    def on_wake(self, ctx) -> None:
        self._restart(ctx, ctx.detector.suspects(ctx.now))
        if not self.done:  # an abstaining node halts at wake
            ctx.set_timer(self.poll_interval, self.POLL)

    def on_message(self, ctx, port: int, payload: Any) -> None:
        if self.done:
            return
        kind = payload[0]
        if kind == TAG:
            _tag, epoch, attempt, inner_payload = payload
            if epoch > self.epoch:
                self._check_epoch(ctx)
                if self.done:
                    return
            if epoch == self.epoch:
                if (
                    attempt > self.attempt
                    and self.tentative is None
                    and self.inner is not None
                ):
                    self._catch_up_attempt(ctx, attempt)
                if attempt == self.attempt and not self.inner_halted:
                    virtual = self._r2v.get(port)
                    if virtual is not None:
                        self.inner.on_message(self.proxy, virtual, inner_payload)
        elif kind == COORD:
            self._handle_coord(ctx, port, payload)
        else:
            self._handle_extra(ctx, port, payload)

    def on_timer(self, ctx, tag: Any) -> None:
        if self.done:
            return
        if tag == self.POLL:
            self._check_epoch(ctx)
            if self.done:  # an epoch restart may have ended in abstention
                return
            if self.commit_token is not None and self.commit_token == (
                self.epoch,
                ctx.my_id,
            ):
                # Bounded retransmit while my commit timer runs (at most
                # commit_delay / poll_interval copies) — the async twin of
                # the sync wrapper's lossy-link guard.
                ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))
            ctx.set_timer(self.poll_interval, self.POLL)
            return
        if isinstance(tag, tuple) and tag[0] == self.RESTART:
            # Bounded epoch-restart timeout: retry a stalled inner
            # election.  Stale timers (older epoch/attempt) are ignored;
            # a node holding a tentative leader lets the commit path run.
            _name, epoch, attempt = tag
            if epoch != self.epoch or attempt != self.attempt:
                return
            if self.tentative is None and self.inner is not None:
                self.attempt += 1
                self._wake_inner(ctx)
            return
        if isinstance(tag, tuple) and tag[0] == self.COMMIT:
            _name, epoch, leader_id = tag
            if self.commit_token != (epoch, leader_id) or epoch != self.epoch:
                return  # aborted by an epoch restart
            self._check_epoch(ctx)
            if self.done:
                return
            if self.commit_token != (epoch, leader_id) or epoch != self.epoch:
                return
            if leader_id == ctx.my_id and not self._commit_ready(ctx):
                # Quorum pending: retransmit the coord (re-soliciting
                # acks lost to drops) and re-arm the commit timer.
                ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))
                ctx.set_timer(self.commit_delay, tag)
                return
            if leader_id == ctx.my_id:
                ctx.send_many(self._coord_ports(), (COORD, self.epoch, ctx.my_id))
                ctx.decide_leader()
            else:
                ctx.decide_follower(leader_id)
            ctx.halt()
            self.done = True
