"""Failover trials: run an election under a fault plan, measure recovery.

Wraps the analysis runner with fault-aware instrumentation: every trial
runs with a :class:`~repro.trace.MemoryRecorder` so the failover numbers
(detection latency, re-election time, message cost after the first
crash) are measured from the actual event trace rather than inferred
from configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.runner import RunRecord
from repro.common import Decision
from repro.faults.plan import FaultPlan
from repro.trace.events import CompositeRecorder, MemoryRecorder, TraceEvent

__all__ = ["FailoverReport", "run_failover_trial"]


@dataclass
class FailoverReport:
    """One fault-injected run, flattened for churn analysis."""

    record: RunRecord
    crashes: int
    unique_surviving_leader: bool
    surviving_leader_id: Optional[int]
    # crash -> first suspicion by any alive node, one entry per detected crash
    detection_latencies: List[float] = field(default_factory=list)
    # first crash -> last LEADER decision (None if no crash or no leader)
    reelection_time: Optional[float] = None
    messages_after_first_crash: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def mean_detection_latency(self) -> Optional[float]:
        if not self.detection_latencies:
            return None
        return sum(self.detection_latencies) / len(self.detection_latencies)


def _measure(record: RunRecord, result: Any, events: List[TraceEvent]) -> FailoverReport:
    metrics = result.fault_metrics
    crash_times = sorted(when for when, _u in metrics.crashes) if metrics else []
    first_crash = crash_times[0] if crash_times else None
    reelection_time = None
    messages_after = 0
    if first_crash is not None:
        leader_decides = [
            e.when
            for e in events
            if e.kind == "decide" and e.detail[0] is Decision.LEADER
        ]
        if leader_decides and leader_decides[-1] >= first_crash:
            reelection_time = leader_decides[-1] - first_crash
        messages_after = sum(
            1 for e in events if e.kind == "send" and e.when >= first_crash
        )
    dead = set(result.crashed)
    crashed_at = {u: when for when, u in (metrics.crashes if metrics else [])}
    return FailoverReport(
        record=record,
        crashes=len(dead),
        unique_surviving_leader=result.unique_surviving_leader,
        surviving_leader_id=result.surviving_leader_id,
        detection_latencies=(
            metrics.detection_latencies(crashed_at) if metrics else []
        ),
        reelection_time=reelection_time,
        messages_after_first_crash=messages_after,
        dropped_messages=metrics.dropped_messages if metrics else 0,
        duplicated_messages=metrics.duplicated_messages if metrics else 0,
        events=events,
    )


def run_failover_trial(
    engine: str,
    n: int,
    algorithm_factory: Callable[[], Any],
    plan: FaultPlan,
    *,
    seed: int = 0,
    ids: Optional[Sequence[int]] = None,
    awake: Optional[Sequence[int]] = None,
    wake_times: Optional[Dict[int, float]] = None,
    scheduler: Optional[Any] = None,
    max_rounds: Optional[int] = None,
    max_events: Optional[int] = None,
    params: Optional[Dict[str, Any]] = None,
    recorder: Optional[Any] = None,
) -> FailoverReport:
    """One fault-injected election with measured failover metrics.

    ``recorder`` fans in an extra event sink (e.g. a
    :class:`~repro.telemetry.JsonlRecorder`) alongside the internal
    :class:`~repro.trace.MemoryRecorder` the measurements come from.
    """
    from repro.sweep.api import run
    from repro.sweep.spec import RunSpec

    memory = MemoryRecorder()
    trial_recorder: Any = memory
    if recorder is not None:
        trial_recorder = CompositeRecorder(memory, recorder)
    if engine == "sync":
        record = run(
            RunSpec(
                algorithm=algorithm_factory,
                n=n,
                engine="sync",
                seeds=(seed,),
                params=params or {},
                ids=ids,
                awake=awake,
                max_rounds=max_rounds,
                faults=plan,
            ),
            recorder=trial_recorder,
            keep_result=True,
        )
    elif engine == "async":
        record = run(
            RunSpec(
                algorithm=algorithm_factory,
                n=n,
                engine="async",
                seeds=(seed,),
                params=params or {},
                ids=ids,
                wake_times=wake_times,
                max_events=max_events,
                faults=plan,
            ),
            recorder=trial_recorder,
            scheduler=scheduler,
            keep_result=True,
        )
    else:
        raise ValueError(f"unknown engine {engine!r} (want 'sync' or 'async')")
    report = _measure(record, record.extra["result"], memory.events)
    if report.reelection_time is not None:
        # Surface the measured failover latency through the standard
        # metrics channel too, next to the engine-derived numbers.
        record.extra["metrics"]["gauges"]["failover_latency"] = report.reelection_time
    return report
