"""Per-run mutable fault state shared by an engine and its detectors.

The :class:`FaultRuntime` is the single ground truth about failures in a
run: which nodes have crashed and when, which messages were dropped or
duplicated, and which policy kills are still pending.  Engines drive it
through three hooks:

* :meth:`due_crashes` (synchronous engine) / :meth:`static_crashes`
  (asynchronous engine, which turns them into heap events up front),
* :meth:`observe_send`, which lets :class:`~repro.faults.plan.LeaderKillPolicy`
  schedule adversarial crashes, and
* :meth:`deliveries`, which decides the fate of each message under the
  plan's link-fault rules.

All randomness is drawn from one ``random.Random`` seeded from the run
seed, consumed in engine-call order — which is itself deterministic — so
the whole fault trajectory is a pure function of ``(seed, plan,
algorithm, n)``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan

__all__ = ["FaultMetrics", "FaultRuntime"]


@dataclass
class FaultMetrics:
    """Failure accounting for one run (exposed on the run result)."""

    crashes: List[Tuple[float, int]] = field(default_factory=list)
    policy_kills: List[Tuple[float, int, str]] = field(default_factory=list)
    suppressed_crashes: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    partition_blocked: int = 0
    # Byzantine accounting: total altered sends plus a per-mode breakdown
    # (corrupt/forge/replay/equivocate), filled by the AdversaryRuntime.
    tampered_messages: int = 0
    tampered_by_mode: Dict[str, int] = field(default_factory=dict)
    # node index -> (crash time, first time any alive node suspected it)
    first_suspected: Dict[int, float] = field(default_factory=dict)

    @property
    def crash_count(self) -> int:
        return len(self.crashes)

    def note_tamper(self, mode: str) -> None:
        """Record one Byzantine message alteration of ``mode``."""
        self.tampered_messages += 1
        self.tampered_by_mode[mode] = self.tampered_by_mode.get(mode, 0) + 1

    def detection_latencies(self, crashed_at: Dict[int, float]) -> List[float]:
        """Measured crash→first-suspicion latency per detected crash."""
        return [
            self.first_suspected[u] - when
            for u, when in crashed_at.items()
            if u in self.first_suspected
        ]

    def summary(self) -> str:
        return (
            f"crashes={self.crash_count} policy_kills={len(self.policy_kills)} "
            f"dropped={self.dropped_messages} duplicated={self.duplicated_messages} "
            f"partition_blocked={self.partition_blocked} "
            f"tampered={self.tampered_messages}"
        )


class FaultRuntime:
    """Ground-truth failure state + stochastic fault decisions for one run."""

    def __init__(self, plan: FaultPlan, n: int, ids: List[int], seed: int) -> None:
        plan.validate_for(n)
        self.plan = plan
        self.n = n
        self.ids = list(ids)
        self.seed = seed
        self.rng = random.Random(f"faults:{seed}")
        self.metrics = FaultMetrics()
        self.crashed_at: Dict[int, float] = {}
        self._protected = frozenset(plan.protect)
        # (when, node) min-heap of crashes not yet applied (sync engine).
        self._pending: List[Tuple[float, int]] = [
            (crash.at, crash.node) for crash in plan.crashes
        ]
        heapq.heapify(self._pending)
        self._kills_left: List[int] = [policy.max_kills for policy in plan.policies]
        self._kill_marked: set = set()  # nodes already targeted by a policy
        # Per-link-rule remaining drop budget (None = unbounded).
        self._drops_left: List[Optional[int]] = [rule.max_drops for rule in plan.links]
        self.adversary = None
        if plan.adversary is not None:
            # Deferred import: the crash-only fault layer stays free of
            # the adversary package unless a plan actually carries one.
            from repro.adversary.runtime import AdversaryRuntime

            self.adversary = AdversaryRuntime(
                plan.adversary, n, self.ids, seed, self.metrics
            )

    # ------------------------------------------------------------------ #
    # ground truth queries

    def is_crashed(self, u: int) -> bool:
        return u in self.crashed_at

    def alive_count(self) -> int:
        return self.n - len(self.crashed_at)

    def crashed_ids(self) -> frozenset:
        return frozenset(self.ids[u] for u in self.crashed_at)

    # ------------------------------------------------------------------ #
    # crash scheduling

    def approve_crash(self, u: int) -> bool:
        """Whether crashing ``u`` now is admissible (guards survivors)."""
        if u in self.crashed_at or u in self._protected:
            self.metrics.suppressed_crashes += u not in self.crashed_at
            return False
        if self.alive_count() <= 1:
            self.metrics.suppressed_crashes += 1
            return False
        return True

    def note_crash(self, u: int, when: float) -> None:
        """Record an applied crash (engines call this exactly once per crash)."""
        self.crashed_at[u] = when
        self.metrics.crashes.append((when, u))

    def due_crashes(self, now: float) -> List[int]:
        """Pop every scheduled crash with ``at <= now`` (synchronous engine)."""
        due = []
        while self._pending and self._pending[0][0] <= now:
            _at, node = heapq.heappop(self._pending)
            due.append(node)
        return due

    def static_crashes(self) -> List[Tuple[float, int]]:
        """The plan's up-front crash schedule (asynchronous engine events)."""
        return sorted((crash.at, crash.node) for crash in self.plan.crashes)

    def drain_pending(self) -> List[Tuple[float, int]]:
        """Crashes still scheduled when the run went quiescent.

        The synchronous engine applies these at run end so the ground
        truth (who eventually died) matches the asynchronous engine,
        whose heap keeps crash events alive past protocol quiescence.
        """
        drained = []
        while self._pending:
            drained.append(heapq.heappop(self._pending))
        return drained

    def kills_remaining(self) -> int:
        """Total kill budget the policies have left (0 = all spent).

        The vectorized adapter short-circuits whole send batches on
        this, so it must stay O(#policies).
        """
        return sum(left for left in self._kills_left if left > 0)

    def observe_send(self, now: float, sender: int, kind: str) -> List[Tuple[float, int]]:
        """Feed one send to the kill policies; return newly scheduled crashes.

        The synchronous engine relies on the internal pending heap, the
        asynchronous engine turns the returned ``(when, node)`` pairs
        into heap events; both see the same schedule.
        """
        new: List[Tuple[float, int]] = []
        for i, policy in enumerate(self.plan.policies):
            if self._kills_left[i] <= 0 or kind not in policy.kinds:
                continue
            if sender in self._kill_marked or sender in self._protected:
                continue
            self._kills_left[i] -= 1
            self._kill_marked.add(sender)
            when = now + policy.delay
            self.metrics.policy_kills.append((when, sender, kind))
            heapq.heappush(self._pending, (when, sender))
            new.append((when, sender))
        return new

    # ------------------------------------------------------------------ #
    # link faults

    def deliveries(self, src: int, dst: int, kind: str, now: float = 0.0) -> int:
        """How many copies of this message reach ``dst`` (0, 1 or 2).

        ``now`` is the send round/time; active
        :class:`~repro.faults.plan.PartitionMask` windows are checked
        first (and consume no randomness), then the stochastic link
        rules.  Consumes randomness only when a link rule matches, so
        fault-free traffic does not perturb the fault RNG stream.
        """
        for mask in self.plan.partitions:
            if mask.blocks(src, dst, now):
                self.metrics.partition_blocked += 1
                return 0
        for i, rule in enumerate(self.plan.links):
            if not rule.matches(src, dst, kind):
                continue
            drops_left = self._drops_left[i]
            may_drop = rule.drop_prob and (drops_left is None or drops_left > 0)
            if may_drop and self.rng.random() < rule.drop_prob:
                if drops_left is not None:
                    self._drops_left[i] = drops_left - 1
                self.metrics.dropped_messages += 1
                return 0
            if rule.duplicate_prob and self.rng.random() < rule.duplicate_prob:
                self.metrics.duplicated_messages += 1
                return 2
            return 1
        return 1

    def delivered_payloads(
        self, src: int, dst: int, kind: str, payload, now: float = 0.0
    ):
        """The payload list ``dst`` receives for this send (tamper-aware).

        Composes :meth:`deliveries` (partitions + stochastic link rules
        decide how many copies survive) with the Byzantine
        :class:`~repro.adversary.runtime.AdversaryRuntime` (which may
        rewrite each surviving copy, or append a replayed stale one).
        Engines call this instead of :meth:`deliveries`; without an
        adversary it degenerates to ``[payload] * copies``.
        """
        copies = self.deliveries(src, dst, kind, now)
        if self.adversary is None:
            return [payload] * copies
        return self.adversary.deliver(src, dst, payload, copies)

    # ------------------------------------------------------------------ #
    # detector support

    def note_suspicion(self, u: int, now: float) -> None:
        """Record the first time a crashed node was suspected by anyone."""
        if u in self.crashed_at and u not in self.metrics.first_suspected:
            self.metrics.first_suspected[u] = now
