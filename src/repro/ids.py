"""ID universes and ID assignments for clique leader election.

The paper (Section 2 and Section 3.1) assumes that every node carries a
unique integer ID drawn by an adversary from an *ID universe* ``U``.  The
size of the universe matters for the lower bounds:

* Theorem 3.8 requires a universe of size at least ``2 n log2(n) + n``
  (i.e. ``Θ(n log n)`` — notably *not* the huge Ramsey-style universes of
  earlier lower bounds).
* Theorem 3.11 requires a universe of size at least
  ``n · log2(n) · T(n)^(log2(n) - 1)``.
* Algorithm 1 (Theorem 3.15) assumes the *small* universe
  ``{1, ..., n · g(n)}`` for an integer-valued ``g(n) ≥ 1``.

This module provides an explicit :class:`IdUniverse` value type plus
constructors for each of the universes used in the paper, and both random
and adversarial assignment strategies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "IdUniverse",
    "tradeoff_universe",
    "time_bounded_universe",
    "small_universe",
    "log_universe_size",
    "assign_random",
    "assign_adversarial_spread",
    "assign_contiguous",
]


@dataclass(frozen=True)
class IdUniverse:
    """A contiguous integer ID universe ``{lo, lo+1, ..., hi}``.

    The paper's universes are abstract sets of integers; a contiguous
    range is fully general for our purposes because only the *size* of
    the universe and the relative order of IDs matter to the algorithms
    and bounds.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty ID universe: lo={self.lo} > hi={self.hi}")

    @property
    def size(self) -> int:
        """Number of IDs in the universe."""
        return self.hi - self.lo + 1

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def sample(self, n: int, rng: random.Random) -> List[int]:
        """Sample ``n`` distinct IDs uniformly at random."""
        if n > self.size:
            raise ValueError(
                f"cannot draw {n} distinct IDs from universe of size {self.size}"
            )
        return rng.sample(range(self.lo, self.hi + 1), n)


def tradeoff_universe(n: int) -> IdUniverse:
    """The ``Θ(n log n)``-sized universe assumed by Theorem 3.8.

    Theorem 3.8 holds whenever IDs come from a set of size at least
    ``2 n log2(n) + n``; we use exactly that size.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    size = int(2 * n * math.log2(n)) + n
    return IdUniverse(1, size)


def time_bounded_universe(n: int, time_bound: int) -> IdUniverse:
    """The universe assumed by Theorem 3.11 for ``T(n)``-bounded algorithms.

    Size ``n · log2(n) · T(n)^(log2(n) - 1)``.  This grows extremely fast;
    callers performing *experiments* (rather than evaluating formulas)
    should cap it — the constructor therefore refuses absurd sizes instead
    of eating all memory.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if time_bound < 1:
        raise ValueError("need time_bound >= 1")
    log_size = (
        math.log2(n)
        + math.log2(math.log2(n))
        + (math.log2(n) - 1) * math.log2(max(time_bound, 1))
    )
    if log_size > 62:
        raise OverflowError(
            "Theorem 3.11 universe does not fit in 63 bits "
            f"(log2 size ≈ {log_size:.1f}); evaluate bounds with "
            "repro.lowerbound.bounds instead of materializing it"
        )
    size = int(n * math.log2(n) * (time_bound ** (math.log2(n) - 1)))
    return IdUniverse(1, max(size, n))


def small_universe(n: int, g: int = 1) -> IdUniverse:
    """The small universe ``{1, ..., n·g}`` of Algorithm 1 (Theorem 3.15)."""
    if n < 1:
        raise ValueError("need n >= 1")
    if g < 1:
        raise ValueError("Theorem 3.15 requires integer g(n) >= 1")
    return IdUniverse(1, n * g)


def log_universe_size(universe: IdUniverse) -> float:
    """``log2`` of the universe size (bits needed per ID, CONGEST-style)."""
    return math.log2(universe.size)


def assign_random(universe: IdUniverse, n: int, rng: random.Random) -> List[int]:
    """Uniform random assignment of ``n`` distinct IDs (the common case)."""
    return universe.sample(n, rng)


def assign_adversarial_spread(universe: IdUniverse, n: int) -> List[int]:
    """A deterministic adversarial assignment that spreads IDs maximally.

    Used by lower-bound experiments: picking IDs spread evenly across the
    universe maximizes the number of disjoint ID blocks available to the
    pruning adversary of Lemma 3.9.
    """
    if n > universe.size:
        raise ValueError("assignment larger than universe")
    if n == 1:
        return [universe.lo]
    step = (universe.size - 1) / (n - 1)
    ids = [universe.lo + round(i * step) for i in range(n)]
    # Rounding can collide for tiny universes; repair while preserving order.
    for i in range(1, n):
        if ids[i] <= ids[i - 1]:
            ids[i] = ids[i - 1] + 1
    if ids[-1] > universe.hi:
        raise ValueError("universe too small for spread assignment")
    return ids


def assign_contiguous(universe: IdUniverse, n: int, offset: int = 0) -> List[int]:
    """The contiguous assignment ``{lo+offset, ..., lo+offset+n-1}``.

    The best case for Algorithm 1 and the canonical "small ID space"
    workload.
    """
    if offset < 0 or offset + n > universe.size:
        raise ValueError("contiguous block does not fit in universe")
    start = universe.lo + offset
    return list(range(start, start + n))


def validate_assignment(ids: Sequence[int], universe: Optional[IdUniverse] = None) -> None:
    """Raise ``ValueError`` unless ``ids`` is a valid ID assignment.

    Valid means: all distinct, and (when a universe is given) all members
    of the universe.
    """
    if len(set(ids)) != len(ids):
        raise ValueError("ID assignment contains duplicates")
    if universe is not None:
        for value in ids:
            if value not in universe:
                raise ValueError(f"ID {value} outside universe [{universe.lo}, {universe.hi}]")


__all__.append("validate_assignment")
