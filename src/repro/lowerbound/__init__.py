"""Executable artifacts of the paper's lower-bound arguments.

Lower bounds cannot be "run", but their quantitative content can be
exercised and checked:

* :mod:`repro.lowerbound.commgraph` — the communication graphs of
  Definition 3.1 (directed first-contact edges, weakly connected
  components) and the component *capacity* of Definition 3.2, built live
  from an execution via a recorder.
* :mod:`repro.lowerbound.adversary` — the adaptive port-mapping adversary
  in the style of Lemma 3.9/Lemma 3.3: newly opened ports are routed
  inside the sender's component while capacity lasts, slowing component
  growth to the message rate; used both as a stress test (algorithms must
  survive *any* mapping) and to measure forced growth rates.
* :mod:`repro.lowerbound.singlesend` — the multicast → single-send
  transformation of Lemma 3.12, as an executable algorithm wrapper.
* :mod:`repro.lowerbound.bounds` — closed-form evaluators for every row
  of Table 1 (lower *and* upper bound expressions), used by the
  benchmark harness to print paper-vs-measured columns.
* :mod:`repro.lowerbound.wakeup_experiment` — the Section 4.2 experiment:
  two-round wake-up protocols with parametric fan-outs, demonstrating the
  Ω(n^(3/2)) barrier of Theorem 4.2 empirically.
"""

from repro.lowerbound.commgraph import CommGraph, CommGraphRecorder
from repro.lowerbound.adversary import (
    ComponentCapacityAdversary,
    GrowthTrace,
    run_under_capacity_adversary,
)
from repro.lowerbound.covertree import CoverTree, build_cover_tree
from repro.lowerbound.singlesend import SingleSendAdapter, single_send_factory
from repro.lowerbound import bounds
from repro.lowerbound.wakeup_experiment import (
    TwoRoundWakeupSpray,
    WakeupOutcome,
    run_wakeup_trial,
    wakeup_success_rate,
)

__all__ = [
    "CommGraph",
    "CommGraphRecorder",
    "ComponentCapacityAdversary",
    "GrowthTrace",
    "run_under_capacity_adversary",
    "SingleSendAdapter",
    "single_send_factory",
    "CoverTree",
    "build_cover_tree",
    "bounds",
    "TwoRoundWakeupSpray",
    "WakeupOutcome",
    "run_wakeup_trial",
    "wakeup_success_rate",
]
