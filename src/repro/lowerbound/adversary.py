"""The component-capacity port adversary (Lemma 3.3 / Lemma 3.9 style).

The tradeoff lower bound (Theorem 3.8) rests on an adversary that fixes
the endpoints of newly opened ports *adaptively* so that communication
stays trapped inside small components: as long as a component has
capacity (Definition 3.2), new messages can be routed to in-component
nodes (Lemma 3.3), and when components must merge, the adversary merges
them pairwise into blocks, so the largest component grows by at most a
factor ``2^(⌈log2 f(n)⌉ + 1)`` per round — which forces
``Ω(log n / log f(n))`` rounds before any component can span a majority
of the clique (the termination requirement of Corollary 3.7).

:class:`ComponentCapacityAdversary` is the operational version of that
strategy, usable as a :class:`repro.net.ports.PortConnectionPolicy`:

* a newly opened port of ``u`` is connected to an uncontacted node
  *inside* ``u``'s component whenever one exists (capacity-first
  routing, exactly Lemma 3.3);
* otherwise it is connected to the *smallest* other component, which is
  the greedy realization of the proof's pairwise block merging.

Because a correct deterministic algorithm must work under **every** port
mapping, running one under this adversary is simultaneously a stress
test (correctness must be preserved) and a measurement device: the
per-round growth factor of the largest component, reported in
:class:`GrowthTrace`, is the quantity the lower bound controls.

The proof's other ingredient — pruning "costly" ID assignments — ranges
over exponentially many assignments and is inherently non-executable; the
bound formulas it yields are evaluated in :mod:`repro.lowerbound.bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.lowerbound.commgraph import CommGraph, CommGraphRecorder
from repro.net.ports import LazyPortMap, PortConnectionPolicy
from repro.sync.engine import SyncNetwork, SyncRunResult

__all__ = [
    "ComponentCapacityAdversary",
    "GrowthTrace",
    "run_under_capacity_adversary",
]


class ComponentCapacityAdversary(PortConnectionPolicy):
    """Adaptive port policy that minimizes component growth."""

    def __init__(self, graph: CommGraph) -> None:
        self.graph = graph
        self.in_component_links = 0
        self.merge_links = 0

    def choose_peer(self, port_map: LazyPortMap, u: int, port: int) -> int:
        # Lemma 3.3: while the component has capacity, keep traffic inside.
        candidates = [
            w
            for w in self.graph.uncontacted_in_component(u)
            if not port_map.linked(u, w)
        ]
        if candidates:
            self.in_component_links += 1
            return min(candidates)
        # Capacity exhausted: merge with the smallest other component
        # (greedy pairwise block merging).
        my_root = self.graph.find(u)
        best_root: Optional[int] = None
        best_size = 0
        for root in self.graph.roots():
            if root == my_root:
                continue
            size = self.graph.component_size(root)
            if best_root is None or (size, root) < (best_size, best_root):
                best_root = root
                best_size = size
        if best_root is None:
            # Single component left: any unlinked peer will do.
            linked = set(port_map.linked_peers(u))
            for w in range(port_map.n):
                if w != u and w not in linked:
                    self.merge_links += 1
                    return w
            raise RuntimeError(f"node {u} has no eligible peer left")
        self.merge_links += 1
        members = self.graph.component_members(best_root)
        eligible = [w for w in members if not port_map.linked(u, w)]
        return min(eligible)


@dataclass
class GrowthTrace:
    """Largest-component and message-volume trace of one execution."""

    n: int
    largest_by_round: Dict[int, int] = field(default_factory=dict)
    sends_by_round: Dict[int, int] = field(default_factory=dict)
    in_component_links: int = 0
    merge_links: int = 0

    @property
    def rounds(self) -> List[int]:
        return sorted(set(self.largest_by_round) | set(self.sends_by_round))

    def growth_factors(self) -> List[float]:
        """Largest-component growth factor per round (round 2 onward)."""
        factors = []
        previous = 1
        for r in self.rounds:
            current = self.largest_by_round.get(r, previous)
            factors.append(current / previous)
            previous = current
        return factors

    def max_growth_factor(self) -> float:
        factors = self.growth_factors()
        return max(factors) if factors else 1.0

    def rounds_to_majority(self) -> Optional[int]:
        """First round with a component spanning a majority of the clique.

        Corollary 3.7 / Theorem 3.8: a deterministic algorithm cannot
        terminate before this happens (for ID spaces without terminating
        components), so this is the executable proxy for the round lower
        bound.
        """
        for r in self.rounds:
            if self.largest_by_round.get(r, 0) > self.n / 2:
                return r
        return None


def run_under_capacity_adversary(
    n: int,
    algorithm_factory: Callable[[], object],
    *,
    ids: Optional[Sequence[int]] = None,
    seed: int = 0,
    awake: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
) -> tuple:
    """Run a synchronous algorithm against the capacity adversary.

    Returns ``(SyncRunResult, GrowthTrace)``.  The algorithm must still
    elect a unique leader (the model quantifies over all port mappings);
    the trace shows how slowly the adversary forced components to grow.
    """
    graph = CommGraph(n)
    policy = ComponentCapacityAdversary(graph)
    port_map = LazyPortMap(n, policy)
    recorder = CommGraphRecorder(graph)
    net = SyncNetwork(
        n,
        algorithm_factory,
        ids=ids,
        seed=seed,
        port_map=port_map,
        awake=awake,
        max_rounds=max_rounds,
        recorder=recorder,
    )
    result: SyncRunResult = net.run()
    trace = GrowthTrace(
        n=n,
        largest_by_round=dict(recorder.largest_by_round),
        sends_by_round=dict(result.metrics.sends_by_round),
        in_component_links=policy.in_component_links,
        merge_links=policy.merge_links,
    )
    return result, trace
