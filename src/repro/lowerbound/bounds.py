"""Closed-form evaluators for every bound in Table 1 of the paper.

Each function documents the exact statement it renders.  Asymptotic
bounds (Ω/O without explicit constants) are evaluated with constant 1 —
benches treat them as *shape* references: measured curves are compared
against these in log-log space (fitted exponents), not pointwise.

Synchronous, deterministic, simultaneous wake-up
    * :func:`thm38_round_lb`, :func:`thm38_message_lb` — Theorem 3.8.
    * :func:`thm311_message_lb` — Theorem 3.11 (Ω(n log n)).
    * :func:`thm310_messages` / :func:`thm310_rounds` — Theorem 3.10.
    * :func:`thm315_messages` / :func:`thm315_rounds` — Theorem 3.15.

Synchronous, deterministic, adversarial wake-up (Afek–Gafni rows)
    * :func:`ag_messages` — the [1] algorithm's O(ℓ·n^(1+2/ℓ)).
    * :func:`ag_tradeoff_lb` — the [1] lower bound (c-1)/2·n·log_c n.
    * :func:`ag_nlogn_lb` — the [1] unconditional Ω(n log n).

Synchronous, randomized
    * :func:`thm316_las_vegas_lb` (Ω(n)), :func:`thm316_las_vegas_messages`.
    * :func:`kutten16_messages` — [16]'s O(√n·log^(3/2) n).
    * :func:`kutten16_lb` — [16]'s Ω(√n).
    * :func:`thm41_expected_messages`, :func:`thm42_message_lb`.

Asynchronous
    * :func:`thm51_messages` / :func:`thm51_time` — Theorem 5.1.
    * :func:`thm514_messages` / :func:`thm514_time` — Theorem 5.14.
    * :func:`kmp14_messages` / :func:`kmp14_time` — the [14] row.
"""

from __future__ import annotations

import math

__all__ = [
    "thm38_round_lb",
    "thm38_message_lb",
    "thm310_messages",
    "thm310_rounds",
    "thm311_message_lb",
    "thm315_messages",
    "thm315_rounds",
    "ag_messages",
    "ag_tradeoff_lb",
    "ag_nlogn_lb",
    "thm316_las_vegas_lb",
    "thm316_las_vegas_messages",
    "kutten16_messages",
    "kutten16_lb",
    "thm41_expected_messages",
    "thm42_message_lb",
    "thm51_messages",
    "thm51_time",
    "thm514_messages",
    "thm514_time",
    "kmp14_messages",
    "kmp14_time",
]


# --------------------------------------------------------------------- #
# Theorem 3.8 — tradeoff lower bound (simultaneous wake-up)


def thm38_round_lb(n: int, f: float) -> float:
    """Theorem 3.8: an algorithm sending ≤ n·f(n) messages (f > 1) needs
    strictly more than ``(log2 n - 1)/(log2 f + 1) + 1`` rounds."""
    if n < 2 or f <= 1.0:
        raise ValueError("need n >= 2 and f > 1")
    return (math.log2(n) - 1.0) / (math.log2(f) + 1.0) + 1.0


def thm38_message_lb(n: int, k: int) -> float:
    """Theorem 3.8 (contrapositive): any deterministic ``k``-round
    algorithm needs ``Ω((n/2)^(1 + 1/(k-1)))`` messages."""
    if k < 2:
        # A 1-round algorithm trivially needs Θ(n^2) messages (§1.2).
        return (n / 2.0) ** 2
    return (n / 2.0) ** (1.0 + 1.0 / (k - 1))


# --------------------------------------------------------------------- #
# Theorem 3.10 — the improved algorithm


def thm310_messages(n: int, ell: int) -> float:
    """Theorem 3.10: ``O(ℓ·n^(1 + 2/(ℓ+1)))`` messages in ``ℓ`` rounds."""
    if ell < 3 or ell % 2 == 0:
        raise ValueError("Theorem 3.10 needs odd ell >= 3")
    return ell * n ** (1.0 + 2.0 / (ell + 1))


def thm310_rounds(ell: int) -> int:
    return ell


# --------------------------------------------------------------------- #
# Theorem 3.11 — Ω(n log n) for time-bounded algorithms


def thm311_message_lb(n: int) -> float:
    """Theorem 3.11: Ω(n log n) messages for any time-bounded algorithm
    given an ID space of size ≥ n·log2(n)·T(n)^(log2 n − 1)."""
    return n * math.log2(n)


def thm311_universe_log2_size(n: int, time_bound: int) -> float:
    """log2 of the Theorem 3.11 ID-universe size requirement."""
    return (
        math.log2(n)
        + math.log2(math.log2(n))
        + (math.log2(n) - 1) * math.log2(max(time_bound, 2))
    )


__all__.append("thm311_universe_log2_size")


# --------------------------------------------------------------------- #
# Theorem 3.15 — small ID universes


def thm315_messages(n: int, d: int, g: int = 1) -> int:
    """Theorem 3.15: at most ``n·d·g(n)`` messages."""
    return n * d * g


def thm315_rounds(n: int, d: int) -> int:
    """Theorem 3.15: at most ``⌈n/d⌉`` rounds."""
    return -(-n // d)


# --------------------------------------------------------------------- #
# Afek–Gafni rows


def ag_messages(n: int, ell: int) -> float:
    """[1]'s algorithm: ``O(ℓ·n^(1+2/ℓ))`` messages in ``ℓ`` rounds."""
    if ell < 2:
        raise ValueError("need ell >= 2")
    return ell * n ** (1.0 + 2.0 / ell)


def ag_tradeoff_lb(n: int, c: float) -> float:
    """[1]: an algorithm finishing within ``(1/2)·log_c n`` rounds sends
    at least ``((c-1)/2)·n·log_c n`` messages (adversarial wake-up)."""
    if c < 2:
        raise ValueError("need c >= 2")
    return (c - 1) / 2.0 * n * math.log(n, c)


def ag_k_round_lb(n: int, k: int) -> float:
    """[1] restated per §1.2: a ``k``-round algorithm sends
    ``Ω(k·n^(1 + 1/(2k)))`` messages — compare :func:`thm38_message_lb`,
    which is polynomially stronger for constant ``k``."""
    return k * n ** (1.0 + 1.0 / (2 * k))


__all__.append("ag_k_round_lb")


def ag_nlogn_lb(n: int) -> float:
    """[1]: unconditional Ω(n log n) under adversarial wake-up."""
    return n * math.log2(n)


# --------------------------------------------------------------------- #
# Randomized, simultaneous wake-up


def thm316_las_vegas_lb(n: int) -> float:
    """Theorem 3.16: Las Vegas algorithms need Ω(n) messages (expected)."""
    return float(n)


def thm316_las_vegas_messages(n: int) -> float:
    """Theorem 3.16: O(n) messages and 3 rounds, whp."""
    return float(n)


def kutten16_messages(n: int) -> float:
    """[16]: ``O(√n · log^(3/2) n)`` messages, 2 rounds, whp."""
    return math.sqrt(n) * math.log2(n) ** 1.5


def kutten16_lb(n: int) -> float:
    """[16]: Ω(√n) messages for any small-constant-error algorithm."""
    return math.sqrt(n)


# --------------------------------------------------------------------- #
# Randomized, adversarial wake-up (Section 4)


def thm41_expected_messages(n: int, epsilon: float) -> float:
    """Theorem 4.1: expected ``O(n^(3/2)·log(1/ε))`` messages."""
    if not 0 < epsilon < 1:
        raise ValueError("need 0 < epsilon < 1")
    return n**1.5 * (1.0 + math.log(1.0 / epsilon))


def thm42_message_lb(n: int) -> float:
    """Theorem 4.2: 2-round algorithms (even for wake-up alone) send
    Ω(n^(3/2)) messages in expectation."""
    return n**1.5


# --------------------------------------------------------------------- #
# Asynchronous rows (Section 5)


def thm51_messages(n: int, k: int) -> float:
    """Theorem 5.1: ``O(n^(1+1/k))`` messages whp."""
    if k < 2:
        raise ValueError("need k >= 2")
    return n ** (1.0 + 1.0 / k)


def thm51_time(k: int) -> int:
    """Theorem 5.1: at most ``k + 8`` time units whp."""
    return k + 8


def thm51_max_k(n: int) -> int:
    """The largest admissible ``k``: ``O(log n / log log n)`` — we use
    the natural concrete choice ``⌊log2 n / log2 log2 n⌋``."""
    if n < 4:
        return 2
    return max(2, int(math.log2(n) / math.log2(max(2.0, math.log2(n)))))


__all__.append("thm51_max_k")


def thm514_messages(n: int) -> float:
    """Theorem 5.14: ``O(n log n)`` messages."""
    return n * math.log2(n)


def thm514_time(n: int) -> float:
    """Theorem 5.14: ``O(log n)`` time (from the last spontaneous wake)."""
    return math.log2(n)


# --------------------------------------------------------------------- #
# Kutten et al. [14] reference rows (not reimplemented; see DESIGN.md)


def kmp14_messages(n: int) -> float:
    """[14]: O(n) messages (asynchronous, adversarial wake-up)."""
    return float(n)


def kmp14_time(n: int) -> float:
    """[14]: O(log^2 n) asynchronous time."""
    return math.log2(n) ** 2
