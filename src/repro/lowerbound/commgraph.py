"""Communication graphs (Definition 3.1) and component capacity (Def. 3.2).

The round-``r`` communication graph has a directed edge ``(u, v)`` iff
``u`` sent a message over a port connected to ``v`` in some round
``< r``.  The lower-bound arguments reason about its *weakly connected
components*: nodes in a component behave independently of the IDs outside
it (isolation), and a component's *capacity* — the least number of
in-component peers a member has not yet talked to — bounds how many new
messages the adversary can keep internal (Lemma 3.3).

:class:`CommGraph` maintains the components incrementally with a
union–find structure plus per-node contact sets, so capacity queries and
growth traces are cheap even for large executions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

__all__ = ["CommGraph", "CommGraphRecorder"]


class CommGraph:
    """Incrementally-built communication graph over ``n`` nodes."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        self.n = n
        self.edge_count = 0
        # contacts[u]: nodes u has an (in- or out-) edge with.
        self.contacts: List[Set[int]] = [set() for _ in range(n)]
        self.out_edges: List[Set[int]] = [set() for _ in range(n)]
        self._parent = list(range(n))
        self._size = [1] * n
        self._members: Dict[int, List[int]] = {u: [u] for u in range(n)}
        self.component_count = n

    # ------------------------------------------------------------------ #
    # union-find

    def find(self, u: int) -> int:
        root = u
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[u] != root:  # path compression
            self._parent[u], u = root, self._parent[u]
        return root

    def _union(self, u: int, v: int) -> None:
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return
        if self._size[ru] < self._size[rv]:
            ru, rv = rv, ru
        self._parent[rv] = ru
        self._size[ru] += self._size[rv]
        self._members[ru].extend(self._members.pop(rv))
        self.component_count -= 1

    # ------------------------------------------------------------------ #
    # construction

    def add_edge(self, u: int, v: int) -> bool:
        """Record that ``u`` sent a message received by ``v``.

        Returns True if this is a new directed edge.
        """
        if u == v:
            raise ValueError("no self-loops in a clique execution")
        if v in self.out_edges[u]:
            return False
        self.out_edges[u].add(v)
        self.contacts[u].add(v)
        self.contacts[v].add(u)
        self.edge_count += 1
        self._union(u, v)
        return True

    # ------------------------------------------------------------------ #
    # queries

    def same_component(self, u: int, v: int) -> bool:
        return self.find(u) == self.find(v)

    def component_members(self, u: int) -> List[int]:
        """All nodes in ``u``'s weakly connected component."""
        return list(self._members[self.find(u)])

    def component_size(self, u: int) -> int:
        return self._size[self.find(u)]

    def component_sizes(self) -> List[int]:
        """Sizes of all components, descending."""
        return sorted((self._size[r] for r in self._members), reverse=True)

    def largest_component_size(self) -> int:
        return max(self._size[r] for r in self._members)

    def roots(self) -> Iterable[int]:
        return self._members.keys()

    def node_capacity(self, u: int) -> int:
        """Peers of ``u`` inside its component that ``u`` has not contacted."""
        size = self.component_size(u)
        # contacts are all inside the component by construction of the
        # union, so no intersection is needed.
        return size - 1 - len(self.contacts[u])

    def capacity(self, u: int) -> int:
        """Definition 3.2: the capacity of ``u``'s component.

        The largest λ such that every member still has λ uncontacted
        peers inside the component.
        """
        root = self.find(u)
        members = self._members[root]
        size = len(members)
        return min(size - 1 - len(self.contacts[w]) for w in members)

    def uncontacted_in_component(self, u: int) -> List[int]:
        """In-component peers ``u`` has no edge with (either direction)."""
        root = self.find(u)
        contacts = self.contacts[u]
        return [w for w in self._members[root] if w != u and w not in contacts]


class CommGraphRecorder:
    """Engine recorder that keeps a :class:`CommGraph` up to date.

    Also snapshots the largest component size at the end of every round,
    which is the growth trace that the Theorem 3.8 adversary experiment
    plots (components must exceed ``n/2`` before termination, and the
    adversary bounds their per-round growth factor).
    """

    def __init__(self, graph: CommGraph) -> None:
        self.graph = graph
        self.largest_by_round: Dict[int, int] = {}
        self._last_round = 0

    def on_send(self, round_no, u, port, v, j, payload) -> None:
        self.graph.add_edge(u, v)
        self._last_round = max(self._last_round, int(round_no))
        self.largest_by_round[int(round_no)] = self.graph.largest_component_size()

    def on_wake(self, round_no, u) -> None:  # pragma: no cover - no-op hook
        pass

    def on_decide(self, round_no, u, decision, output) -> None:  # pragma: no cover
        pass

    def on_deliver(self, time, u, port, payload) -> None:  # pragma: no cover
        pass
