"""Cover trees (Lemmas 5.4–5.8): the wake-up phase's combinatorial core.

The time analysis of Algorithm 2 hinges on the *cover tree* ``T``:
its root is the adversary-woken node, and ``u`` is the parent of ``v``
iff ``v`` was woken by a message sent by ``u``.  The paper proves:

* every non-leaf has between ``c·n^(1/k)`` and ``γ·n^(1/k)`` children
  while fewer than ``n/16`` nodes are covered (Lemmas 5.4/5.6);
* consequently every root-to-leaf path has length ``O(k)`` (Lemma 5.7),
  which is where the ``k + 4`` wake-up bound comes from.

This module reconstructs the cover tree of a *measured* execution from
a :class:`repro.trace.MemoryRecorder` trace, so tests and benches can
check the lemmas' quantities (depth, branching) directly instead of
trusting the end-to-end time number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CoverTree", "build_cover_tree"]


@dataclass
class CoverTree:
    """The wake-forest of one asynchronous execution.

    ``parent[v]`` is the node whose message woke ``v`` (``None`` for
    adversary-woken roots and for nodes never woken).  Multiple roots
    arise when the adversary wakes several nodes.
    """

    n: int
    parent: Dict[int, Optional[int]] = field(default_factory=dict)
    wake_time: Dict[int, float] = field(default_factory=dict)

    @property
    def roots(self) -> List[int]:
        return [v for v, p in self.parent.items() if p is None]

    @property
    def covered(self) -> int:
        """Number of woken nodes."""
        return len(self.parent)

    def children(self, u: int) -> List[int]:
        return [v for v, p in self.parent.items() if p == u]

    def depth(self, v: int) -> int:
        """Edge-distance from ``v`` to its root."""
        d = 0
        seen = set()
        while True:
            p = self.parent.get(v)
            if p is None:
                return d
            if v in seen:  # pragma: no cover - defensive, trees are acyclic
                raise ValueError("cycle in cover tree")
            seen.add(v)
            v = p
            d += 1

    def height(self) -> int:
        """Maximum depth over woken nodes (Lemma 5.7's path length)."""
        return max((self.depth(v) for v in self.parent), default=0)

    def branching(self) -> List[int]:
        """Child counts of the non-leaf nodes (Lemma 5.6's degrees)."""
        counts: Dict[int, int] = {}
        for v, p in self.parent.items():
            if p is not None:
                counts[p] = counts.get(p, 0) + 1
        return sorted(counts.values())

    def wake_times_by_depth(self) -> Dict[int, float]:
        """Latest wake time at each depth — the wave front's progress."""
        front: Dict[int, float] = {}
        for v in self.parent:
            d = self.depth(v)
            t = self.wake_time.get(v, 0.0)
            front[d] = max(front.get(d, 0.0), t)
        return front


def build_cover_tree(n: int, recorder) -> CoverTree:
    """Reconstruct the cover tree from a ``MemoryRecorder`` trace.

    A node's parent is the sender of the message whose delivery is the
    earliest event at that node (the delivery that woke it).  Works for
    any asynchronous algorithm whose wake-up is message-driven.
    """
    tree = CoverTree(n=n)
    # Map (dst) -> wake event time; (dst) -> parent via the send that
    # produced the waking delivery.  MemoryRecorder logs sends with
    # (port, v, peer_port, payload) detail and delivers with
    # (port, payload); to attribute a delivery to its sender we replay
    # sends per destination in FIFO order per (src, dst) pair — the
    # engine guarantees per-link FIFO, and the recorder preserves global
    # chronology, so matching the i-th delivery at (dst, port) to the
    # i-th send targeting (dst, port) is exact.
    wake_events: Dict[int, float] = {}
    for event in recorder.events:
        if event.kind == "wake":
            wake_events[event.node] = event.when
    pending: Dict[tuple, List[int]] = {}
    for event in recorder.events:
        if event.kind == "send":
            port, v, peer_port, _payload = event.detail
            pending.setdefault((v, peer_port), []).append(event.node)
        elif event.kind == "deliver":
            port, _payload = event.detail
            queue = pending.get((event.node, port))
            sender = queue.pop(0) if queue else None
            woke_at = wake_events.get(event.node)
            if woke_at is not None and event.node not in tree.parent:
                if abs(event.when - woke_at) < 1e-12 and sender is not None:
                    tree.parent[event.node] = sender
                    tree.wake_time[event.node] = woke_at
    # Adversary-woken nodes: wake events with no waking delivery.
    for node, t in wake_events.items():
        if node not in tree.parent:
            tree.parent[node] = None
            tree.wake_time[node] = t
    return tree
