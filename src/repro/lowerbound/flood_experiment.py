"""Empirically tracing the Theorem 3.8 tradeoff curve.

Theorem 3.8's mechanism: a deterministic algorithm with message budget
``n·f(n)`` cannot make any component span a majority of the clique in
fewer than ``~log2(n)/(log2 f + 1)`` rounds, because the adversary routes
new ports so components grow by at most a ``~2f`` factor per round —
and termination *requires* a majority component (Corollary 3.7).

This module measures exactly that: the :class:`FloodProtocol` spends its
entire per-round budget of ``f`` messages per node on fresh ports (the
fastest possible component growth for the budget); running it against
the :class:`repro.lowerbound.adversary.ComponentCapacityAdversary` and
recording the first round with a majority component produces, for each
``f``, a point on the *empirical* round floor.  The bench sweeps ``f``
and prints the measured curve next to the theorem's formula — the most
direct executable rendering of the lower-bound tradeoff available short
of enumerating ID assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.lowerbound.adversary import GrowthTrace, run_under_capacity_adversary
from repro.lowerbound.bounds import thm38_round_lb
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["FloodProtocol", "FloodOutcome", "flood_rounds_to_majority", "flood_sweep"]


class FloodProtocol(SyncAlgorithm):
    """Spend ``f`` messages per node per round on fresh ports.

    Not an election — a *budget probe*: the greedy strategy that grows
    communication components as fast as a budget-``n·f``-per-round
    algorithm possibly can.  Halts after ``max_rounds`` rounds.
    """

    def __init__(self, f: int, max_rounds: int) -> None:
        if f < 1:
            raise ValueError("need f >= 1 message per node per round")
        self.f = f
        self.max_rounds = max_rounds
        self.next_port = 0

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        if ctx.round > self.max_rounds:
            ctx.decide_follower()
            ctx.halt()
            return
        burst = min(self.f, ctx.port_count - self.next_port)
        for _ in range(burst):
            ctx.send(self.next_port, ("flood",))
            self.next_port += 1


@dataclass
class FloodOutcome:
    """One point of the empirical tradeoff curve."""

    n: int
    f: int
    rounds_to_majority: Optional[int]
    theorem_floor: float
    messages: int
    trace: GrowthTrace


def flood_rounds_to_majority(n: int, f: int, *, seed: int = 0) -> FloodOutcome:
    """Run the flood probe against the capacity adversary.

    The horizon is found by doubling: against the greedy capacity-first
    adversary, uniform flooding only grows components *linearly* (≈ f
    nodes per round — every merge refills capacity that absorbs the
    following sends), far slower than the ``2f``-factor-per-round pace
    the Lemma 3.9 block adversary concedes.  The probe therefore needs
    up to ``~n/f`` rounds, and the measured curve sits well above the
    theorem's floor — see the bench discussion.
    """
    horizon = 8
    while True:
        result, trace = run_under_capacity_adversary(
            n,
            lambda: FloodProtocol(f, horizon),
            seed=seed,
            max_rounds=horizon + 4,
        )
        majority = trace.rounds_to_majority()
        if majority is not None or horizon > 2 * n:
            return FloodOutcome(
                n=n,
                f=f,
                rounds_to_majority=majority,
                theorem_floor=thm38_round_lb(n, f) if f > 1 else float("nan"),
                messages=result.messages,
                trace=trace,
            )
        horizon *= 2


def flood_sweep(n: int, fs: List[int], *, seed: int = 0) -> List[FloodOutcome]:
    """The empirical Theorem 3.8 curve: rounds-to-majority as f varies."""
    return [flood_rounds_to_majority(n, f, seed=seed) for f in fs]
