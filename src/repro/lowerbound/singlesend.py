"""Lemma 3.12: the multicast → single-send transformation, executable.

A *single-send* algorithm sends at most one message per node per round.
Lemma 3.12 shows that any multicast algorithm ``A`` with message
complexity ``M(n)`` and time ``T(n)`` can be simulated by a single-send
algorithm with the same message complexity and time ``n · T(n)``: round
``r`` of ``A`` is stretched over the block of rounds
``(r-1)·n + 1 .. r·n``, the messages ``A`` wanted to send leave one per
round, and received messages are buffered and handed to ``A`` at the
start of the next block.

The transformation matters because the Ω(n log n) bound of Theorem 3.11
is proved against single-send algorithms (Lemma 3.13) and transfers to
all time-bounded algorithms through exactly this reduction.  Having it
executable lets the tests check the lemma's guarantees *behaviourally*:
identical decisions and message counts, and an exactly-``n``-fold time
dilation, for any wrapped algorithm under a fixed port mapping.
"""

from __future__ import annotations

from typing import Any, Callable, Deque, List, Optional, Tuple
from collections import deque

from repro.common import ProtocolError
from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext

__all__ = ["SingleSendAdapter", "single_send_factory"]


class _ShimContext:
    """The context handed to the wrapped algorithm.

    Sends are captured into the adapter's queue instead of leaving
    immediately; decisions and topology queries pass straight through to
    the real context.  ``round`` is the *virtual* (inner) round number.
    """

    def __init__(self, real: SyncContext, adapter: "SingleSendAdapter") -> None:
        self._real = real
        self._adapter = adapter
        self.round = 0

    # topology / identity passthrough
    @property
    def node(self) -> int:
        return self._real.node

    @property
    def my_id(self) -> int:
        return self._real.my_id

    @property
    def n(self) -> int:
        return self._real.n

    @property
    def rng(self):
        return self._real.rng

    @property
    def wake_round(self) -> int:
        return 1  # the transformation is stated for simultaneous wake-up

    @property
    def port_count(self) -> int:
        return self._real.port_count

    def all_ports(self) -> range:
        return self._real.all_ports()

    def sample_ports(self, m: int) -> List[int]:
        return self._real.sample_ports(m)

    # captured communication
    def send(self, port: int, payload: Any) -> None:
        self._adapter.outbox.append((port, payload))

    def send_many(self, ports, payload: Any) -> None:
        for port in ports:
            self.send(port, payload)

    def broadcast(self, payload: Any) -> None:
        self.send_many(range(self.port_count), payload)

    # decisions passthrough
    @property
    def decision(self):
        return self._real.decision

    def decide_leader(self) -> None:
        self._real.decide_leader()

    def decide_follower(self, leader_id: Optional[int] = None) -> None:
        self._real.decide_follower(leader_id)

    def halt(self) -> None:
        self._adapter.inner_halted = True


class SingleSendAdapter(SyncAlgorithm):
    """Wrap a multicast :class:`SyncAlgorithm` into a single-send one."""

    def __init__(self, inner: SyncAlgorithm) -> None:
        self.inner = inner
        self.outbox: Deque[Tuple[int, Any]] = deque()
        self.buffer: List[Tuple[int, Any]] = []
        self.inner_halted = False
        self._shim: Optional[_ShimContext] = None

    def on_wake(self, ctx: SyncContext) -> None:
        self._shim = _ShimContext(ctx, self)
        self.inner.on_wake(self._shim)

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        n = ctx.n
        self.buffer.extend(inbox)
        position = (ctx.round - 1) % n
        if position == 0 and not self.inner_halted:
            # Start of a block: hand the previous block's deliveries to
            # the inner algorithm as one inner round.
            assert self._shim is not None
            inner_round = (ctx.round - 1) // n + 1
            self._shim.round = inner_round
            delivered, self.buffer = self.buffer, []
            self.inner.on_round(self._shim, delivered)
            if len(self.outbox) > n - 1:
                raise ProtocolError(
                    "wrapped algorithm sent more than n-1 messages in one "
                    "round; Lemma 3.12 requires at most one per port"
                )
        if self.outbox:
            port, payload = self.outbox.popleft()
            ctx.send(port, payload)
        if self.inner_halted and not self.outbox:
            ctx.halt()


def single_send_factory(inner_factory: Callable[[], SyncAlgorithm]):
    """Factory combinator: ``single_send_factory(f)() == SingleSendAdapter(f())``."""

    def factory() -> SingleSendAdapter:
        return SingleSendAdapter(inner_factory())

    return factory
