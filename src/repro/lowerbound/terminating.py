"""Definitions 3.4/3.5 executable: isolated executions and terminating
components, by exhaustive search over partial port mappings.

A set of IDs ``B`` (``|B| ≤ n/2``) *forms terminating components* if
there is a round ``r`` such that in **every** execution prefix of
``Exec_r(B)`` — running the algorithm on ``|B|`` nodes that believe the
clique has ``n`` nodes, with every message routed back into ``B`` —
all nodes have terminated by round ``r``.  Lemma 3.6 shows at most
``2·log2(n) − ℓ`` disjoint ``2^ℓ``-sized sets can form terminating
components, and Corollary 3.7 strips them away to get the ID set the
Theorem 3.8 adversary works with.

This module runs the actual search for small instances:

* :func:`isolated_execution` builds one member of ``Exec_r(B)`` for a
  chosen in-set routing strategy;
* :func:`forms_terminating_components` explores **all** in-set routings
  (DFS over the choices of where each newly opened port lands) and
  reports whether the set terminates in isolation in all of them, in
  none, or escapes (must open a port to the outside).

The search is exponential in the number of opened ports, so it is a
toy-scale instrument (|B| ≤ ~4, algorithms with small fan-outs) — but it
turns the paper's most abstract definition into something you can run
and unit-test, and the tests use it to exhibit both outcomes:
every proper subset *expands* under the tradeoff algorithms (they
broadcast in the final round, escaping any ``B`` with ``|B| ≤ n/2``),
while an (artificial) quiet protocol shows termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common import SimulationLimitExceeded
from repro.net.ports import LazyPortMap, CallbackPortPolicy
from repro.sync.engine import SyncNetwork

__all__ = [
    "IsolationOutcome",
    "isolated_execution",
    "forms_terminating_components",
]


@dataclass
class IsolationOutcome:
    """Result of one isolated execution attempt."""

    terminated: bool  # every node halted without leaving B
    escaped: bool  # some node had to open a port outside B
    rounds: int
    messages: int


class _EscapeError(Exception):
    """A node opened more ports than B can absorb."""


def _make_policy(
    members: Sequence[int], routing: Callable[[int, int, List[int]], int]
) -> CallbackPortPolicy:
    def choose(port_map: LazyPortMap, u: int, port: int) -> int:
        candidates = [
            v for v in members if v != u and not port_map.linked(u, v)
        ]
        if not candidates:
            raise _EscapeError(f"node {u} must connect outside the set")
        return routing(u, port, candidates)

    return CallbackPortPolicy(choose)


def isolated_execution(
    algorithm_factory: Callable[[], object],
    n: int,
    ids: Sequence[int],
    *,
    routing: Optional[Callable[[int, int, List[int]], int]] = None,
    max_rounds: int = 64,
) -> IsolationOutcome:
    """Run ``|ids|`` nodes in isolation (messages stay inside the set).

    The nodes believe the clique has ``n`` nodes; the engine instantiates
    only ``len(ids)`` of them and the port policy routes every opened
    port to another member — a concrete element of ``Exec_r(B)``.
    ``routing(u, port, candidates)`` picks the peer (default: smallest).
    """
    m = len(ids)
    if not 1 <= m <= n // 2:
        raise ValueError("Definition 3.5 considers sets of size at most n/2")
    if routing is None:
        def routing(u, port, candidates):
            return candidates[0]

    # Build a miniature network of m nodes, each claiming port_count n-1.
    # We reuse SyncNetwork with n_virtual = n by instantiating n nodes but
    # waking only the members... simpler: run an m-node network whose
    # port map pretends to have n-1 ports.  The engine's n drives both
    # the node count and port count, so instead we run n nodes but only
    # members are awake, and the policy keeps all traffic inside.
    members = list(range(m))
    policy = _make_policy(members, routing)
    pm = LazyPortMap(n, policy)
    full_ids = list(ids) + [10**9 + i for i in range(n - m)]  # sleepers' ids unused
    net = SyncNetwork(
        n,
        algorithm_factory,
        ids=full_ids,
        port_map=pm,
        awake=members,
        max_rounds=max_rounds,
    )
    try:
        net.run()
    except _EscapeError:
        return IsolationOutcome(
            terminated=False,
            escaped=True,
            rounds=net.metrics.rounds_executed,
            messages=net.metrics.messages_total,
        )
    except SimulationLimitExceeded:
        return IsolationOutcome(
            terminated=False,
            escaped=False,
            rounds=max_rounds,
            messages=net.metrics.messages_total,
        )
    halted = sum(1 for u in members if net._halted[u])
    return IsolationOutcome(
        terminated=halted == m,
        escaped=False,
        rounds=net.metrics.rounds_executed,
        messages=net.metrics.messages_total,
    )


def forms_terminating_components(
    algorithm_factory: Callable[[], object],
    n: int,
    ids: Sequence[int],
    *,
    max_rounds: int = 32,
    max_explorations: int = 20_000,
) -> Tuple[bool, int]:
    """Exhaustively decide Definition 3.5 for the ID set ``ids``.

    Returns ``(terminating, explored)`` where ``terminating`` is True iff
    **every** in-set port routing leads to termination without escape.
    The DFS enumerates, at each port-opening, every member the adversary
    could connect it to.  Raises ``RuntimeError`` when the exploration
    budget is exhausted (set sizes beyond toy scale).
    """
    explored = 0
    all_terminate = True

    # DFS over routing decision sequences.  Each execution replays the
    # algorithm deterministically; `script` pre-determines the first
    # len(script) routing choices (as candidate indices) and the probe
    # discovers the branching factor of the next undetermined choice.
    def run_with_script(script: List[int]) -> Tuple[IsolationOutcome, Optional[int]]:
        step = {"i": 0}
        next_branching: List[Optional[int]] = [None]

        def routing(u: int, port: int, candidates: List[int]) -> int:
            i = step["i"]
            step["i"] += 1
            if i < len(script):
                return candidates[script[i] % len(candidates)]
            if next_branching[0] is None:
                next_branching[0] = len(candidates)
            return candidates[0]

        outcome = isolated_execution(
            algorithm_factory, n, ids, routing=routing, max_rounds=max_rounds
        )
        return outcome, next_branching[0]

    stack: List[List[int]] = [[]]
    while stack:
        script = stack.pop()
        explored += 1
        if explored > max_explorations:
            raise RuntimeError(
                f"terminating-components search exceeded {max_explorations} "
                "executions; the instance is beyond toy scale"
            )
        outcome, branching = run_with_script(script)
        if outcome.escaped or not outcome.terminated:
            all_terminate = False
            # One non-terminating routing suffices to refute Def. 3.5 —
            # but keep exploring siblings only if the caller wants the
            # exact count; we stop early for efficiency.
            return (False, explored)
        if branching is not None:
            # The execution had an undetermined choice beyond the script;
            # branch over all alternatives (choice 0 was just explored as
            # part of this run, so push 1..branching-1, plus extend the
            # script with 0 to explore deeper choices).
            for choice in range(1, branching):
                stack.append(script + [choice])
            stack.append(script + [0])
    return (all_terminate, explored)
