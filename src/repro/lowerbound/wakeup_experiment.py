"""The Section 4.2 experiment: the Ω(n^(3/2)) two-round wake-up barrier.

Theorem 4.2 proves that *any* 2-round algorithm waking the whole clique
with constant success probability sends Ω(n^(3/2)) messages in
expectation — even just for the wake-up problem, before any election
logic.  The proof's intuition: a root cannot learn within 2 rounds how
many other roots are awake, so its children must be provisioned as if the
root were alone; roots that spend ``o(√n)`` messages leave their children
responsible for ``Ω(n)`` wake-ups each, and with ``Θ(√n)`` undisturbed
roots this multiplies out to ``Ω(n^(3/2))``.

This module makes the tension measurable with the natural two-parameter
protocol family :class:`TwoRoundWakeupSpray`:

* a *root* (woken by the adversary in round 1) sprays ``⌈n^alpha⌉``
  wake-up messages over random ports;
* a node woken by a round-1 message sprays ``⌈n^beta⌉`` messages in
  round 2;
* nothing is sent after round 2.

Success means every node is awake by the end of round 2 (i.e. woken by a
message sent in rounds 1–2).  Sweeping ``alpha`` with the complementary
``beta = 1 - alpha`` (the calibration that barely covers the clique from
a single root) demonstrates the theorem's shape:

* for every ``alpha``, the worst-case-root-set message count is
  ``Θ(n^(3/2))`` or worse — minimized around ``alpha = 1/2``, which is
  exactly the Theorem 4.1 algorithm's choice;
* cutting the budget below ``n^(3/2)`` (e.g. ``beta < 1 - alpha``) makes
  single-root instances fail with non-vanishing probability.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.sync.algorithm import SyncAlgorithm
from repro.sync.engine import SyncContext, SyncNetwork

__all__ = [
    "TwoRoundWakeupSpray",
    "WakeupOutcome",
    "run_wakeup_trial",
    "wakeup_success_rate",
    "spray_message_bound",
]

WAKE = "wake"


class TwoRoundWakeupSpray(SyncAlgorithm):
    """Two-round wake-up with parametric fan-outs ``n^alpha`` / ``n^beta``.

    ``boost`` multiplies the round-2 fan-out; full coverage by random
    spraying is a coupon-collector process, so protocols on the
    feasibility boundary (``alpha + beta = 1``) need ``boost ≈ 2·ln n``
    to actually succeed — the same logarithmic factor that appears in
    Theorem 4.1's message bound.
    """

    def __init__(self, alpha: float, beta: float, boost: float = 1.0) -> None:
        if not 0.0 <= alpha <= 1.0 or not 0.0 <= beta <= 1.0:
            raise ValueError("need exponents in [0, 1]")
        if boost <= 0:
            raise ValueError("need boost > 0")
        self.alpha = alpha
        self.beta = beta
        self.boost = boost

    def root_fanout(self, n: int) -> int:
        return min(n - 1, math.ceil(n**self.alpha))

    def child_fanout(self, n: int) -> int:
        return min(n - 1, math.ceil(self.boost * n**self.beta))

    def on_round(self, ctx: SyncContext, inbox: List[Tuple[int, Any]]) -> None:
        # Each node acts exactly once, in its wake round, then halts.
        if ctx.wake_round == 1:
            ctx.send_many(ctx.sample_ports(self.root_fanout(ctx.n)), (WAKE,))
        elif ctx.wake_round == 2:
            ctx.send_many(ctx.sample_ports(self.child_fanout(ctx.n)), (WAKE,))
        # Nodes woken in round >= 3 were woken too late; they send nothing.
        ctx.decide_follower()
        ctx.halt()


@dataclass
class WakeupOutcome:
    """Result of one wake-up trial."""

    n: int
    root_count: int
    awake: int
    messages: int
    success: bool  # every node woken by a message sent in rounds 1-2


def run_wakeup_trial(
    n: int,
    alpha: float,
    beta: float,
    *,
    boost: float = 1.0,
    root_count: int = 1,
    seed: int = 0,
    roots: Optional[Sequence[int]] = None,
) -> WakeupOutcome:
    """One execution of the spray protocol from a given root set."""
    if roots is None:
        rng = random.Random(seed ^ 0x5EED)
        roots = rng.sample(range(n), root_count)
    net = SyncNetwork(
        n,
        lambda: TwoRoundWakeupSpray(alpha, beta, boost),
        seed=seed,
        awake=roots,
    )
    result = net.run()
    # All sprays happen in rounds 1-2, so every awake node was woken by a
    # round <= 2 message (deliveries at rounds <= 3); full coverage is
    # therefore exactly awake_count == n.
    return WakeupOutcome(
        n=n,
        root_count=len(list(roots)),
        awake=result.awake_count,
        messages=result.messages,
        success=result.awake_count == n,
    )


def wakeup_success_rate(
    n: int,
    alpha: float,
    beta: float,
    *,
    boost: float = 1.0,
    root_count: int = 1,
    trials: int = 10,
    seed: int = 0,
) -> Tuple[float, float]:
    """``(success_rate, mean_messages)`` over independent trials."""
    successes = 0
    total_messages = 0
    for t in range(trials):
        outcome = run_wakeup_trial(
            n, alpha, beta, boost=boost, root_count=root_count,
            seed=seed * 1_000_003 + t
        )
        successes += outcome.success
        total_messages += outcome.messages
    return successes / trials, total_messages / trials


def spray_message_bound(
    n: int, alpha: float, beta: float, root_count: int, boost: float = 1.0
) -> float:
    """Worst-case message count of the spray protocol for a root set.

    Roots spray ``n^alpha`` each; every message-woken node sprays
    ``boost · n^beta``; at most ``min(root_count · n^alpha, n)`` nodes
    are woken in round 1.
    """
    round1 = root_count * math.ceil(n**alpha)
    children = min(round1, n - root_count)
    return round1 + children * math.ceil(boost * n**beta)
