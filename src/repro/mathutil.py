"""Exact integer helpers for the paper's parameter formulas.

The algorithms use referee counts like ``⌈n^(i/(k-1))⌉``.  Computing these
through floating point (``math.ceil(n ** (i / j))``) silently inflates
exact powers (``1024 ** 0.5`` → ``32.000000000000004`` → ceil 33), which
would distort message counts in benches.  These helpers compute the exact
values with integer arithmetic.
"""

from __future__ import annotations

import math

__all__ = ["ceil_pow_frac", "floor_pow_frac", "ceil_log2", "floor_log2", "ceil_sqrt"]


def ceil_pow_frac(n: int, num: int, den: int) -> int:
    """Exact ``⌈n^(num/den)⌉`` for integers ``n ≥ 1, num ≥ 0, den ≥ 1``.

    This is the smallest integer ``m`` with ``m**den ≥ n**num``.
    """
    if n < 1 or num < 0 or den < 1:
        raise ValueError("need n >= 1, num >= 0, den >= 1")
    if num == 0 or n == 1:
        return 1
    target = n**num
    # Float guess, then correct exactly; the guess is within a few units.
    m = max(1, int(round(target ** (1.0 / den))))
    while m**den < target:
        m += 1
    while m > 1 and (m - 1) ** den >= target:
        m -= 1
    return m


def floor_pow_frac(n: int, num: int, den: int) -> int:
    """Exact ``⌊n^(num/den)⌋``: the largest ``m`` with ``m**den ≤ n**num``."""
    if n < 1 or num < 0 or den < 1:
        raise ValueError("need n >= 1, num >= 0, den >= 1")
    if num == 0 or n == 1:
        return 1
    target = n**num
    m = max(1, int(round(target ** (1.0 / den))))
    while m**den > target:
        m -= 1
    while (m + 1) ** den <= target:
        m += 1
    return m


def ceil_log2(n: int) -> int:
    """``⌈log2 n⌉`` for ``n ≥ 1``."""
    if n < 1:
        raise ValueError("need n >= 1")
    return (n - 1).bit_length()


def floor_log2(n: int) -> int:
    """``⌊log2 n⌋`` for ``n ≥ 1``."""
    if n < 1:
        raise ValueError("need n >= 1")
    return n.bit_length() - 1


def ceil_sqrt(n: int) -> int:
    """``⌈√n⌉`` computed exactly."""
    if n < 0:
        raise ValueError("need n >= 0")
    root = math.isqrt(n)
    return root if root * root == n else root + 1
