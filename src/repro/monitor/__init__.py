"""Runtime verification and sweep health for the election engines.

Four layers, composable:

* :class:`MonitorSuite` + the invariant monitors — streaming safety/
  liveness checkers that attach to any object-engine run through the
  recorder seam (:mod:`repro.monitor.invariants`); sampled-lane replay
  and aggregate checks cover the fast engine (:mod:`repro.monitor.fast`).
* Theory-bound conformance — per-algorithm message/round envelopes from
  the paper's theorem statements, checked against completed records
  (:mod:`repro.monitor.conformance`).
* :class:`SweepMonitor` — the ``sweep(..., monitor=)`` hook running
  record-level invariants + conformance over whole campaigns
  (:mod:`repro.monitor.api`).
* Sweep health — live progress (:mod:`repro.monitor.progress`) and the
  persistent run ledger with ``repro history`` / ``repro compare``
  (:mod:`repro.monitor.ledger`).
"""

from repro.monitor.violations import Violation, trace_slice
from repro.monitor.invariants import (
    AgreementMonitor,
    InvariantMonitor,
    MONITOR_NAMES,
    MonitorSuite,
    QuorumOneLeaderMonitor,
    TerminationMonitor,
    UniqueLeaderMonitor,
    ValidityMonitor,
    default_monitors,
)
from repro.monitor.conformance import (
    ConformanceResult,
    ConformanceSummary,
    ENVELOPES,
    Envelope,
    check_record,
    get_envelope,
    summarize,
)
from repro.monitor.fast import check_fast_telemetry, monitor_fast_lane
from repro.monitor.api import SweepMonitor, check_record_invariants
from repro.monitor.progress import ProgressEvent, ProgressListener, SweepProgress
from repro.monitor.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    LedgerDiff,
    append_entry,
    compare_entries,
    git_sha,
    make_entry,
    prune_ledger,
    read_ledger,
    resolve_ref,
    spec_hash,
)

__all__ = [
    # violations
    "Violation",
    "trace_slice",
    # invariants
    "InvariantMonitor",
    "MonitorSuite",
    "UniqueLeaderMonitor",
    "AgreementMonitor",
    "ValidityMonitor",
    "QuorumOneLeaderMonitor",
    "TerminationMonitor",
    "default_monitors",
    "MONITOR_NAMES",
    # conformance
    "Envelope",
    "ConformanceResult",
    "ConformanceSummary",
    "ENVELOPES",
    "get_envelope",
    "check_record",
    "summarize",
    # fast engine
    "check_fast_telemetry",
    "monitor_fast_lane",
    # sweep hook
    "SweepMonitor",
    "check_record_invariants",
    # progress
    "ProgressListener",
    "ProgressEvent",
    "SweepProgress",
    # ledger
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "spec_hash",
    "git_sha",
    "make_entry",
    "append_entry",
    "prune_ledger",
    "read_ledger",
    "resolve_ref",
    "compare_entries",
    "LedgerDiff",
]
