"""The sweep-facing monitor surface: ``sweep(..., monitor=SweepMonitor())``.

A :class:`SweepMonitor` consumes a completed sweep — the spec grid plus
its records in grid order — and produces the full observability
artifact set in one pass: record-level invariant checks, theory-bound
conformance against each algorithm's envelope, an aggregate
:class:`~repro.monitor.ConformanceSummary`, and (optionally) a ledger
entry.  The object-engine event-level monitors
(:class:`~repro.monitor.MonitorSuite`) are finer-grained but need a
live recorder; this layer works on flattened
:class:`~repro.analysis.RunRecord` rows, so it covers every engine —
including multi-process sweeps whose events never reach the parent.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.monitor.conformance import (
    ConformanceSummary,
    check_record,
    summarize,
)
from repro.monitor.violations import Violation

__all__ = ["check_record_invariants", "SweepMonitor"]


def check_record_invariants(
    record: Any, *, context: Optional[Dict[str, Any]] = None
) -> List[Violation]:
    """Invariant checks derivable from one flattened record.

    Coarser than the event-level monitors (a record has counts, not
    streams) but engine-agnostic.  Fault-free records are checked for
    leader uniqueness and full termination; faulty records only for
    survivor uniqueness when the engine's accounting flags it — the
    flattened row cannot distinguish "leader crashed" from "two
    survivors", so faulty runs needing exact verdicts should attach a
    :class:`~repro.monitor.MonitorSuite` instead.
    """
    context = dict(context or {})
    context.setdefault("n", record.n)
    context.setdefault("seed", record.seed)
    if "algorithm" in record.extra:
        context.setdefault("algorithm", record.extra["algorithm"])
    violations: List[Violation] = []

    def report(monitor: str, message: str) -> None:
        violations.append(
            Violation(monitor=monitor, message=message, context=dict(context))
        )

    crashed = record.extra.get("crashed")
    if crashed:
        if record.extra.get("unique_surviving_leader") is False and record.leaders:
            report(
                "unique_leader_per_epoch",
                f"{record.leaders} leader(s) decided and survivor accounting "
                "is non-unique (crashed run — attach a MonitorSuite for the "
                "exact reigning set)",
            )
        return violations
    if record.leaders > 1:
        report(
            "unique_leader_per_epoch",
            f"{record.leaders} nodes decided LEADER in one fault-free run",
        )
    if record.leaders == 0:
        report("termination_bound", "no node elected itself leader")
    if record.decided < record.awake:
        report(
            "termination_bound",
            f"only {record.decided} of {record.awake} awake nodes decided",
        )
    return violations


class SweepMonitor:
    """Pass as ``sweep(..., monitor=)`` to check every record of a sweep.

    After the sweep returns, the monitor holds ``violations`` (invariant
    breaches), ``conformance`` (a :class:`ConformanceSummary` over the
    records with registered envelopes) and ``ok``.  With ``ledger`` set
    (a path, or True for the default ``.repro/ledger.jsonl``) the sweep
    is also appended to the persistent run ledger.
    """

    def __init__(
        self,
        *,
        slack: Optional[float] = None,
        ledger: Any = None,
        label: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.slack = slack
        self.ledger = ledger
        self.label = label
        self.context = dict(context or {})
        self.violations: List[Violation] = []
        self.conformance: ConformanceSummary = ConformanceSummary()
        self.ledger_path: Optional[str] = None
        self._t0 = time.perf_counter()

    @property
    def ok(self) -> bool:
        return not self.violations and self.conformance.ok

    def observe_sweep(
        self, specs: Sequence[Any], records: Sequence[Any]
    ) -> None:
        """Check a completed sweep (called by :func:`repro.analysis.sweep`).

        ``records`` are in grid order — spec-major, seed-minor — so each
        spec owns the next ``len(spec.seeds)`` rows; the algorithm name
        is stamped into ``record.extra["algorithm"]`` from its spec,
        which is what keys the envelope lookup and the ledger's
        per-algorithm distributions.
        """
        cursor = 0
        checks = []
        for spec in specs:
            count = len(getattr(spec, "seeds", (0,)))
            name = getattr(spec, "algorithm_name", None)
            for record in records[cursor : cursor + count]:
                if name is not None:
                    record.extra.setdefault("algorithm", name)
                self.violations.extend(
                    check_record_invariants(record, context=dict(self.context))
                )
                checks.append(check_record(record, slack=self.slack))
            cursor += count
        # Anything past the spec-major mapping (defensive: callers with
        # hand-built grids) still gets invariant + conformance checks.
        for record in records[cursor:]:
            self.violations.extend(
                check_record_invariants(record, context=dict(self.context))
            )
            checks.append(check_record(record, slack=self.slack))
        self.conformance = summarize(checks)
        if self.ledger:
            from repro.monitor.ledger import (
                DEFAULT_LEDGER_PATH,
                append_entry,
                make_entry,
            )

            path = (
                DEFAULT_LEDGER_PATH if self.ledger is True else str(self.ledger)
            )
            entry = make_entry(
                records,
                specs=specs,
                violations=self.violations,
                conformance=self.conformance,
                wall_time_s=time.perf_counter() - self._t0,
                label=self.label,
                context=self.context,
            )
            self.ledger_path = append_entry(entry, path)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "conformance": self.conformance.to_dict(),
            "ledger_path": self.ledger_path,
        }

    def summary(self) -> str:
        lines = [
            f"violations: {len(self.violations)}",
            f"conformance: {self.conformance.conforming}/{self.conformance.total} "
            f"({self.conformance.rate:.1%})",
        ]
        for violation in self.violations[:10]:
            lines.append(f"  {violation}")
        for failure in self.conformance.failures[:10]:
            lines.append(f"  {failure}")
        return "\n".join(lines)
