"""Theory-bound conformance: does each run stay inside its paper envelope?

Every registered algorithm carries an *envelope* — the message and
round/time curves its paper statement promises (Table 1 of the paper,
evaluated by :mod:`repro.lowerbound.bounds`) times a configurable slack
constant.  Asymptotic statements are rendered with constant 1, so the
slack absorbs the hidden constant; the defaults below were calibrated
against fault-free sweeps of this repo's implementations and hold with
comfortable margin, while still catching a complexity regression of
the kind the ledger's ``repro compare`` is meant to surface.

:func:`check_record` measures one :class:`~repro.analysis.RunRecord`
against its envelope; :func:`summarize` aggregates a sweep's results
into a conformance rate.  Envelopes are looked up by algorithm name
(``AlgorithmSpec.envelope`` exposes the same lookup), and parameterized
curves read the run's ``params`` (``ell``, ``d``, ``epsilon``, ``k``…)
with the registry's constructor defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.lowerbound import bounds

__all__ = [
    "Envelope",
    "ConformanceResult",
    "ConformanceSummary",
    "ENVELOPES",
    "get_envelope",
    "check_record",
    "summarize",
]


@dataclass(frozen=True)
class Envelope:
    """Expected message/round curves for one algorithm, with slack.

    ``messages`` / ``rounds`` map ``(n, params)`` to the paper's curve;
    a run conforms when ``measured <= slack * curve(n, params)``.
    ``rounds=None`` means the statement bounds only messages (whp
    statements whose round count the engine already caps).
    """

    algorithm: str
    paper_ref: str
    messages: Callable[[int, Dict[str, Any]], float]
    rounds: Optional[Callable[[int, Dict[str, Any]], float]] = None
    messages_slack: float = 2.0
    rounds_slack: float = 1.5
    notes: str = ""

    def message_limit(self, n: int, params: Optional[Dict[str, Any]] = None,
                      slack: Optional[float] = None) -> float:
        factor = self.messages_slack if slack is None else slack
        return factor * self.messages(n, params or {})

    def round_limit(self, n: int, params: Optional[Dict[str, Any]] = None,
                    slack: Optional[float] = None) -> Optional[float]:
        if self.rounds is None:
            return None
        factor = self.rounds_slack if slack is None else slack
        return factor * self.rounds(n, params or {})


@dataclass
class ConformanceResult:
    """One record measured against one envelope."""

    algorithm: str
    n: int
    seed: int
    messages: int
    message_limit: float
    messages_ok: bool
    time: Optional[float] = None
    round_limit: Optional[float] = None
    rounds_ok: bool = True
    paper_ref: str = ""

    @property
    def ok(self) -> bool:
        return self.messages_ok and self.rounds_ok

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "seed": self.seed,
            "messages": self.messages,
            "message_limit": self.message_limit,
            "messages_ok": self.messages_ok,
            "time": self.time,
            "round_limit": self.round_limit,
            "rounds_ok": self.rounds_ok,
            "ok": self.ok,
            "paper_ref": self.paper_ref,
        }

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "OUT OF ENVELOPE"
        parts = [
            f"{self.algorithm} n={self.n} seed={self.seed}: {verdict}",
            f"messages {self.messages} <= {self.message_limit:.0f}"
            + ("" if self.messages_ok else " FAILED"),
        ]
        if self.round_limit is not None:
            parts.append(
                f"time {self.time:g} <= {self.round_limit:g}"
                + ("" if self.rounds_ok else " FAILED")
            )
        return " | ".join(parts)


@dataclass
class ConformanceSummary:
    """Aggregate verdict over a sweep's conformance results."""

    total: int = 0
    conforming: int = 0
    failures: List[ConformanceResult] = field(default_factory=list)

    @property
    def rate(self) -> float:
        return 1.0 if self.total == 0 else self.conforming / self.total

    @property
    def ok(self) -> bool:
        return self.conforming == self.total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "conforming": self.conforming,
            "rate": self.rate,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
        }


# --------------------------------------------------------------------- #
# the registry of envelopes, one per algorithm name
#
# Slack constants calibrated against fault-free sweeps (n up to 512,
# multiple seeds) of this repo's implementations; see
# tests/test_monitor_conformance.py for the pinning sweep.


def _ell(params: Dict[str, Any], default: int) -> int:
    return int(params.get("ell", default))


ENVELOPES: Dict[str, Envelope] = {
    "improved_tradeoff": Envelope(
        algorithm="improved_tradeoff",
        paper_ref="Thm 3.10",
        messages=lambda n, p: bounds.thm310_messages(n, _ell(p, 3)),
        rounds=lambda n, p: float(bounds.thm310_rounds(_ell(p, 3))),
        messages_slack=2.0,
        rounds_slack=1.5,
        notes="O(ell * n^(1+2/(ell+1))) messages in ell rounds",
    ),
    "afek_gafni": Envelope(
        algorithm="afek_gafni",
        paper_ref="[1]",
        messages=lambda n, p: bounds.ag_messages(n, _ell(p, 4)),
        rounds=lambda n, p: float(_ell(p, 4)),
        messages_slack=2.0,
        rounds_slack=1.5,
        notes="O(ell * n^(1+2/ell)) messages in ell rounds",
    ),
    "small_id": Envelope(
        algorithm="small_id",
        paper_ref="Thm 3.15",
        messages=lambda n, p: float(
            bounds.thm315_messages(n, int(p["d"]), int(p.get("g", 1)))
        ),
        rounds=lambda n, p: float(bounds.thm315_rounds(n, int(p["d"]))),
        messages_slack=1.0,  # the theorem's bound is exact, not asymptotic
        rounds_slack=1.0,
        notes="<= n*d*g messages, <= ceil(n/d) rounds (exact statement)",
    ),
    "kutten16": Envelope(
        algorithm="kutten16",
        paper_ref="[16]",
        messages=lambda n, p: bounds.kutten16_messages(n),
        rounds=lambda n, p: 2.0,
        messages_slack=16.0,  # measured constant <= 8.8 across n in [16, 2048]
        rounds_slack=1.0,
        notes="O(sqrt(n) log^1.5 n) messages, 2 rounds, whp",
    ),
    "las_vegas": Envelope(
        algorithm="las_vegas",
        paper_ref="Thm 3.16",
        messages=lambda n, p: bounds.thm316_las_vegas_messages(n),
        rounds=lambda n, p: 3.0,
        messages_slack=32.0,  # measured constant <= 18.5 (small-n log factors)
        rounds_slack=1.0,
        notes="O(n) messages and 3 rounds, whp",
    ),
    "adversarial_2round": Envelope(
        algorithm="adversarial_2round",
        paper_ref="Thm 4.1",
        messages=lambda n, p: bounds.thm41_expected_messages(
            n, float(p.get("epsilon", 0.05))
        ),
        rounds=lambda n, p: 2.0,
        messages_slack=4.0,
        rounds_slack=1.5,
        notes="expected O(n^1.5 log(1/eps)) messages, 2 rounds per wave",
    ),
    "async_tradeoff": Envelope(
        algorithm="async_tradeoff",
        paper_ref="Thm 5.1",
        messages=lambda n, p: bounds.thm51_messages(
            n, int(p.get("k", bounds.thm51_max_k(n)))
        ),
        rounds=lambda n, p: float(
            bounds.thm51_time(int(p.get("k", bounds.thm51_max_k(n))))
        ),
        messages_slack=24.0,  # measured constant <= 14.3 at small n
        rounds_slack=2.0,
        notes="O(n^(1+1/k)) messages, k+8 time units, whp",
    ),
    "async_afek_gafni": Envelope(
        algorithm="async_afek_gafni",
        paper_ref="Thm 5.14",
        messages=lambda n, p: bounds.thm514_messages(n),
        rounds=lambda n, p: max(4.0, bounds.thm514_time(n)),
        messages_slack=4.0,
        rounds_slack=8.0,  # measured time constant <= 4.9 x log2(n)
        notes="O(n log n) messages, O(log n) time",
    ),
}


def get_envelope(name: str) -> Optional[Envelope]:
    """The envelope registered for ``name`` (None when no statement exists)."""
    return ENVELOPES.get(name)


def check_record(
    record: Any,
    *,
    algorithm: Optional[str] = None,
    slack: Optional[float] = None,
) -> Optional[ConformanceResult]:
    """Measure one :class:`~repro.analysis.RunRecord` against its envelope.

    The algorithm name comes from ``record.extra["algorithm"]`` (stamped
    by monitored sweeps) unless passed explicitly.  Returns ``None``
    when no envelope is registered for the algorithm — absence of a
    theorem is not a violation.  ``slack`` overrides *both* slack
    constants (used by ``repro monitor check --slack``).
    """
    name = algorithm or record.extra.get("algorithm")
    if name is None:
        return None
    envelope = get_envelope(name)
    if envelope is None:
        return None
    params = dict(record.params)
    message_limit = envelope.message_limit(record.n, params, slack)
    round_limit = envelope.round_limit(record.n, params, slack)
    measured_time = record.time
    rounds_ok = True
    if round_limit is not None and measured_time is not None:
        rounds_ok = measured_time <= round_limit
    return ConformanceResult(
        algorithm=name,
        n=record.n,
        seed=record.seed,
        messages=record.messages,
        message_limit=message_limit,
        messages_ok=record.messages <= message_limit,
        time=measured_time,
        round_limit=round_limit,
        rounds_ok=rounds_ok,
        paper_ref=envelope.paper_ref,
    )


def summarize(results: Sequence[Optional[ConformanceResult]]) -> ConformanceSummary:
    """Aggregate a sweep's conformance checks (``None`` entries skipped)."""
    summary = ConformanceSummary()
    for result in results:
        if result is None:
            continue
        summary.total += 1
        if result.ok:
            summary.conforming += 1
        else:
            summary.failures.append(result)
    return summary
