"""Monitoring the vectorized engine: aggregates + sampled-lane replay.

The fast engine never materializes per-event Python objects, so the
recorder-seam monitors cannot attach to it directly.  Two complementary
paths cover it:

:func:`check_fast_telemetry`
    Checks one lane's :class:`~repro.telemetry.FastTelemetry`
    aggregates — leader multiplicity from the decide tally, termination
    from the decide round — at zero extra engine cost.  Coarse: it sees
    counts, not per-node streams.

:func:`monitor_fast_lane`
    Full-strength monitoring of one *sampled* lane: runs the lane on
    both engines via :func:`~repro.telemetry.trace_fast_lane` with a
    :class:`~repro.monitor.MonitorSuite` fanned into the object twin's
    recorder, so every invariant checks the exact-mode-equivalent
    event stream live.  Violations found this way match a post-hoc
    :meth:`~repro.monitor.MonitorSuite.replay` of the recorded events
    bit-exactly (pinned by ``tests/test_monitor_fast.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.monitor.invariants import MonitorSuite
from repro.monitor.violations import Violation, trace_slice

__all__ = ["check_fast_telemetry", "monitor_fast_lane"]


def check_fast_telemetry(
    telemetry: Any,
    lane: int = 0,
    *,
    bound: Optional[float] = None,
    context: Optional[Dict[str, Any]] = None,
) -> List[Violation]:
    """Invariant checks over one lane's aggregate counters.

    ``telemetry`` is a bound :class:`~repro.telemetry.FastTelemetry`
    after the run.  Returns the violations derivable from aggregates:
    multiple leaders in the decide tally (``unique_leader_per_epoch``),
    no decision at all or activity past ``bound`` (``termination_bound``).
    """
    context = dict(context or {})
    context.setdefault("engine", "fast")
    context.setdefault("lane", lane)
    events = telemetry.events(lane)
    violations: List[Violation] = []

    def report(monitor: str, message: str, when: Optional[float] = None) -> None:
        violations.append(
            Violation(
                monitor=monitor,
                message=message,
                when=when,
                context=dict(context),
                trace_slice=trace_slice(events, when),
            )
        )

    decide_round = telemetry.decide_round(lane)
    leaders: Tuple[int, ...] = ()
    entry = telemetry._decides.get(lane)
    if entry is not None:
        leaders = entry[1]
    if len(leaders) > 1:
        report(
            "unique_leader_per_epoch",
            f"{len(leaders)} leaders in the decide tally (nodes {sorted(leaders)})",
            when=float(decide_round) if decide_round is not None else None,
        )
    if decide_round is None:
        report("termination_bound", "lane finished without any decision")
    elif bound is not None and decide_round > bound:
        report(
            "termination_bound",
            f"decision at round {decide_round} exceeds the termination bound "
            f"{bound:g}",
            when=float(decide_round),
        )
    if bound is not None:
        sends = telemetry.sends_by_round(lane)
        late = [r for r in sends if r > bound]
        if late:
            report(
                "termination_bound",
                f"sends at round {min(late)} exceed the termination bound {bound:g}",
                when=float(min(late)),
            )
    return violations


def monitor_fast_lane(
    n: int,
    algorithm: str,
    *,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
    lane: int = 0,
    ids: Optional[Sequence[int]] = None,
    params: Optional[Dict[str, Any]] = None,
    max_rounds: Optional[int] = None,
    suite: Optional[MonitorSuite] = None,
    quorum: bool = False,
    bound: Optional[float] = None,
) -> Tuple[Any, MonitorSuite]:
    """Monitor one sampled fast lane at full event resolution.

    Returns ``(lane_trace, suite)``: the
    :class:`~repro.telemetry.LaneTrace` of the dual execution and the
    finished suite.  Any aggregate mismatch between the engines is
    itself reported as a ``fast_lane_equivalence`` violation — a fast
    run whose twin disagrees is unverifiable, which is a finding, not
    an error.
    """
    from repro.telemetry.fast import trace_fast_lane

    if suite is None:
        suite = MonitorSuite(
            n=n,
            ids=ids,
            quorum=quorum,
            bound=bound,
            context={
                "engine": "fast",
                "algorithm": algorithm,
                "lane": lane,
                "seed": seed if seeds is None else list(seeds)[lane],
            },
        )
    lane_trace = trace_fast_lane(
        n,
        algorithm,
        seed=seed,
        seeds=seeds,
        lane=lane,
        ids=ids,
        params=params,
        max_rounds=max_rounds,
        recorder=suite,
    )
    suite.finish(lane_trace.sync_result)
    for mismatch in lane_trace.mismatches:
        suite.report("fast_lane_equivalence", f"engine aggregates diverge: {mismatch}")
    return lane_trace, suite
