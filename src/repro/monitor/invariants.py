"""Streaming invariant monitors over the engine recorder seam.

A :class:`MonitorSuite` *is* a recorder: attach it to a
:class:`~repro.sync.SyncNetwork` / :class:`~repro.asyncnet.AsyncNetwork`
(directly or fanned in through a
:class:`~repro.trace.CompositeRecorder`) and the election is checked
while it runs.  The fast engine has no per-event hooks; its runs are
checked from :class:`~repro.telemetry.FastTelemetry` aggregates plus a
sampled-lane object-engine replay (:func:`repro.monitor.monitor_fast_lane`).

The invariants are the safety/liveness contract every election run of
this repo is supposed to satisfy:

``unique_leader_per_epoch``
    At no point are two committed leaders simultaneously alive.  This
    is exactly the scenario layer's split-brain condition — decisions
    are irrevocable within a run, so the reigning set only shrinks via
    crashes.
``agreement``
    Alive nodes that named a leader (explicit variant) all name the
    same one.
``validity``
    Every named leader ID belongs to a member that actually woke (a
    contender); nobody elects a ghost.
``quorum_one_leader``
    PR 4 quorum semantics: a leader only commits while a majority of
    the full membership is alive, and committed reigns never overlap.
``termination_bound``
    Every awake, uncrashed node decides, and (optionally) all activity
    stays below an explicit round/time bound.

Violations are collected, never raised — see
:class:`~repro.monitor.Violation`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.trace.events import EventRecorder, TraceEvent
from repro.common import Decision
from repro.monitor.violations import Violation, trace_slice

__all__ = [
    "InvariantMonitor",
    "UniqueLeaderMonitor",
    "AgreementMonitor",
    "ValidityMonitor",
    "QuorumOneLeaderMonitor",
    "TerminationMonitor",
    "MonitorSuite",
    "default_monitors",
    "MONITOR_NAMES",
]

#: Recent-event window kept for violation trace slices.
DEFAULT_WINDOW = 512


class InvariantMonitor:
    """One streaming checker; subclasses observe events and report."""

    name = "invariant"

    def bind(self, suite: "MonitorSuite") -> None:
        self.suite = suite

    def observe(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        pass

    def finish(self, result: Optional[Any] = None) -> None:
        """Final checks once the run ended (``result`` when available)."""

    def _report(
        self, message: str, *, when: Optional[float] = None, node: Optional[int] = None
    ) -> None:
        self.suite.report(self.name, message, when=when, node=node)


class UniqueLeaderMonitor(InvariantMonitor):
    """At most one committed leader alive at any instant.

    ``concurrent_leaders`` after the run equals the engine's
    ``len(result.surviving_leaders)`` accounting whenever the event
    stream is complete — the scenario layer routes its split-brain
    metric through this monitor so the two can never disagree.
    """

    name = "unique_leader_per_epoch"

    def __init__(self) -> None:
        self.reigning: Set[int] = set()
        self.crashed: Set[int] = set()
        self.max_concurrent = 0
        self._flagged: Set[frozenset] = set()

    @property
    def concurrent_leaders(self) -> int:
        """Committed leaders still alive (after the observed stream)."""
        return len(self.reigning)

    def observe(self, event: TraceEvent) -> None:
        if event.kind == "decide":
            decision = event.detail[0]
            if decision is Decision.LEADER:
                self.reigning.add(event.node)
                self.max_concurrent = max(self.max_concurrent, len(self.reigning))
                if len(self.reigning) > 1:
                    key = frozenset(self.reigning)
                    if key not in self._flagged:
                        self._flagged.add(key)
                        self._report(
                            f"{len(self.reigning)} leaders simultaneously alive "
                            f"(nodes {sorted(self.reigning)})",
                            when=event.when,
                            node=event.node,
                        )
        elif event.kind == "crash":
            self.crashed.add(event.node)
            self.reigning.discard(event.node)

    def finish(self, result: Optional[Any] = None) -> None:
        if result is None or not self._flagged:
            surviving = getattr(result, "surviving_leaders", None)
            if surviving is not None and len(surviving) > 1 and not self._flagged:
                # The stream missed it (monitor attached late, filtered
                # hooks): the engine's own survivor accounting is
                # authoritative, so cross-check it.
                self._flagged.add(frozenset(surviving))
                self._report(
                    f"{len(surviving)} leaders alive at run end "
                    f"(nodes {sorted(surviving)})"
                )


class AgreementMonitor(InvariantMonitor):
    """Alive nodes with explicit outputs all name the same leader."""

    name = "agreement"

    def __init__(self) -> None:
        self.outputs: Dict[int, int] = {}
        self.crashed: Set[int] = set()
        self._flagged: Set[frozenset] = set()

    def observe(self, event: TraceEvent) -> None:
        if event.kind == "crash":
            self.crashed.add(event.node)
            return
        if event.kind != "decide":
            return
        output = event.detail[1]
        if output is None:
            return  # implicit variant / quorum abstention: nothing to compare
        self.outputs[event.node] = output
        alive = {
            out for node, out in self.outputs.items() if node not in self.crashed
        }
        if len(alive) > 1:
            key = frozenset(alive)
            if key not in self._flagged:
                self._flagged.add(key)
                self._report(
                    f"alive nodes disagree on the leader: ids {sorted(alive)}",
                    when=event.when,
                    node=event.node,
                )


class ValidityMonitor(InvariantMonitor):
    """Every named leader ID belongs to a member that actually woke.

    Needs the suite's ``ids`` context to map IDs back to nodes; without
    it only the membership check runs (an unknown ID is still flagged).
    """

    name = "validity"

    def __init__(self) -> None:
        self.woken: Set[int] = set()
        self._flagged: Set[int] = set()

    def observe(self, event: TraceEvent) -> None:
        if event.kind == "wake":
            self.woken.add(event.node)
            return
        if event.kind != "decide":
            return
        output = event.detail[1]
        if output is None or output in self._flagged:
            return
        id_to_node = self.suite.id_to_node
        if id_to_node is None:
            return
        owner = id_to_node.get(output)
        if owner is None:
            self._flagged.add(output)
            self._report(
                f"elected id {output} is not a member id",
                when=event.when,
                node=event.node,
            )
        elif owner not in self.woken:
            self._flagged.add(output)
            self._report(
                f"elected id {output} (node {owner}) never woke — not a contender",
                when=event.when,
                node=event.node,
            )


class QuorumOneLeaderMonitor(InvariantMonitor):
    """PR 4 quorum semantics: commits need a live majority, reigns never overlap.

    Attach when the run promises quorum gating (``quorum_reelect`` or
    ``--quorum`` scenario acts); a plain re-election wrapper under a
    partition legitimately violates this, which is exactly the failure
    mode the quorum layer exists to close.
    """

    name = "quorum_one_leader"

    def __init__(self) -> None:
        self.reigning: Set[int] = set()
        self.crashed: Set[int] = set()
        self._flagged_minority: Set[int] = set()
        self._flagged_overlap: Set[frozenset] = set()

    def observe(self, event: TraceEvent) -> None:
        if event.kind == "crash":
            self.crashed.add(event.node)
            self.reigning.discard(event.node)
            return
        if event.kind != "decide" or event.detail[0] is not Decision.LEADER:
            return
        n = self.suite.n
        if n is not None:
            alive = n - len(self.crashed)
            if alive < n // 2 + 1 and event.node not in self._flagged_minority:
                self._flagged_minority.add(event.node)
                self._report(
                    f"leader committed with only {alive}/{n} members alive "
                    "(no live majority)",
                    when=event.when,
                    node=event.node,
                )
        self.reigning.add(event.node)
        if len(self.reigning) > 1:
            key = frozenset(self.reigning)
            if key not in self._flagged_overlap:
                self._flagged_overlap.add(key)
                self._report(
                    f"overlapping committed reigns: nodes {sorted(self.reigning)}",
                    when=event.when,
                    node=event.node,
                )


class TerminationMonitor(InvariantMonitor):
    """Every awake, uncrashed node decides — optionally within ``bound``."""

    name = "termination_bound"

    def __init__(self, bound: Optional[float] = None) -> None:
        self.bound = bound
        self.woken: Set[int] = set()
        self.decided: Set[int] = set()
        self.crashed: Set[int] = set()
        self._bound_flagged = False

    def observe(self, event: TraceEvent) -> None:
        if event.kind == "wake":
            self.woken.add(event.node)
        elif event.kind == "decide":
            self.decided.add(event.node)
        elif event.kind == "crash":
            self.crashed.add(event.node)
        if (
            self.bound is not None
            and not self._bound_flagged
            and event.when > self.bound
        ):
            self._bound_flagged = True
            self._report(
                f"activity at t={event.when:g} exceeds the termination bound "
                f"{self.bound:g}",
                when=event.when,
                node=event.node,
            )

    def finish(self, result: Optional[Any] = None) -> None:
        undecided: List[int] = []
        if result is not None and hasattr(result, "decisions"):
            crashed = set(getattr(result, "crashed", ()) or ())
            woken = self.woken or set(range(len(result.decisions)))
            undecided = [
                u
                for u, decision in enumerate(result.decisions)
                if decision is None and u not in crashed and u in woken
            ]
        else:
            undecided = sorted(self.woken - self.decided - self.crashed)
        if undecided:
            self._report(
                f"{len(undecided)} awake node(s) never decided "
                f"(e.g. node {undecided[0]})"
            )


#: Names of every shipped invariant, in attachment order.
MONITOR_NAMES = (
    "unique_leader_per_epoch",
    "agreement",
    "validity",
    "quorum_one_leader",
    "termination_bound",
)


def default_monitors(
    *, quorum: bool = False, bound: Optional[float] = None
) -> List[InvariantMonitor]:
    """The standard checker set; ``quorum_one_leader`` only when promised."""
    monitors: List[InvariantMonitor] = [
        UniqueLeaderMonitor(),
        AgreementMonitor(),
        ValidityMonitor(),
    ]
    if quorum:
        monitors.append(QuorumOneLeaderMonitor())
    monitors.append(TerminationMonitor(bound=bound))
    return monitors


class MonitorSuite(EventRecorder):
    """A recorder that fans engine events into invariant monitors.

    Pass as ``recorder=`` to any object-engine entrypoint (or into a
    :class:`~repro.trace.CompositeRecorder` next to a JSONL trace), or
    feed a recorded stream through :meth:`replay`.  Call :meth:`finish`
    once the run ended — monitors run their final checks against the
    engine result — then read :attr:`violations`.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[InvariantMonitor]] = None,
        *,
        n: Optional[int] = None,
        ids: Optional[Sequence[int]] = None,
        quorum: bool = False,
        bound: Optional[float] = None,
        context: Optional[Dict[str, Any]] = None,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        super().__init__()
        if monitors is None:
            monitors = default_monitors(quorum=quorum, bound=bound)
        self.monitors = list(monitors)
        if ids is None and n is not None:
            ids = list(range(1, n + 1))
        self.n = n if n is not None else (len(ids) if ids is not None else None)
        self.ids = list(ids) if ids is not None else None
        self.id_to_node: Optional[Dict[int, int]] = (
            {node_id: u for u, node_id in enumerate(self.ids)}
            if self.ids is not None
            else None
        )
        self.context: Dict[str, Any] = dict(context or {})
        self.violations: List[Violation] = []
        self._ring: deque = deque(maxlen=window)
        self._finished = False
        for monitor in self.monitors:
            monitor.bind(self)

    # -------------------------------------------------------------- #
    # recorder seam

    def _record(self, event: TraceEvent) -> None:
        self._ring.append(event)
        for monitor in self.monitors:
            monitor.observe(event)

    def replay(self, events: Sequence[TraceEvent]) -> "MonitorSuite":
        """Feed an already-recorded stream (bit-equal to live attachment)."""
        for event in events:
            self._record(event)
        return self

    # -------------------------------------------------------------- #
    # results

    def report(
        self,
        monitor: str,
        message: str,
        *,
        when: Optional[float] = None,
        node: Optional[int] = None,
    ) -> None:
        self.violations.append(
            Violation(
                monitor=monitor,
                message=message,
                when=when,
                node=node,
                context=dict(self.context),
                trace_slice=trace_slice(list(self._ring), when),
            )
        )

    def finish(self, result: Optional[Any] = None) -> List[Violation]:
        """Run every monitor's final checks; idempotent."""
        if not self._finished:
            self._finished = True
            for monitor in self.monitors:
                monitor.finish(result)
        return self.violations

    def monitor(self, name: str) -> InvariantMonitor:
        """Look up an attached monitor by invariant name."""
        for m in self.monitors:
            if m.name == name:
                return m
        raise KeyError(f"no monitor named {name!r} attached")

    @property
    def ok(self) -> bool:
        return not self.violations
