"""The persistent run ledger: one JSONL line per monitored run/sweep.

``.repro/ledger.jsonl`` accumulates a durable history of what was run
and what it cost: the spec hash (so identical workloads are comparable
across commits), the git SHA, message/round distribution statistics
per algorithm, every violation, the conformance rate, and wall time.
``repro history`` lists it; ``repro compare <ref>`` diffs the message
and round distributions of two entries and exits non-zero when the new
entry regresses beyond slack — the cross-commit complement of the
in-process bench-regression gate.

Entries are append-only and self-describing (``schema`` field); readers
skip lines they cannot parse, so mixed-version ledgers stay usable.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "spec_hash",
    "git_sha",
    "make_entry",
    "append_entry",
    "read_ledger",
    "prune_ledger",
    "resolve_ref",
    "compare_entries",
    "LedgerDiff",
]

LEDGER_SCHEMA = "repro.ledger/1"

#: Where monitored runs land unless told otherwise.
DEFAULT_LEDGER_PATH = os.path.join(".repro", "ledger.jsonl")


def spec_hash(specs: Sequence[Any]) -> str:
    """Stable hash of a workload: same specs → same hash across commits.

    Hashes each spec's observable coordinates (algorithm name or
    factory qualname, n, engine, seeds, params, batch, mode) — not
    object identities — so a re-run of the same campaign on a later
    commit lands on the same hash and ``repro compare`` can pair them.
    """
    descriptors = []
    for spec in specs:
        algorithm = getattr(spec, "algorithm", spec)
        if not isinstance(algorithm, str):
            algorithm = getattr(algorithm, "__qualname__", None) or repr(
                getattr(algorithm, "__class__", algorithm)
            )
        descriptors.append(
            {
                "algorithm": algorithm,
                "n": getattr(spec, "n", None),
                "engine": getattr(spec, "engine", None),
                "seeds": list(getattr(spec, "seeds", ()) or ()),
                "params": dict(sorted((getattr(spec, "params", {}) or {}).items())),
                "batch": getattr(spec, "batch", None),
                "mode": getattr(spec, "mode", None),
            }
        )
    payload = json.dumps(descriptors, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def git_sha() -> Optional[str]:
    """The current commit, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _distribution(values: Sequence[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0, "max": 0.0}
    total = float(sum(values))
    return {
        "count": len(values),
        "total": total,
        "mean": total / len(values),
        "max": float(max(values)),
    }


def _per_algorithm(records: Sequence[Any], attr: str) -> Dict[str, Dict[str, float]]:
    buckets: Dict[str, List[float]] = {}
    for record in records:
        name = record.extra.get("algorithm", "?")
        buckets.setdefault(name, []).append(float(getattr(record, attr)))
    return {name: _distribution(vals) for name, vals in sorted(buckets.items())}


def make_entry(
    records: Sequence[Any],
    *,
    specs: Optional[Sequence[Any]] = None,
    violations: Sequence[Any] = (),
    conformance: Optional[Any] = None,
    wall_time_s: Optional[float] = None,
    label: Optional[str] = None,
    context: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one JSON-safe ledger entry from a monitored run's artifacts."""
    entry = {
        "schema": LEDGER_SCHEMA,
        "ts": time.time(),
        "label": label,
        "git_sha": git_sha(),
        "spec_hash": spec_hash(specs) if specs is not None else None,
        "runs": len(records),
        "messages": _distribution([float(r.messages) for r in records]),
        "time": _distribution([float(r.time) for r in records]),
        "by_algorithm": {
            "messages": _per_algorithm(records, "messages"),
            "time": _per_algorithm(records, "time"),
        },
        "violations": [
            v.to_dict() if hasattr(v, "to_dict") else dict(v) for v in violations
        ],
        "conformance": (
            conformance.to_dict()
            if hasattr(conformance, "to_dict")
            else conformance
        ),
        "wall_time_s": wall_time_s,
        "context": dict(context or {}),
    }
    return entry


def append_entry(entry: Dict[str, Any], path: str = DEFAULT_LEDGER_PATH) -> str:
    """Append one entry (creating the ledger and its directory)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, default=str) + "\n")
    return path


def read_ledger(path: str = DEFAULT_LEDGER_PATH) -> List[Dict[str, Any]]:
    """All parseable entries, oldest first (unknown lines are skipped)."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def prune_ledger(path: str = DEFAULT_LEDGER_PATH, *, keep: int) -> Dict[str, int]:
    """Keep only the newest ``keep`` entries; returns kept/dropped counts.

    The ledger is append-only by design, so unbounded campaigns grow it
    without limit; pruning rewrites the file with the most recent
    ``keep`` parseable entries (unparseable lines are dropped too — they
    were already invisible to every reader).  The rewrite goes through a
    temp file and an atomic replace, so a crash mid-prune never leaves a
    truncated ledger.
    """
    if keep < 0:
        raise ValueError("keep must be >= 0")
    entries = read_ledger(path)
    kept = entries[-keep:] if keep else []
    if not os.path.exists(path):
        return {"kept": 0, "dropped": 0}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for entry in kept:
            fh.write(json.dumps(entry, default=str) + "\n")
    os.replace(tmp, path)
    return {"kept": len(kept), "dropped": len(entries) - len(kept)}


def resolve_ref(entries: Sequence[Dict[str, Any]], ref: str) -> Dict[str, Any]:
    """Resolve a user-facing entry reference.

    Accepts a ledger index (``0`` oldest, ``-1`` latest), an exact
    ``--label``, or a git-SHA / spec-hash prefix (newest match wins).
    """
    if not entries:
        raise LookupError("the ledger is empty")
    try:
        return list(entries)[int(ref)]
    except (ValueError, IndexError):
        pass
    for entry in reversed(list(entries)):
        if entry.get("label") == ref:
            return entry
        for key in ("git_sha", "spec_hash"):
            value = entry.get(key)
            if isinstance(value, str) and value.startswith(ref):
                return entry
    raise LookupError(f"no ledger entry matches {ref!r}")


@dataclass
class LedgerDiff:
    """Message/round distribution diff between two ledger entries."""

    base_label: str
    new_label: str
    regressed: bool = False
    lines: List[str] = field(default_factory=list)
    deltas: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base_label,
            "new": self.new_label,
            "regressed": self.regressed,
            "lines": list(self.lines),
            "deltas": {k: dict(v) for k, v in self.deltas.items()},
        }

    def summary(self) -> str:
        head = f"ledger compare: {self.base_label} -> {self.new_label}"
        verdict = "REGRESSED" if self.regressed else "ok"
        return "\n".join([head, *self.lines, f"verdict: {verdict}"])


def _entry_label(entry: Dict[str, Any]) -> str:
    sha = entry.get("git_sha") or "?"
    label = entry.get("label")
    base = sha[:8] if isinstance(sha, str) else "?"
    return f"{base}({label})" if label else base


def compare_entries(
    base: Dict[str, Any],
    new: Dict[str, Any],
    *,
    slack: float = 0.10,
) -> LedgerDiff:
    """Diff two entries' per-algorithm message/round means.

    ``regressed`` is set when any algorithm's mean message count in
    ``new`` exceeds the base mean by more than ``slack`` (relative), or
    when ``new`` carries violations the base did not.  Rounds/time are
    reported but only messages gate — round counts are small integers
    where relative slack is too noisy to enforce.
    """
    diff = LedgerDiff(base_label=_entry_label(base), new_label=_entry_label(new))
    if base.get("spec_hash") != new.get("spec_hash"):
        diff.lines.append(
            "note: spec hashes differ "
            f"({base.get('spec_hash')} vs {new.get('spec_hash')}) — "
            "comparing different workloads"
        )
    for metric in ("messages", "time"):
        base_by = (base.get("by_algorithm") or {}).get(metric, {})
        new_by = (new.get("by_algorithm") or {}).get(metric, {})
        for name in sorted(set(base_by) | set(new_by)):
            b = base_by.get(name)
            a = new_by.get(name)
            if b is None or a is None:
                diff.lines.append(
                    f"{metric}/{name}: only in "
                    + ("new entry" if b is None else "base entry")
                )
                continue
            b_mean, a_mean = float(b.get("mean", 0.0)), float(a.get("mean", 0.0))
            rel = 0.0 if b_mean == 0 else (a_mean - b_mean) / b_mean
            diff.deltas[f"{metric}/{name}"] = {
                "base_mean": b_mean,
                "new_mean": a_mean,
                "rel": rel,
            }
            marker = ""
            if metric == "messages" and rel > slack:
                diff.regressed = True
                marker = f"  REGRESSION (> {slack:.0%} slack)"
            diff.lines.append(
                f"{metric}/{name}: mean {b_mean:.1f} -> {a_mean:.1f} "
                f"({rel:+.1%}){marker}"
            )
    base_violations = len(base.get("violations") or ())
    new_violations = len(new.get("violations") or ())
    if new_violations > base_violations:
        diff.regressed = True
        diff.lines.append(
            f"violations: {base_violations} -> {new_violations}  REGRESSION"
        )
    elif new_violations or base_violations:
        diff.lines.append(f"violations: {base_violations} -> {new_violations}")
    return diff
