"""Live sweep progress: cell events, worker utilization, cost-weighted ETA.

The PR 7 scheduler reports to any object with the
:class:`ProgressListener` hooks (all optional; errors in a listener are
swallowed — a broken progress bar must never kill a long campaign).
:class:`SweepProgress` is the standard listener: it accumulates
:class:`ProgressEvent` records (tests read these) and, when ``live``,
renders a single self-overwriting ASCII line::

    sweep  37/96 cells  54.1% cost  workers=8  util 0.92  elapsed 12.4s  eta 10.5s

The ETA extrapolates from the *completed cost fraction*, not the cell
count — cells are ragged (cost ≈ n·len(seeds)), so finishing the many
cheap cells first says little about the monster cells still running.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["ProgressListener", "ProgressEvent", "SweepProgress"]


class ProgressListener:
    """No-op base: the hook surface the scheduler drives."""

    def start(self, total_cells: int, total_cost: float, workers: int) -> None:
        pass

    def cell_start(self, cell: Any) -> None:
        pass

    def cell_finish(self, cell: Any, wall: float, slot: int) -> None:
        pass

    def finish(self, elapsed: float) -> None:
        pass


@dataclass
class ProgressEvent:
    """One observed scheduler event (``kind`` in start/cell_start/cell_finish/finish)."""

    kind: str
    index: Optional[int] = None
    cost: float = 0.0
    wall: float = 0.0
    slot: Optional[int] = None
    elapsed: float = 0.0
    eta: Optional[float] = None


class SweepProgress(ProgressListener):
    """Accumulating listener with an optional live ASCII line.

    ``live=None`` auto-enables rendering on a TTY ``stream``;
    ``live=True`` forces it (the ``--progress`` CLI flag), ``live=False``
    collects events silently (tests).
    """

    def __init__(
        self,
        *,
        stream: Any = None,
        live: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self.events: List[ProgressEvent] = []
        self.total_cells = 0
        self.total_cost = 0.0
        self.workers = 1
        self.completed_cells = 0
        self.completed_cost = 0.0
        self.busy_by_slot: Dict[int, float] = {}
        self._t0: Optional[float] = None
        self._rendered = False

    # ---------------------------------------------------------------- #
    # listener hooks

    def start(self, total_cells: int, total_cost: float, workers: int) -> None:
        self._t0 = time.perf_counter()
        self.total_cells = total_cells
        self.total_cost = total_cost
        self.workers = workers
        self.events.append(
            ProgressEvent(kind="start", cost=total_cost, slot=workers)
        )
        self._render()

    def cell_start(self, cell: Any) -> None:
        self.events.append(
            ProgressEvent(
                kind="cell_start",
                index=cell.index,
                cost=cell.cost,
                elapsed=self.elapsed,
            )
        )

    def cell_finish(self, cell: Any, wall: float, slot: int) -> None:
        self.completed_cells += 1
        self.completed_cost += cell.cost
        self.busy_by_slot[slot] = self.busy_by_slot.get(slot, 0.0) + wall
        self.events.append(
            ProgressEvent(
                kind="cell_finish",
                index=cell.index,
                cost=cell.cost,
                wall=wall,
                slot=slot,
                elapsed=self.elapsed,
                eta=self.eta,
            )
        )
        self._render()

    def finish(self, elapsed: float) -> None:
        self.events.append(ProgressEvent(kind="finish", elapsed=elapsed))
        if self.live and self._rendered:
            self.stream.write("\r" + self.render_line(final=True) + "\n")
            self.stream.flush()

    # ---------------------------------------------------------------- #
    # derived state

    @property
    def elapsed(self) -> float:
        return 0.0 if self._t0 is None else time.perf_counter() - self._t0

    @property
    def cost_fraction(self) -> float:
        return (
            self.completed_cost / self.total_cost if self.total_cost > 0 else 0.0
        )

    @property
    def eta(self) -> Optional[float]:
        """Remaining seconds, extrapolated from the completed-cost fraction."""
        fraction = self.cost_fraction
        if fraction <= 0.0:
            return None
        elapsed = self.elapsed
        return elapsed * (1.0 - fraction) / fraction

    @property
    def utilization(self) -> float:
        """Mean busy fraction across the worker slots seen so far."""
        elapsed = self.elapsed
        if elapsed <= 0.0 or not self.busy_by_slot:
            return 0.0
        busy = sum(self.busy_by_slot.values())
        return min(1.0, busy / (elapsed * self.workers))

    # ---------------------------------------------------------------- #
    # rendering

    def render_line(self, final: bool = False) -> str:
        eta = self.eta
        eta_part = "eta --" if eta is None else f"eta {eta:.1f}s"
        if final:
            eta_part = "done"
        return (
            f"sweep  {self.completed_cells}/{self.total_cells} cells  "
            f"{self.cost_fraction:6.1%} cost  workers={self.workers}  "
            f"util {self.utilization:.2f}  elapsed {self.elapsed:.1f}s  "
            f"{eta_part}"
        )

    def _render(self) -> None:
        if not self.live:
            return
        self._rendered = True
        self.stream.write("\r" + self.render_line())
        self.stream.flush()
