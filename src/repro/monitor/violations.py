"""The :class:`Violation` record: what a monitor reports instead of raising.

Monitors never assert — a sweep that trips an invariant keeps running
and reports the violation as data, so a million-run campaign surfaces
*every* bad run instead of dying on the first one.  Each violation
carries the run coordinates it was observed under, the offending
round/time, and a minimal trace slice (the events around the offense)
so the failure is debuggable without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Violation", "trace_slice"]

#: Rounds of context captured on either side of the offending round.
SLICE_RADIUS = 1.0

#: Hard cap on events in a violation's trace slice (dense rounds at
#: large n would otherwise make violations megabyte-sized).
SLICE_LIMIT = 24


@dataclass
class Violation:
    """One invariant breach, flattened for reports and the ledger."""

    monitor: str                      # invariant name, e.g. unique_leader_per_epoch
    message: str                      # human-readable statement of the breach
    when: Optional[float] = None      # offending round (sync) / time (async)
    node: Optional[int] = None        # offending node index, if one exists
    context: Dict[str, Any] = field(default_factory=dict)  # run coordinates
    trace_slice: List[str] = field(default_factory=list)   # events around `when`

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (ledger entries and ``--json`` reports)."""
        return {
            "monitor": self.monitor,
            "message": self.message,
            "when": self.when,
            "node": self.node,
            "context": dict(self.context),
            "trace_slice": list(self.trace_slice),
        }

    def __str__(self) -> str:
        where = "" if self.when is None else f" at t={self.when:g}"
        who = "" if self.node is None else f" node={self.node}"
        return f"[{self.monitor}]{where}{who}: {self.message}"


def trace_slice(
    events: Sequence[Any],
    when: Optional[float],
    *,
    radius: float = SLICE_RADIUS,
    limit: int = SLICE_LIMIT,
) -> List[str]:
    """Render the events within ``when ± radius`` (capped at ``limit``).

    ``events`` are :class:`~repro.trace.TraceEvent` instances (anything
    with ``when`` and ``__str__`` works).  With ``when=None`` the tail
    of the stream is captured instead — the offense happened at finish
    time, so the most recent events are the relevant context.
    """
    if when is None:
        window = list(events)[-limit:]
    else:
        window = [e for e in events if abs(e.when - when) <= radius]
        if len(window) > limit:
            # Keep the slice centered: trim symmetrically around `when`.
            window.sort(key=lambda e: (abs(e.when - when), e.when))
            window = sorted(window[:limit], key=lambda e: (e.when, e.node))
    return [str(e) for e in window]
