"""Network substrate shared by the synchronous and asynchronous simulators.

The only topology in the paper is the *clique* under the clean-network
(KT0) model: every node has ``n - 1`` ports; the assignment of ports to
peers is arbitrary (adversarial) and unknown to a node until a message is
sent or received over the port.  :mod:`repro.net.ports` implements that
model, including the partially-defined ("lazy") mappings used by the
paper's lower-bound arguments.
"""

from repro.net.ports import (
    CanonicalPortMap,
    LazyPortMap,
    PortMap,
    PortMapExhausted,
    PortConnectionPolicy,
    RandomPortPolicy,
    SequentialPortPolicy,
    CallbackPortPolicy,
)

__all__ = [
    "CanonicalPortMap",
    "LazyPortMap",
    "PortMap",
    "PortMapExhausted",
    "PortConnectionPolicy",
    "RandomPortPolicy",
    "SequentialPortPolicy",
    "CallbackPortPolicy",
]
