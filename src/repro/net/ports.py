"""The clique port model (clean network / KT0) of Section 2 of the paper.

Every node ``u`` in an ``n``-node clique owns ports ``0 .. n-2``.  A *port
mapping* ``p`` maps each pair ``(u, i)`` to a pair ``(v, j)``, meaning a
message sent by ``u`` over port ``i`` is received by ``v`` over port ``j``.
The mapping is bijective and involutive — ``p((u, i)) = (v, j)`` implies
``p((v, j)) = (u, i)`` — and every unordered node pair ``{u, v}`` is joined
by exactly one link.

Crucially, nodes do not know how their ports are connected until they send
or receive over them, and the model quantifies over *all* port mappings.
The paper's lower bounds exploit this by fixing the endpoints of unused
ports adaptively ("partial port mappings", Definition 3.4).  We realize
that formalism directly: :class:`LazyPortMap` keeps the mapping partial and
resolves an endpoint only at first use, delegating the choice to a
pluggable :class:`PortConnectionPolicy` — uniform random by default, or an
adaptive adversary for lower-bound experiments.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "PortMap",
    "LazyPortMap",
    "CanonicalPortMap",
    "PortMapExhausted",
    "PortConnectionPolicy",
    "RandomPortPolicy",
    "SequentialPortPolicy",
    "CallbackPortPolicy",
]

Endpoint = Tuple[int, int]


class PortMapExhausted(RuntimeError):
    """Raised when a connection request cannot be satisfied.

    This can only happen through misuse (resolving more than ``n - 1``
    ports for one node) or through an inconsistent adversarial policy.
    """


class PortMap:
    """Abstract interface of a (possibly partial) clique port mapping."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        self.n = n

    @property
    def ports_per_node(self) -> int:
        """Each node owns ``n - 1`` ports."""
        return self.n - 1

    def check_port(self, u: int, port: int) -> None:
        """Validate that ``port`` is a legal port number of node ``u``."""
        if not 0 <= u < self.n:
            raise ValueError(f"node {u} out of range [0, {self.n})")
        if not 0 <= port < self.ports_per_node:
            raise ValueError(
                f"port {port} out of range [0, {self.ports_per_node}) at node {u}"
            )

    def resolve(self, u: int, port: int) -> Endpoint:
        """Return (and fix, if still undefined) the endpoint of ``(u, port)``."""
        raise NotImplementedError

    def is_resolved(self, u: int, port: int) -> bool:
        """Whether the endpoint of ``(u, port)`` has already been fixed."""
        raise NotImplementedError

    def peer(self, u: int, port: int) -> int:
        """The node reached through ``(u, port)`` (resolving if needed)."""
        return self.resolve(u, port)[0]

    def linked_peers(self, u: int) -> Iterable[int]:
        """Nodes already connected to ``u`` by a resolved link."""
        raise NotImplementedError


class CanonicalPortMap(PortMap):
    """The deterministic "ring offset" mapping, fully defined up front.

    Port ``i`` of node ``u`` connects to node ``(u + i + 1) mod n``; the
    reverse port at ``v`` is ``(u - v - 1) mod n``.  This is the simplest
    total port mapping and is useful as a worst-case-free baseline and for
    exhaustive small-``n`` tests.  It needs O(1) memory.
    """

    def resolve(self, u: int, port: int) -> Endpoint:
        self.check_port(u, port)
        v = (u + port + 1) % self.n
        j = (u - v - 1) % self.n
        return (v, j)

    def is_resolved(self, u: int, port: int) -> bool:
        self.check_port(u, port)
        return True

    def linked_peers(self, u: int) -> Iterable[int]:
        return (v for v in range(self.n) if v != u)


class PortConnectionPolicy:
    """Strategy deciding where a freshly used port gets connected.

    ``choose_peer`` must return a node ``v != u`` that is not yet linked to
    ``u``; the port map then picks (or asks the policy for) a free port at
    ``v``.  Policies see the :class:`LazyPortMap` itself and may therefore
    base decisions on the full partial mapping — exactly the power the
    paper grants its adaptive adversary.
    """

    def choose_peer(self, port_map: "LazyPortMap", u: int, port: int) -> int:
        raise NotImplementedError

    def choose_peer_port(
        self, port_map: "LazyPortMap", u: int, port: int, v: int
    ) -> Optional[int]:
        """Optionally pick the port at ``v``; ``None`` lets the map pick."""
        return None


class RandomPortPolicy(PortConnectionPolicy):
    """Connect each newly used port to a uniformly random eligible peer.

    Both the peer and the peer-side port are picked uniformly among the
    eligible choices, so the resolved mapping is a "generic" port mapping
    with no adversarial structure.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose_peer(self, port_map: "LazyPortMap", u: int, port: int) -> int:
        return port_map.random_unlinked_peer(u, self.rng)

    def choose_peer_port(
        self, port_map: "LazyPortMap", u: int, port: int, v: int
    ) -> Optional[int]:
        return port_map.random_free_port(v, self.rng)


class SequentialPortPolicy(PortConnectionPolicy):
    """Connect each newly used port to the smallest eligible peer.

    Deterministic and highly "clustered": low ports of low nodes all talk
    to each other.  Valuable in tests because it is the kind of degenerate
    mapping a correct algorithm must tolerate.
    """

    def choose_peer(self, port_map: "LazyPortMap", u: int, port: int) -> int:
        for v in range(port_map.n):
            if v != u and not port_map.linked(u, v):
                return v
        raise PortMapExhausted(f"node {u} is already linked to all peers")


class CallbackPortPolicy(PortConnectionPolicy):
    """Adapter turning a plain function into a connection policy.

    The callback receives ``(port_map, u, port)`` and returns the peer
    node.  Used by the lower-bound adversaries in
    :mod:`repro.lowerbound.adversary`.
    """

    def __init__(
        self,
        choose_peer: Callable[["LazyPortMap", int, int], int],
        choose_peer_port: Optional[Callable[["LazyPortMap", int, int, int], Optional[int]]] = None,
    ) -> None:
        self._choose_peer = choose_peer
        self._choose_peer_port = choose_peer_port

    def choose_peer(self, port_map: "LazyPortMap", u: int, port: int) -> int:
        return self._choose_peer(port_map, u, port)

    def choose_peer_port(
        self, port_map: "LazyPortMap", u: int, port: int, v: int
    ) -> Optional[int]:
        if self._choose_peer_port is None:
            return None
        return self._choose_peer_port(port_map, u, port, v)


class LazyPortMap(PortMap):
    """A partial port mapping, resolved on demand (Definition 3.4 style).

    Only the links that have actually been used are materialized, so memory
    is ``O(messages)`` rather than ``O(n^2)`` — this is what makes
    simulating sub-quadratic-message algorithms on large cliques cheap.
    """

    # Rejection sampling is used for "random free peer/port" picks; beyond
    # this failure count we fall back to an explicit scan, which keeps the
    # worst case linear instead of unbounded.
    _REJECTION_CAP = 64

    def __init__(self, n: int, policy: PortConnectionPolicy) -> None:
        super().__init__(n)
        self.policy = policy
        # (u, port) -> (v, port_at_v); involutive: both directions stored.
        self._endpoint: Dict[Endpoint, Endpoint] = {}
        # u -> {v: port_at_u}; tracks which peers u is linked to.
        self._peer_to_port: List[Dict[int, int]] = [dict() for _ in range(n)]
        # u -> set of u's ports already bound.
        self._bound_ports: List[Set[int]] = [set() for _ in range(n)]

    # ------------------------------------------------------------------ #
    # queries

    def is_resolved(self, u: int, port: int) -> bool:
        self.check_port(u, port)
        return (u, port) in self._endpoint

    def linked(self, u: int, v: int) -> bool:
        """Whether the (unique) link between ``u`` and ``v`` is materialized."""
        return v in self._peer_to_port[u]

    def linked_peers(self, u: int) -> Iterable[int]:
        return self._peer_to_port[u].keys()

    def bound_port_count(self, u: int) -> int:
        """Number of ``u``'s ports whose endpoint has been fixed."""
        return len(self._bound_ports[u])

    def link_count(self) -> int:
        """Number of materialized links."""
        return len(self._endpoint) // 2

    # ------------------------------------------------------------------ #
    # resolution

    def resolve(self, u: int, port: int) -> Endpoint:
        self.check_port(u, port)
        existing = self._endpoint.get((u, port))
        if existing is not None:
            return existing
        v = self.policy.choose_peer(self, u, port)
        if v == u or not 0 <= v < self.n:
            raise PortMapExhausted(f"policy returned invalid peer {v} for node {u}")
        if self.linked(u, v):
            raise PortMapExhausted(
                f"policy returned peer {v} already linked to node {u}"
            )
        j = self.policy.choose_peer_port(self, u, port, v)
        if j is None:
            j = self.first_free_port(v)
        elif j in self._bound_ports[v]:
            raise PortMapExhausted(f"policy returned bound port {j} at node {v}")
        self.force_link(u, port, v, j)
        return (v, j)

    def force_link(self, u: int, i: int, v: int, j: int) -> None:
        """Bind the link ``(u, i) <-> (v, j)``, validating consistency.

        Exposed so tests and lower-bound adversaries can pre-wire parts of
        the mapping (a *partial port mapping* in the paper's terms).
        """
        self.check_port(u, i)
        self.check_port(v, j)
        if u == v:
            raise ValueError("cannot link a node to itself")
        if i in self._bound_ports[u] or j in self._bound_ports[v]:
            raise PortMapExhausted("port already bound")
        if self.linked(u, v):
            raise PortMapExhausted(f"nodes {u} and {v} already share a link")
        self._endpoint[(u, i)] = (v, j)
        self._endpoint[(v, j)] = (u, i)
        self._peer_to_port[u][v] = i
        self._peer_to_port[v][u] = j
        self._bound_ports[u].add(i)
        self._bound_ports[v].add(j)

    # ------------------------------------------------------------------ #
    # helpers for policies

    def first_free_port(self, v: int) -> int:
        """Smallest port of ``v`` whose endpoint is still undefined."""
        bound = self._bound_ports[v]
        for j in range(self.ports_per_node):
            if j not in bound:
                return j
        raise PortMapExhausted(f"node {v} has no free port")

    def random_free_port(self, v: int, rng: random.Random) -> int:
        """Uniformly random free port of ``v``."""
        bound = self._bound_ports[v]
        free_count = self.ports_per_node - len(bound)
        if free_count <= 0:
            raise PortMapExhausted(f"node {v} has no free port")
        for _ in range(self._REJECTION_CAP):
            j = rng.randrange(self.ports_per_node)
            if j not in bound:
                return j
        free = [j for j in range(self.ports_per_node) if j not in bound]
        return rng.choice(free)

    def random_unlinked_peer(self, u: int, rng: random.Random) -> int:
        """Uniformly random node not yet linked to ``u`` (and not ``u``)."""
        linked = self._peer_to_port[u]
        candidates = self.n - 1 - len(linked)
        if candidates <= 0:
            raise PortMapExhausted(f"node {u} is already linked to all peers")
        for _ in range(self._REJECTION_CAP):
            v = rng.randrange(self.n)
            if v != u and v not in linked:
                return v
        eligible = [v for v in range(self.n) if v != u and v not in linked]
        return rng.choice(eligible)


def random_port_map(n: int, rng: random.Random) -> LazyPortMap:
    """Convenience constructor: lazy map with uniform random connections."""
    return LazyPortMap(n, RandomPortPolicy(rng))


__all__.append("random_port_map")
