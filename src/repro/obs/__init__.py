"""The cross-worker observability plane.

Four pieces, layered over the telemetry and monitor subsystems:

* :mod:`repro.obs.spool` — per-worker JSONL telemetry spooling under
  ``.repro/obs/<sweep-id>/worker-<pid>.jsonl``; workers write metric and
  profile snapshots as each cell finishes, with zero coordination.
* :mod:`repro.obs.collect` — the deterministic collector: merges spooled
  snapshots into a :class:`SweepReport` whose :meth:`~SweepReport.canonical`
  projection is byte-identical for any worker count.
* :mod:`repro.obs.top` — :class:`SweepTop`, the ``repro top`` live TTY
  dashboard (per-worker rows over the SweepProgress hook protocol;
  degrades to the one-line display off a TTY).
* :mod:`repro.obs.html` — ``repro report --html``: one self-contained
  static HTML campaign report (ledger, tradeoff-vs-envelope scatter,
  bench baselines, top-k critical paths), no dependencies.

Everything imports without numpy; the HTML builder touches the monitor
and causal layers lazily.
"""

from repro.obs.collect import SweepReport, WorkerTimeline, collect
from repro.obs.html import build_campaign_report, write_campaign_report
from repro.obs.spool import (
    DEFAULT_OBS_ROOT,
    SPOOL_SCHEMA,
    new_spool_dir,
    read_spool,
    spool_snapshot,
)
from repro.obs.top import SweepTop

__all__ = [
    "DEFAULT_OBS_ROOT",
    "SPOOL_SCHEMA",
    "SweepReport",
    "SweepTop",
    "WorkerTimeline",
    "build_campaign_report",
    "collect",
    "new_spool_dir",
    "read_spool",
    "spool_snapshot",
    "write_campaign_report",
]
