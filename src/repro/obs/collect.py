"""The deterministic spool collector: worker shards → one SweepReport.

:func:`collect` reads every ``worker-*.jsonl`` shard in a spool
directory and merges the snapshots **in cell-index order** — the same
deterministic order the live scheduler uses — so the merged counters,
the kernel-phase profile aggregates and the canonical report are
byte-identical no matter how many workers ran the sweep or which worker
happened to execute which cell.  Wall-clock quantities (per-cell walls,
per-worker utilization timelines) are kept, but segregated: they feed
``repro top`` and the HTML report, and :meth:`SweepReport.canonical`
excludes them so equivalence tests can compare reports as bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.obs.spool import SPOOL_SCHEMA, read_spool
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["WorkerTimeline", "SweepReport", "collect"]


@dataclass
class WorkerTimeline:
    """One worker's contribution: which cells, in what wall time."""

    worker: str
    cells: List[int] = field(default_factory=list)
    busy_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "cells": list(self.cells),
            "busy_s": self.busy_s,
        }


@dataclass
class SweepReport:
    """Merged view of one spooled sweep.

    ``metrics`` is the merged registry payload (counters add, histogram
    summaries combine exactly — identical to what the live parent would
    hold); ``profile`` aggregates the ``profile.<phase>`` histograms
    into per-kernel call counts and wall totals; ``cell_walls`` and
    ``workers`` carry the machine-dependent timeline the frontends plot.
    """

    schema: str
    cells: int
    records: int
    messages: int
    metrics: Dict[str, Any]
    profile: Dict[str, Dict[str, float]]
    cell_walls: Dict[int, float] = field(default_factory=dict)
    workers: List[WorkerTimeline] = field(default_factory=list)

    def canonical(self) -> Dict[str, Any]:
        """The deterministic projection: identical for any worker count.

        Counters and per-phase call counts are functions of the workload
        alone; everything wall-clock (cell walls, worker timelines,
        ``total_s`` sums, histogram extremes over timings) is excluded —
        and so is the cell count, which depends on how the scheduler
        seed-sharded the grid for the worker pool.
        """
        return {
            "schema": self.schema,
            "records": self.records,
            "messages": self.messages,
            "counters": dict(self.metrics.get("counters", {})),
            "profile_calls": {
                phase: int(agg["calls"]) for phase, agg in self.profile.items()
            },
        }

    def canonical_bytes(self) -> bytes:
        return json.dumps(self.canonical(), sort_keys=True).encode()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "cells": self.cells,
            "records": self.records,
            "messages": self.messages,
            "metrics": self.metrics,
            "profile": {k: dict(v) for k, v in self.profile.items()},
            "cell_walls": {str(k): v for k, v in sorted(self.cell_walls.items())},
            "workers": [w.as_dict() for w in self.workers],
        }

    def summary(self) -> str:
        lines = [
            f"sweep report: {self.cells} cells, {self.records} records, "
            f"{self.messages} messages, {len(self.workers)} worker(s)"
        ]
        for timeline in self.workers:
            lines.append(
                f"  {timeline.worker}: {len(timeline.cells)} cells, "
                f"busy {timeline.busy_s:.2f}s"
            )
        if self.profile:
            grand = sum(agg["total_s"] for agg in self.profile.values()) or 1.0
            for phase, agg in sorted(
                self.profile.items(), key=lambda kv: -kv[1]["total_s"]
            ):
                lines.append(
                    f"  kernel {phase}: {int(agg['calls'])} calls, "
                    f"{agg['total_s']:.3f}s ({agg['total_s'] / grand:.0%})"
                )
        return "\n".join(lines)


def collect(spool_dir: str) -> SweepReport:
    """Merge one spool directory into a :class:`SweepReport`.

    Snapshots merge in cell-index order (ties broken by worker name),
    so duplicate deliveries of a cell — the scheduler's inline fallback
    re-running cells a dead pool half-finished — keep the first copy
    only and the report stays deterministic.
    """
    snapshots = sorted(
        read_spool(spool_dir), key=lambda pair: (pair[1]["cell"], pair[0])
    )
    registry = MetricsRegistry()
    cell_walls: Dict[int, float] = {}
    timelines: Dict[str, WorkerTimeline] = {}
    seen: set = set()
    for worker, payload in snapshots:
        cell = int(payload["cell"])
        if cell in seen:
            continue
        seen.add(cell)
        registry.merge(payload.get("metrics") or {})
        wall = float(payload.get("wall_s", 0.0))
        cell_walls[cell] = wall
        timeline = timelines.setdefault(worker, WorkerTimeline(worker=worker))
        timeline.cells.append(cell)
        timeline.busy_s += wall
    metrics = registry.as_dict()
    profile: Dict[str, Dict[str, float]] = {}
    for name, summary in metrics.get("histograms", {}).items():
        if not name.startswith("profile."):
            continue
        profile[name[len("profile."):]] = {
            "calls": int(summary.get("count", 0)),
            "total_s": float(summary.get("total", 0.0)),
        }
    counters = metrics.get("counters", {})
    return SweepReport(
        schema=SPOOL_SCHEMA,
        cells=len(seen),
        records=int(counters.get("sweep.records", 0)),
        messages=int(counters.get("sweep.messages", 0)),
        metrics=metrics,
        profile=dict(sorted(profile.items())),
        cell_walls=cell_walls,
        workers=[timelines[name] for name in sorted(timelines)],
    )
