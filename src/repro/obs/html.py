"""``repro report --html``: a self-contained static campaign report.

One HTML file, zero dependencies and zero network fetches (inline CSS +
inline SVG only), covering the observability plane's whole story:

* the persistent run ledger as a history table plus stat tiles;
* the messages-vs-rounds tradeoff scatter — the paper's central object —
  with every ledger entry's per-algorithm means plotted against the
  theorem envelopes from the conformance registry;
* the checked-in ``BENCH_*.json`` trajectory (per-bench deterministic
  metrics, one column per artifact directory);
* the top-k critical-path explanations of any traces handed in
  (:func:`repro.telemetry.causal.explain` verbatim, ranked by span).

Charts follow the house dataviz rules: categorical hues in fixed order,
one axis per chart, hairline grid, thin marks with surface rings, text
in ink tokens (never the series color), a table view next to every
chart, native ``<title>`` tooltips on the marks, and a dark mode that is
its own stepped palette rather than an automatic flip.
"""

from __future__ import annotations

import html as html_mod
import json
import math
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["write_campaign_report", "build_campaign_report"]

#: Categorical series palette (fixed order, light/dark stepped pairs).
_SERIES = [
    ("#2a78d6", "#3987e5"),   # blue
    ("#eb6834", "#d95926"),   # orange
    ("#1baf7a", "#199e70"),   # aqua
    ("#eda100", "#c98500"),   # yellow
    ("#e87ba4", "#d55181"),   # magenta
    ("#008300", "#008300"),   # green
    ("#4a3aa7", "#9085e9"),   # violet
    ("#e34948", "#e66767"),   # red
]

_CSS = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --good: #0ca30c; --critical: #d03b3b;
""" + "".join(
    f"  --series-{i + 1}: {light};\n" for i, (light, _) in enumerate(_SERIES)
) + """}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835;
""" + "".join(
    f"    --series-{i + 1}: {dark};\n" for i, (_, dark) in enumerate(_SERIES)
) + """  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 12px 16px; min-width: 120px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 24px; font-weight: 600; }
.card {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 16px; margin: 12px 0;
}
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 4px 10px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; }
td.num, th.num { text-align: right; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 8px 0; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 5px; }
pre {
  background: var(--surface); border: 1px solid var(--grid);
  border-radius: 8px; padding: 12px; overflow-x: auto; font-size: 12px;
}
svg text { fill: var(--ink-3); font-size: 11px; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .envelope { stroke-width: 2; fill: none; opacity: 0.45; }
svg .pt { stroke: var(--surface); stroke-width: 2; }
.muted { color: var(--ink-3); }
"""


def _esc(value: Any) -> str:
    return html_mod.escape(str(value))


def _series_var(index: int) -> str:
    return f"var(--series-{index % len(_SERIES) + 1})"


# --------------------------------------------------------------------- #
# ledger section


def _fmt_when(ts: Any) -> str:
    import datetime

    if not isinstance(ts, (int, float)):
        return "-"
    return datetime.datetime.fromtimestamp(ts).strftime("%Y-%m-%d %H:%M")


def _ledger_table(entries: Sequence[Dict[str, Any]]) -> str:
    rows = []
    for i, entry in enumerate(entries):
        conformance = entry.get("conformance") or {}
        rate = conformance.get("rate")
        wall = entry.get("wall_time_s")
        messages = (entry.get("messages") or {}).get("mean")
        sha = entry.get("git_sha") or "-"
        cells = [
            f"<td class=num>{i}</td>",
            f"<td>{_esc(_fmt_when(entry.get('ts')))}</td>",
            f"<td>{_esc(sha[:8] if isinstance(sha, str) else '-')}</td>",
            f"<td>{_esc(entry.get('label') or '-')}</td>",
            f"<td class=num>{_esc(entry.get('runs', '-'))}</td>",
            "<td class=num>"
            + (f"{messages:.1f}" if isinstance(messages, (int, float)) else "-")
            + "</td>",
            f"<td class=num>{len(entry.get('violations') or ())}</td>",
            "<td class=num>"
            + (f"{rate:.1%}" if isinstance(rate, (int, float)) else "-")
            + "</td>",
            "<td class=num>"
            + (f"{wall:.1f}s" if isinstance(wall, (int, float)) else "-")
            + "</td>",
        ]
        rows.append("<tr>" + "".join(cells) + "</tr>")
    head = (
        "<tr><th class=num>#</th><th>when</th><th>git</th><th>label</th>"
        "<th class=num>runs</th><th class=num>mean msgs</th>"
        "<th class=num>viol</th><th class=num>conform</th>"
        "<th class=num>wall</th></tr>"
    )
    return f"<table>{head}{''.join(rows)}</table>"


def _tiles(entries: Sequence[Dict[str, Any]]) -> str:
    runs = sum(int(e.get("runs") or 0) for e in entries)
    violations = sum(len(e.get("violations") or ()) for e in entries)
    latest = entries[-1] if entries else {}
    conformance = (latest.get("conformance") or {}).get("rate")
    tiles = [
        ("ledger entries", str(len(entries)), None),
        ("monitored runs", str(runs), None),
        (
            "violations",
            str(violations),
            "var(--critical)" if violations else "var(--good)",
        ),
        (
            "latest conformance",
            f"{conformance:.1%}" if isinstance(conformance, (int, float)) else "--",
            None,
        ),
    ]
    out = []
    for label, value, color in tiles:
        style = f' style="color:{color}"' if color else ""
        out.append(
            f'<div class=tile><div class=label>{_esc(label)}</div>'
            f"<div class=value{style}>{_esc(value)}</div></div>"
        )
    return '<div class=tiles>' + "".join(out) + "</div>"


# --------------------------------------------------------------------- #
# tradeoff scatter


def _tradeoff_points(
    entries: Sequence[Dict[str, Any]],
) -> List[Tuple[str, float, float, str]]:
    """``(algorithm, rounds_mean, messages_mean, entry_label)`` points."""
    points = []
    for i, entry in enumerate(entries):
        by_algo = entry.get("by_algorithm") or {}
        messages = by_algo.get("messages") or {}
        times = by_algo.get("time") or {}
        label = entry.get("label") or f"entry {i}"
        for name in sorted(messages):
            m = (messages.get(name) or {}).get("mean")
            t = (times.get(name) or {}).get("mean")
            if not m or t is None:
                continue
            points.append((name, float(t), float(m), str(label)))
    return points


def _envelope_limits(
    entries: Sequence[Dict[str, Any]], algorithms: Sequence[str]
) -> Dict[str, Tuple[float, int, str]]:
    """Per-algorithm ``(message_limit, n, paper_ref)`` at the largest n."""
    try:
        from repro.monitor.conformance import get_envelope
    except Exception:
        return {}
    ns: List[int] = []
    for entry in entries:
        context = entry.get("context") or {}
        for n in context.get("ns") or ():
            try:
                ns.append(int(n))
            except (TypeError, ValueError):
                pass
    n = max(ns) if ns else 64
    limits = {}
    for name in algorithms:
        envelope = get_envelope(name)
        if envelope is None:
            continue
        try:
            limits[name] = (
                float(envelope.message_limit(n)), n, envelope.paper_ref
            )
        except Exception:
            continue
    return limits


def _tradeoff_svg(entries: Sequence[Dict[str, Any]]) -> str:
    points = _tradeoff_points(entries)
    if not points:
        return '<p class=muted>(no per-algorithm distributions in the ledger yet)</p>'
    algorithms = sorted({p[0] for p in points})
    limits = _envelope_limits(entries, algorithms)
    width, height = 640, 320
    left, right, top, bottom = 60, 16, 12, 36
    xs = [p[1] for p in points]
    ys = [p[2] for p in points] + [lim for lim, _, _ in limits.values()]
    x_min, x_max = 0.0, max(xs) * 1.15 + 1e-9
    y_lo = min(ys) / 1.5
    y_hi = max(ys) * 1.5
    ly_lo, ly_hi = math.log10(max(y_lo, 1.0)), math.log10(max(y_hi, 10.0))

    def sx(x: float) -> float:
        return left + (x - x_min) / (x_max - x_min) * (width - left - right)

    def sy(y: float) -> float:
        ly = math.log10(max(y, 1.0))
        return top + (ly_hi - ly) / (ly_hi - ly_lo) * (height - top - bottom)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        'aria-label="messages versus rounds tradeoff scatter">'
    ]
    # log-decade gridlines + y tick labels
    for decade in range(math.ceil(ly_lo), math.floor(ly_hi) + 1):
        y = sy(10 ** decade)
        parts.append(
            f'<line class="grid" x1="{left}" y1="{y:.1f}" '
            f'x2="{width - right}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + 4:.1f}" text-anchor="end">'
            f"{10 ** decade:,}</text>"
        )
    # x ticks (integer rounds)
    step = max(1, int(x_max // 8) or 1)
    tick = step
    while tick <= x_max:
        x = sx(tick)
        parts.append(
            f'<text x="{x:.1f}" y="{height - bottom + 16}" '
            f'text-anchor="middle">{tick}</text>'
        )
        tick += step
    # axes
    parts.append(
        f'<line class="axis" x1="{left}" y1="{height - bottom}" '
        f'x2="{width - right}" y2="{height - bottom}"/>'
    )
    parts.append(
        f'<line class="axis" x1="{left}" y1="{top}" x2="{left}" '
        f'y2="{height - bottom}"/>'
    )
    parts.append(
        f'<text x="{(left + width - right) / 2:.0f}" y="{height - 4}" '
        'text-anchor="middle">rounds to decide (mean)</text>'
    )
    parts.append(
        f'<text x="12" y="{(top + height - bottom) / 2:.0f}" '
        f'text-anchor="middle" transform="rotate(-90 12 '
        f'{(top + height - bottom) / 2:.0f})">messages (mean, log)</text>'
    )
    # theorem envelopes: horizontal guide at each algorithm's message limit
    for name, (limit, n, ref) in sorted(limits.items()):
        index = algorithms.index(name)
        y = sy(limit)
        parts.append(
            f'<line class="envelope" stroke="{_series_var(index)}" '
            f'x1="{left}" y1="{y:.1f}" x2="{width - right}" y2="{y:.1f}">'
            f"<title>{_esc(name)} envelope ({_esc(ref)}) at n={n}: "
            f"&#8804; {limit:,.0f} messages</title></line>"
        )
    # the measured points, oldest entries faded
    labels = sorted({p[3] for p in points})
    for name, t, m, label in points:
        index = algorithms.index(name)
        age = labels.index(label)
        opacity = 0.35 + 0.65 * ((age + 1) / len(labels))
        parts.append(
            f'<circle class="pt" cx="{sx(t):.1f}" cy="{sy(m):.1f}" r="5" '
            f'fill="{_series_var(index)}" opacity="{opacity:.2f}">'
            f"<title>{_esc(name)} — {m:,.1f} messages, {t:g} rounds "
            f"({_esc(label)})</title></circle>"
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class=key><span class=swatch '
        f'style="background:{_series_var(i)}"></span>{_esc(name)}</span>'
        for i, name in enumerate(algorithms)
    )
    table_rows = "".join(
        f"<tr><td>{_esc(name)}</td><td class=num>{t:g}</td>"
        f"<td class=num>{m:,.1f}</td><td>{_esc(label)}</td></tr>"
        for name, t, m, label in points
    )
    table = (
        "<details><summary class=muted>table view</summary><table>"
        "<tr><th>algorithm</th><th class=num>rounds</th>"
        "<th class=num>messages</th><th>entry</th></tr>"
        f"{table_rows}</table></details>"
    )
    return f'<div class=legend>{legend}</div>{"".join(parts)}{table}'


# --------------------------------------------------------------------- #
# bench trajectory


def _load_bench_files(directory: str) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            out[name[len("BENCH_"):-len(".json")]] = payload
    return out


def _bench_section(bench_dirs: Sequence[str]) -> str:
    columns = [(d, _load_bench_files(d)) for d in bench_dirs]
    columns = [(d, files) for d, files in columns if files]
    if not columns:
        return '<p class=muted>(no BENCH_*.json artifacts found)</p>'
    benches = sorted({name for _, files in columns for name in files})
    head = "<tr><th>bench</th><th>metric</th>" + "".join(
        f"<th class=num>{_esc(directory)}</th>" for directory, _ in columns
    ) + "</tr>"
    rows = []
    for bench in benches:
        metrics = sorted({
            key
            for _, files in columns
            for key in (files.get(bench, {}).get("metrics") or {})
        })
        for j, metric in enumerate(metrics):
            cells = []
            for _, files in columns:
                value = (files.get(bench, {}).get("metrics") or {}).get(metric)
                if isinstance(value, float):
                    cells.append(f"<td class=num>{value:g}</td>")
                elif value is None:
                    cells.append("<td class=num>-</td>")
                else:
                    cells.append(f"<td class=num>{_esc(value)}</td>")
            label = _esc(bench) if j == 0 else ""
            rows.append(
                f"<tr><td>{label}</td><td>{_esc(metric)}</td>{''.join(cells)}</tr>"
            )
    return f"<table>{head}{''.join(rows)}</table>"


# --------------------------------------------------------------------- #
# critical paths


def _causal_section(traces: Sequence[str], top_k: int) -> str:
    if not traces:
        return (
            '<p class=muted>(no traces supplied; pass --traces to rank '
            "critical paths)</p>"
        )
    from repro.telemetry import load_trace
    from repro.telemetry.causal import build_graph, critical_path, explain

    ranked = []
    for path in traces:
        try:
            trace = load_trace(path)
            graph = build_graph(trace)
            cp = critical_path(trace, graph)
            ranked.append((cp.round_length, path, explain(trace, graph=graph)))
        except Exception as exc:  # a bad trace should not sink the report
            ranked.append((-1, path, f"(unreadable trace: {exc})"))
    ranked.sort(key=lambda item: (-item[0], item[1]))
    blocks = []
    for length, path, text in ranked[: max(0, top_k)]:
        header = _esc(os.path.basename(path))
        if length >= 0:
            header += f" — critical path {length} rounds"
        blocks.append(f"<h3>{header}</h3><pre>{_esc(text)}</pre>")
    return "".join(blocks)


# --------------------------------------------------------------------- #
# assembly


def build_campaign_report(
    *,
    ledger_path: str,
    bench_dirs: Sequence[str] = ("benchmarks/baselines",),
    traces: Sequence[str] = (),
    top_k: int = 5,
    title: str = "repro campaign report",
) -> str:
    """The report as one self-contained HTML string."""
    from repro.monitor.ledger import read_ledger

    entries = read_ledger(ledger_path)
    sections = [
        "<h2>Run ledger</h2>",
        f'<p class=sub>{_esc(ledger_path)} — {len(entries)} entries</p>',
        _tiles(entries),
        "<div class=card>"
        + (
            _ledger_table(entries)
            if entries
            else '<p class=muted>(the ledger is empty)</p>'
        )
        + "</div>",
        "<h2>Messages vs rounds tradeoff</h2>",
        "<p class=sub>per-algorithm sweep means from every ledger entry "
        "(older entries faded) against the theorem envelopes</p>",
        f"<div class=card>{_tradeoff_svg(entries)}</div>",
        "<h2>Bench trajectory</h2>",
        "<p class=sub>seed-deterministic metrics from BENCH_*.json "
        "artifacts</p>",
        f"<div class=card>{_bench_section(bench_dirs)}</div>",
        "<h2>Critical paths</h2>",
        "<p class=sub>happens-before critical-path explanations, longest "
        "first</p>",
        f"<div class=card>{_causal_section(traces, top_k)}</div>",
    ]
    return (
        "<!doctype html><html lang=en><head><meta charset=utf-8>"
        f"<title>{_esc(title)}</title>"
        '<meta name=viewport content="width=device-width, initial-scale=1">'
        f"<style>{_CSS}</style></head><body><main>"
        f"<h1>{_esc(title)}</h1>"
        "<p class=sub>static, self-contained observability report — "
        "ledger, tradeoff envelope conformance, bench baselines, causal "
        "critical paths</p>"
        + "".join(sections)
        + "</main></body></html>"
    )


def write_campaign_report(
    out_path: str,
    *,
    ledger_path: Optional[str] = None,
    bench_dirs: Sequence[str] = ("benchmarks/baselines",),
    traces: Sequence[str] = (),
    top_k: int = 5,
    title: str = "repro campaign report",
) -> str:
    """Write the campaign report; returns the output path."""
    from repro.monitor.ledger import DEFAULT_LEDGER_PATH

    content = build_campaign_report(
        ledger_path=ledger_path or DEFAULT_LEDGER_PATH,
        bench_dirs=bench_dirs,
        traces=traces,
        top_k=top_k,
        title=title,
    )
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return out_path
