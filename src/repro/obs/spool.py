"""Per-worker telemetry spooling for the sharded sweep scheduler.

Worker processes normally ship their metric payloads back to the parent
inside the future result — which works, but leaves nothing behind: a
crashed parent loses everything, nothing can watch a sweep from outside,
and per-cell wall times evaporate once the merged gauges are computed.
The spool is the durable side channel: every cell appends one JSON line
to ``<spool_dir>/worker-<pid>.jsonl`` *from inside the process that ran
it* (pool workers and the parent's inline fallback alike), so the spool
is complete for any worker count and any degradation path.

One spool file is a header line followed by cell snapshots::

    {"schema": "repro.obs/1", "pid": 12345}
    {"cell": 3, "pid": 12345, "wall_s": 0.41, "metrics": {...}}

Snapshots carry the cell's full metric payload — including the
``profile.<phase>`` histograms that ``run_spec_cell`` folds in for
``profile=True`` specs — so the collector (:mod:`repro.obs.collect`)
can rebuild the merged registry and the kernel-phase aggregates without
the parent process having survived.  Spool writes never raise into the
cell: a full disk degrades to an unspooled sweep, not a failed one.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SPOOL_SCHEMA",
    "DEFAULT_OBS_ROOT",
    "new_spool_dir",
    "spool_snapshot",
    "read_spool",
]

SPOOL_SCHEMA = "repro.obs/1"

#: Default root for sweep spool directories (one subdir per sweep).
DEFAULT_OBS_ROOT = os.path.join(".repro", "obs")


def new_spool_dir(
    root: str = DEFAULT_OBS_ROOT, sweep_id: Optional[str] = None
) -> str:
    """Create (and return) a fresh spool directory for one sweep.

    ``sweep_id`` defaults to a timestamp + pid tag — unique enough for
    concurrent sweeps on one machine without any coordination.
    """
    if sweep_id is None:
        sweep_id = time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"
    path = os.path.join(root, sweep_id)
    os.makedirs(path, exist_ok=True)
    return path


def _spool_file(directory: str) -> str:
    return os.path.join(directory, f"worker-{os.getpid()}.jsonl")


def spool_snapshot(
    directory: str,
    *,
    cell: int,
    wall_s: float,
    metrics: Dict[str, Any],
    extra: Optional[Dict[str, Any]] = None,
) -> bool:
    """Append one cell snapshot to this process's spool file.

    Returns whether the write happened; any OS-level failure is
    swallowed — observability must never fail the workload it observes.
    """
    payload: Dict[str, Any] = {
        "cell": int(cell),
        "pid": os.getpid(),
        "wall_s": float(wall_s),
        "metrics": metrics,
    }
    if extra:
        payload.update(extra)
    try:
        os.makedirs(directory, exist_ok=True)
        path = _spool_file(directory)
        header = None
        if not os.path.exists(path):
            header = json.dumps(
                {"schema": SPOOL_SCHEMA, "pid": os.getpid()}, sort_keys=True
            )
        with open(path, "a", encoding="utf-8") as fh:
            if header is not None:
                fh.write(header + "\n")
            fh.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        return True
    except OSError:
        return False


def read_spool(directory: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Every parseable snapshot as ``(worker, payload)`` pairs.

    Workers are the file stems (``worker-<pid>``), read in sorted
    filename order; header lines and unparseable lines are skipped, so a
    half-written spool (sweep still running, worker OOM-killed) still
    reads cleanly.
    """
    out: List[Tuple[str, Dict[str, Any]]] = []
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("worker-") and name.endswith(".jsonl")):
            continue
        worker = name[: -len(".jsonl")]
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict) and "cell" in payload:
                out.append((worker, payload))
    return out
