"""``repro top``: a live multi-line TTY dashboard over a running sweep.

:class:`SweepTop` extends :class:`~repro.monitor.SweepProgress` — it
receives the same scheduler hooks — but renders a small dashboard
instead of one line: the overall progress/ETA header, one row per
worker slot (busy time, utilization, cells completed, last cell), and a
status row fed by the :class:`~repro.monitor.SweepMonitor` results once
the sweep finishes (violation and conformance counts are post-hoc by
design — the monitor walks the records after collection).

The dashboard needs cursor movement, so it only engages on a real TTY;
anywhere else (CI logs, pipes) it degrades to the parent class's
existing one-line ``\\r`` display.  Listener errors never propagate —
the scheduler swallows them — and rendering is throttled to
:data:`MIN_FRAME_S` so tiny cells don't turn the sweep into a terminal
benchmark.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.monitor.progress import ProgressEvent, SweepProgress

__all__ = ["SweepTop"]

#: Minimum seconds between live frames (final frames always render).
MIN_FRAME_S = 0.1


class SweepTop(SweepProgress):
    """Multi-line live dashboard; one-line fallback off-TTY.

    Same constructor contract as :class:`SweepProgress`; pass
    ``monitor=`` (a :class:`~repro.monitor.SweepMonitor`) so the final
    frame can show violation/conformance counts, and call
    :meth:`finalize` after ``sweep(...)`` returns to render them.
    """

    def __init__(
        self,
        *,
        stream: Any = None,
        live: Optional[bool] = None,
        monitor: Optional[Any] = None,
    ) -> None:
        super().__init__(stream=stream, live=live)
        self.monitor = monitor
        self.cells_by_slot: Dict[int, int] = {}
        self.last_cell_by_slot: Dict[int, int] = {}
        self._height = 0
        self._last_frame = 0.0
        # Cursor movement needs a TTY; degrade to the one-line display.
        self.multiline = self.live and bool(
            getattr(self.stream, "isatty", lambda: False)()
        )

    # ---------------------------------------------------------------- #
    # listener hooks

    def cell_finish(self, cell: Any, wall: float, slot: int) -> None:
        self.cells_by_slot[slot] = self.cells_by_slot.get(slot, 0) + 1
        self.last_cell_by_slot[slot] = cell.index
        super().cell_finish(cell, wall, slot)

    def finish(self, elapsed: float) -> None:
        if not self.multiline:
            super().finish(elapsed)
            return
        self.events.append(ProgressEvent(kind="finish", elapsed=elapsed))
        self._draw(final=True)
        self.stream.write("\n")
        self.stream.flush()

    def finalize(self, monitor: Optional[Any] = None) -> None:
        """Render one last frame with the monitor's post-hoc verdicts."""
        monitor = monitor if monitor is not None else self.monitor
        self.monitor = monitor
        if self.multiline:
            self._draw(final=True)
            self.stream.write("\n")
            self.stream.flush()

    # ---------------------------------------------------------------- #
    # rendering

    @property
    def throughput(self) -> float:
        """Completed cells per second of elapsed wall time."""
        elapsed = self.elapsed
        return self.completed_cells / elapsed if elapsed > 0 else 0.0

    def render_rows(self, final: bool = False) -> List[str]:
        """The dashboard rows (header, workers, monitor status)."""
        rows = [
            self.render_line(final=final)
            + f"  {self.throughput:.1f} cells/s"
        ]
        elapsed = self.elapsed or 1.0
        for slot in range(self.workers):
            busy = self.busy_by_slot.get(slot, 0.0)
            util = min(1.0, busy / elapsed)
            done = self.cells_by_slot.get(slot, 0)
            last = self.last_cell_by_slot.get(slot)
            last_part = f"last #{last}" if last is not None else "idle"
            rows.append(
                f"  worker {slot}  busy {busy:6.2f}s  util {util:.2f}  "
                f"cells {done:>4}  {last_part}"
            )
        rows.append("  " + self._monitor_row())
        return rows

    def _monitor_row(self) -> str:
        monitor = self.monitor
        if monitor is None:
            return "monitor: (none attached)"
        conformance = getattr(monitor, "conformance", None)
        if conformance is None or getattr(conformance, "total", 0) == 0:
            return "monitor: violations --  conformance --  (post-hoc)"
        violations = len(getattr(monitor, "violations", ()) or ())
        return (
            f"monitor: violations {violations}  "
            f"conformance {conformance.conforming}/{conformance.total} "
            f"({conformance.rate:.1%})"
        )

    def _draw(self, final: bool = False) -> None:
        rows = self.render_rows(final=final)
        out = []
        if self._height:
            out.append(f"\x1b[{self._height}A")
        for row in rows:
            out.append("\r\x1b[2K" + row + "\n")
        # Leave the cursor at the frame's top-left-after-end so the next
        # frame overwrites in place.
        self.stream.write("".join(out))
        self.stream.flush()
        self._height = len(rows)
        self._rendered = True

    def _render(self) -> None:
        if not self.live:
            return
        if not self.multiline:
            super()._render()
            return
        now = time.perf_counter()
        if now - self._last_frame < MIN_FRAME_S and self.completed_cells < self.total_cells:
            return
        self._last_frame = now
        self._draw()
