"""Ring leader election — the related-work context of §1.2.

The paper positions its clique results against the classic ring setting:
Frederickson–Lynch's Ω(n log n) message lower bound for synchronous
rings (which needed Ramsey's theorem and an enormous ID space — the
contrast for Theorem 3.8's Θ(n log n)-universe technique), and the fact
that cliques escape the generic Ω(m) bound (Korach–Moran–Zaks elect with
O(n log n) messages although m = Θ(n²)).

This subpackage provides a minimal synchronous ring simulator and the
two canonical algorithms, so benches can put the paper's clique numbers
side by side with the ring baseline:

* :class:`ChangRoberts` — unidirectional, O(n log n) expected /
  O(n²) worst-case messages;
* :class:`HirschbergSinclair` — bidirectional, O(n log n) worst case.
"""

from repro.ring.engine import RingNetwork, RingContext, RingAlgorithm, RingRunResult
from repro.ring.algorithms import ChangRoberts, HirschbergSinclair

__all__ = [
    "RingNetwork",
    "RingContext",
    "RingAlgorithm",
    "RingRunResult",
    "ChangRoberts",
    "HirschbergSinclair",
]
