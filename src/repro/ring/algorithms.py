"""Classic ring election algorithms (the §1.2 baselines).

Both algorithms are the textbook constructions; they elect the maximum
ID and finish with an announcement circulation so every node learns the
leader (explicit election).
"""

from __future__ import annotations

from typing import Any, List, Set, Tuple

from repro.ring.engine import LEFT, RIGHT, RingAlgorithm, RingContext

__all__ = ["ChangRoberts", "HirschbergSinclair"]

PROBE = "probe"
OUT = "out"
IN = "in"
ELECTED = "elected"


def _opposite(port: int) -> int:
    return RIGHT if port == LEFT else LEFT


class ChangRoberts(RingAlgorithm):
    """Unidirectional Chang–Roberts (LCR).

    Every node launches its ID clockwise; a node relays only IDs larger
    than its own; an ID that returns to its owner crowns it.  Expected
    ``O(n log n)`` messages over random ID placements, ``Θ(n²)`` in the
    worst case — the baseline that Hirschberg–Sinclair improves on.
    """

    def on_round(self, ctx: RingContext, inbox: List[Tuple[int, Any]]) -> None:
        if ctx.round == 1:
            ctx.send(RIGHT, (PROBE, ctx.my_id))
        for _port, payload in inbox:
            kind = payload[0]
            if kind == PROBE:
                probe_id = payload[1]
                if probe_id > ctx.my_id:
                    ctx.send(RIGHT, payload)
                elif probe_id == ctx.my_id:
                    ctx.decide_leader()
                    ctx.send(RIGHT, (ELECTED, ctx.my_id))
                # smaller IDs are swallowed
            elif kind == ELECTED:
                if payload[1] == ctx.my_id:
                    ctx.halt()  # announcement completed the circle
                else:
                    ctx.decide_follower(payload[1])
                    ctx.send(RIGHT, payload)
                    ctx.halt()


class HirschbergSinclair(RingAlgorithm):
    """Bidirectional Hirschberg–Sinclair: ``O(n log n)`` worst case.

    Phase ``p``: every surviving candidate probes ``2^p`` hops both
    ways; a probe survives a relay only if it dominates the relay's ID;
    the last node on the path turns it around.  A candidate that gets
    both echoes enters the next phase; a probe that comes home still
    outbound has dominated the full ring — its owner is the leader.
    """

    def __init__(self) -> None:
        self.candidate = True
        self.phase = 0
        self.echoes: Set[int] = set()

    def _launch(self, ctx: RingContext) -> None:
        hops = 2**self.phase
        ctx.send(LEFT, (OUT, ctx.my_id, hops))
        ctx.send(RIGHT, (OUT, ctx.my_id, hops))
        self.echoes = set()

    def on_round(self, ctx: RingContext, inbox: List[Tuple[int, Any]]) -> None:
        if ctx.round == 1:
            self._launch(ctx)
        for port, payload in inbox:
            kind = payload[0]
            if kind == OUT:
                _k, probe_id, hops = payload
                if probe_id == ctx.my_id:
                    # My own probe circled the ring outbound: I dominate
                    # everyone.
                    if ctx.decision is None:
                        ctx.decide_leader()
                        ctx.send(RIGHT, (ELECTED, ctx.my_id))
                elif probe_id > ctx.my_id:
                    self.candidate = False
                    if hops > 1:
                        ctx.send(_opposite(port), (OUT, probe_id, hops - 1))
                    else:
                        ctx.send(port, (IN, probe_id))  # turn it around
                # else: dominated probe is swallowed
            elif kind == IN:
                probe_id = payload[1]
                if probe_id == ctx.my_id:
                    self.echoes.add(port)
                    if len(self.echoes) == 2 and self.candidate:
                        self.phase += 1
                        self._launch(ctx)
                else:
                    ctx.send(_opposite(port), payload)
            elif kind == ELECTED:
                if payload[1] == ctx.my_id:
                    ctx.halt()
                else:
                    if ctx.decision is None:
                        ctx.decide_follower(payload[1])
                    ctx.send(RIGHT, payload)
                    ctx.halt()
