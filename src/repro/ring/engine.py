"""A minimal synchronous ring simulator.

Kept deliberately separate from the clique engine (`repro.sync`): the
clique engine's port model is the paper's KT0 clique and should not grow
topology generality it does not need.  Ring nodes have exactly two
ports, ``LEFT`` and ``RIGHT``; the ring orientation is consistent (every
node's RIGHT leads to the next node clockwise).  Nodes know the ring
direction but, as usual, not their neighbors' IDs.

Semantics mirror the clique engine: all nodes wake in round 1, messages
sent in round ``r`` arrive at the start of round ``r + 1``, decisions
are irrevocable, and the engine stops when every node has halted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import Decision, ProtocolError, SimulationLimitExceeded

__all__ = ["LEFT", "RIGHT", "RingAlgorithm", "RingContext", "RingNetwork", "RingRunResult"]

LEFT = 0
RIGHT = 1


class RingAlgorithm:
    """One ring node's protocol (same contract as the clique engines)."""

    def on_round(self, ctx: "RingContext", inbox: List[Tuple[int, Any]]) -> None:
        raise NotImplementedError


class RingContext:
    __slots__ = ("_net", "node", "my_id", "n", "rng", "round")

    def __init__(self, net: "RingNetwork", node: int, my_id: int, rng: random.Random):
        self._net = net
        self.node = node
        self.my_id = my_id
        self.n = net.n
        self.rng = rng
        self.round = 0

    def send(self, direction: int, payload: Any) -> None:
        if direction not in (LEFT, RIGHT):
            raise ValueError("ring ports are LEFT (0) and RIGHT (1)")
        self._net._send(self.node, direction, payload)

    @property
    def decision(self) -> Optional[Decision]:
        return self._net.decisions[self.node]

    def decide_leader(self) -> None:
        self._net._decide(self.node, Decision.LEADER, self.my_id)

    def decide_follower(self, leader_id: Optional[int] = None) -> None:
        self._net._decide(self.node, Decision.NON_LEADER, leader_id)

    def halt(self) -> None:
        self._net._halt(self.node)


@dataclass
class RingRunResult:
    n: int
    ids: List[int]
    rounds_executed: int
    messages: int
    last_send_round: int
    leaders: List[int]
    decisions: List[Optional[Decision]]
    outputs: List[Optional[int]]

    @property
    def unique_leader(self) -> bool:
        return len(self.leaders) == 1

    @property
    def elected_id(self) -> Optional[int]:
        return self.ids[self.leaders[0]] if self.unique_leader else None

    @property
    def decided_count(self) -> int:
        return sum(1 for d in self.decisions if d is not None)


class RingNetwork:
    """Synchronous bidirectional ring of ``n`` nodes.

    Node ``i``'s RIGHT neighbor is ``(i+1) mod n``; a message sent RIGHT
    arrives on the neighbor's LEFT port, and vice versa.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], RingAlgorithm],
        *,
        ids: Optional[Sequence[int]] = None,
        seed: int = 0,
        max_rounds: Optional[int] = None,
    ) -> None:
        if n < 2:
            raise ValueError("need a ring of at least 2 nodes")
        self.n = n
        master = random.Random(seed)
        if ids is None:
            ids = list(range(1, n + 1))
        if len(ids) != n or len(set(ids)) != n:
            raise ValueError("need n distinct IDs")
        self.ids = list(ids)
        self.max_rounds = max_rounds if max_rounds is not None else 64 * n
        self.algorithms = [algorithm_factory() for _ in range(n)]
        self.contexts = [
            RingContext(self, u, self.ids[u], random.Random(master.getrandbits(64)))
            for u in range(n)
        ]
        self.decisions: List[Optional[Decision]] = [None] * n
        self.outputs: List[Optional[int]] = [None] * n
        self.leaders: List[int] = []
        self.messages = 0
        self.last_send_round = 0
        self._halted = [False] * n
        self._active = set(range(n))
        self._inboxes_next: Dict[int, List[Tuple[int, Any]]] = {}
        self.round = 0

    def _send(self, u: int, direction: int, payload: Any) -> None:
        if self._halted[u]:
            raise ProtocolError(f"halted node {u} attempted to send")
        if direction == RIGHT:
            v, arrive_port = (u + 1) % self.n, LEFT
        else:
            v, arrive_port = (u - 1) % self.n, RIGHT
        self.messages += 1
        self.last_send_round = max(self.last_send_round, self.round)
        self._inboxes_next.setdefault(v, []).append((arrive_port, payload))

    def _decide(self, u: int, decision: Decision, output: Optional[int]) -> None:
        previous = self.decisions[u]
        if previous is not None:
            if previous is decision and self.outputs[u] == output:
                return
            raise ProtocolError(f"node {u} changed its decision")
        self.decisions[u] = decision
        self.outputs[u] = output
        if decision is Decision.LEADER:
            self.leaders.append(u)

    def _halt(self, u: int) -> None:
        self._halted[u] = True
        self._active.discard(u)

    def run(self) -> RingRunResult:
        self.round = 1
        while True:
            if self.round > self.max_rounds:
                raise SimulationLimitExceeded(
                    f"ring did not terminate within {self.max_rounds} rounds"
                )
            inboxes = self._inboxes_next
            self._inboxes_next = {}
            for u in sorted(self._active):
                ctx = self.contexts[u]
                ctx.round = self.round
                self.algorithms[u].on_round(ctx, inboxes.get(u, []))
            if not self._active and not self._inboxes_next:
                break
            self.round += 1
        return RingRunResult(
            n=self.n,
            ids=self.ids,
            rounds_executed=self.round,
            messages=self.messages,
            last_send_round=self.last_send_round,
            leaders=list(self.leaders),
            decisions=list(self.decisions),
            outputs=list(self.outputs),
        )
