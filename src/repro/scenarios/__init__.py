"""Declarative event timelines for churn workloads (the scenario layer).

This subsystem turns the repo from "one election per run" into a
workload simulator: a :class:`Scenario` declares *what happens to the
network over time* — ``crash(node, t)``, ``recover(node, t)`` (persisted
epoch state, elect-lower-epoch rejoin), ``join(t)``,
``partition(components, t_start, t_end)`` with automatic heal, and
``elect(t)`` for repeated elections — and a :class:`ScenarioRunner`
executes the timeline on the synchronous, asynchronous, or fast engine,
reusing the fault subsystem (detector specs, link faults,
kill-the-frontrunner policies, partition masks) for every election act.

Results come back as per-epoch convergence metrics: failover latency,
leadership-agreement intervals, epoch churn, and message/round overhead
against a fault-free baseline.  A library of named scenarios
(``partition_heal``, ``rolling_restart``, ``flapping_leader``,
``staggered_joins``, ``election_storm``) backs the ``python -m repro
scenarios`` CLI and ``benchmarks/bench_scenario_churn.py``.
"""

from repro.scenarios.events import (
    LAST_CRASHED,
    LEADER,
    CrashEvent,
    ElectEvent,
    JoinEvent,
    PartitionEvent,
    RecoverEvent,
    Scenario,
    SlanderEvent,
    crash,
    elect,
    join,
    partition,
    recover,
    slander,
)
from repro.scenarios.dsl import (
    ScenarioSchemaError,
    scenario_from_json,
    scenario_to_json,
)
from repro.scenarios.library import NAMED_SCENARIOS, get_scenario
from repro.scenarios.metrics import (
    AgreementInterval,
    EpochRecord,
    ScenarioMetrics,
    scenario_report,
)
from repro.scenarios.runner import (
    NodeState,
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
    run_scenario_batch,
)

__all__ = [
    "LEADER",
    "LAST_CRASHED",
    "CrashEvent",
    "RecoverEvent",
    "JoinEvent",
    "PartitionEvent",
    "ElectEvent",
    "SlanderEvent",
    "Scenario",
    "crash",
    "recover",
    "join",
    "partition",
    "elect",
    "slander",
    "ScenarioSchemaError",
    "scenario_from_json",
    "scenario_to_json",
    "NAMED_SCENARIOS",
    "get_scenario",
    "EpochRecord",
    "AgreementInterval",
    "ScenarioMetrics",
    "scenario_report",
    "NodeState",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "run_scenario_batch",
]
