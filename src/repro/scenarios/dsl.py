"""JSON serialization for scenario timelines (the file-based DSL).

The ROADMAP asks for a "scenario DSL from JSON/YAML files": this module
is the JSON half (YAML would be an extra dependency; JSON is stdlib and
round-trips losslessly).  ``repro scenarios run path.json`` loads a
timeline from disk through :func:`scenario_from_json`, and
:func:`scenario_to_json` writes any :class:`~repro.scenarios.Scenario`
— library-built or hand-made — back out, with an exact round-trip
guarantee (``tests/test_scenario_dsl.py``).

Schema (all times are engine time units; node references are initial
node indices, or the symbolic strings the event model already accepts):

.. code-block:: json

    {
      "name": "my_timeline",
      "description": "optional",
      "membership_policy": "leader_loss",
      "min_n": 2,
      "events": [
        {"type": "crash",     "node": 3,           "at": 10.0},
        {"type": "crash",     "node": "leader",    "at": 40.0},
        {"type": "recover",   "node": "last_crashed", "at": 60.0},
        {"type": "join",      "at": 80.0, "node_id": 99},
        {"type": "partition", "components": [[0, 1], [2, 3]],
                              "start": 100.0, "end": 140.0},
        {"type": "elect",     "at": 160.0},
        {"type": "slander",   "accuser": 0, "victim": "leader",
                              "at": 180.0, "duration": 50.0}
      ],
      "kill_policy": {"delay": 1.0, "max_kills": 2},
      "link_faults": [{"drop_prob": 0.05}],
      "adversary": {
        "byzantine": [0],
        "tampers":  [{"mode": "forge", "kinds": ["compete"]}],
        "slanders": [{"accuser": 0, "victims": [5], "start": 5.0, "end": 50.0}]
      }
    }

Schema violations raise :class:`ScenarioSchemaError` carrying the JSON
path of the offending field (``events[2].node: ...``), so a typo in a
hand-written timeline points at itself.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, Dict, List, Tuple, Union

from repro.faults.plan import LeaderKillPolicy, LinkFaults
from repro.scenarios.events import (
    CrashEvent,
    ElectEvent,
    JoinEvent,
    PartitionEvent,
    RecoverEvent,
    Scenario,
    SlanderEvent,
)

__all__ = ["ScenarioSchemaError", "scenario_from_json", "scenario_to_json"]


class ScenarioSchemaError(ValueError):
    """A scenario JSON document violates the schema (path included)."""


def _fail(path: str, message: str) -> None:
    raise ScenarioSchemaError(f"{path}: {message}")


def _require(data: Dict[str, Any], key: str, path: str) -> Any:
    if key not in data:
        _fail(path, f"missing required field {key!r}")
    return data[key]


def _check_keys(data: Dict[str, Any], allowed: Tuple[str, ...], path: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        _fail(
            path,
            f"unknown field(s) {sorted(unknown)}; allowed: {sorted(allowed)}",
        )


def _as_dict(value: Any, path: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        _fail(path, f"expected an object, got {type(value).__name__}")
    return value


def _as_list(value: Any, path: str) -> List[Any]:
    if not isinstance(value, list):
        _fail(path, f"expected an array, got {type(value).__name__}")
    return value


def _build(cls, kwargs: Dict[str, Any], path: str):
    """Instantiate a frozen model class, re-raising with the JSON path."""
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ScenarioSchemaError(f"{path}: {exc}") from None


# --------------------------------------------------------------------- #
# loading

_EVENT_FIELDS = {
    "crash": ("type", "node", "at"),
    "recover": ("type", "node", "at"),
    "join": ("type", "at", "node_id"),
    "partition": ("type", "components", "start", "end"),
    "elect": ("type", "at"),
    "slander": ("type", "accuser", "victim", "at", "duration"),
}


def _event_from(data: Dict[str, Any], path: str):
    kind = _require(data, "type", path)
    if kind not in _EVENT_FIELDS:
        _fail(path, f"unknown event type {kind!r}; known: {sorted(_EVENT_FIELDS)}")
    _check_keys(data, _EVENT_FIELDS[kind], path)
    body = {k: v for k, v in data.items() if k != "type"}
    if kind == "crash":
        _require(data, "node", path)
        return _build(CrashEvent, body, path)
    if kind == "recover":
        _require(data, "node", path)
        return _build(RecoverEvent, body, path)
    if kind == "join":
        return _build(JoinEvent, body, path)
    if kind == "partition":
        comps = _as_list(_require(data, "components", path), f"{path}.components")
        body["components"] = tuple(
            tuple(_as_list(c, f"{path}.components[{i}]")) for i, c in enumerate(comps)
        )
        return _build(PartitionEvent, body, path)
    if kind == "elect":
        return _build(ElectEvent, body, path)
    return _build(SlanderEvent, body, path)


def _kill_policy_from(data: Dict[str, Any], path: str) -> LeaderKillPolicy:
    _check_keys(data, ("kinds", "delay", "max_kills"), path)
    if "kinds" in data:
        data = dict(data, kinds=tuple(_as_list(data["kinds"], f"{path}.kinds")))
    return _build(LeaderKillPolicy, data, path)


def _link_fault_from(data: Dict[str, Any], path: str) -> LinkFaults:
    _check_keys(
        data, ("drop_prob", "duplicate_prob", "src", "dst", "kinds", "max_drops"), path
    )
    if data.get("kinds") is not None:
        data = dict(data, kinds=tuple(_as_list(data["kinds"], f"{path}.kinds")))
    return _build(LinkFaults, data, path)


def _adversary_from(data: Dict[str, Any], path: str):
    from repro.adversary.plan import AdversaryPlan, SlanderWindow, TamperRule

    _check_keys(data, ("byzantine", "tampers", "slanders"), path)
    tampers = []
    for i, entry in enumerate(_as_list(data.get("tampers", []), f"{path}.tampers")):
        entry = _as_dict(entry, f"{path}.tampers[{i}]")
        _check_keys(
            entry,
            ("mode", "prob", "src", "dst", "kinds", "magnitude", "forge_id",
             "max_tampers"),
            f"{path}.tampers[{i}]",
        )
        if entry.get("kinds") is not None:
            entry = dict(
                entry,
                kinds=tuple(_as_list(entry["kinds"], f"{path}.tampers[{i}].kinds")),
            )
        tampers.append(_build(TamperRule, entry, f"{path}.tampers[{i}]"))
    slanders = []
    for i, entry in enumerate(_as_list(data.get("slanders", []), f"{path}.slanders")):
        entry = _as_dict(entry, f"{path}.slanders[{i}]")
        _check_keys(
            entry, ("accuser", "victims", "start", "end"), f"{path}.slanders[{i}]"
        )
        if "victims" in entry:
            entry = dict(
                entry,
                victims=tuple(
                    _as_list(entry["victims"], f"{path}.slanders[{i}].victims")
                ),
            )
        slanders.append(_build(SlanderWindow, entry, f"{path}.slanders[{i}]"))
    byzantine = tuple(_as_list(data.get("byzantine", []), f"{path}.byzantine"))
    return _build(
        AdversaryPlan,
        {"byzantine": byzantine, "tampers": tuple(tampers), "slanders": tuple(slanders)},
        path,
    )


_TOP_FIELDS = (
    "name",
    "description",
    "membership_policy",
    "min_n",
    "events",
    "kill_policy",
    "link_faults",
    "adversary",
)


def scenario_from_json(source: Union[str, Dict[str, Any]]) -> Scenario:
    """Parse a scenario from a JSON document.

    ``source`` may be an already-parsed dict, a path to a ``.json``
    file, or a raw JSON string (anything that starts with ``{``).
    """
    if isinstance(source, str):
        if source.lstrip().startswith("{"):
            try:
                source = json.loads(source)
            except json.JSONDecodeError as exc:
                raise ScenarioSchemaError(f"invalid JSON: {exc}") from None
        else:
            if not os.path.isfile(source):
                raise ScenarioSchemaError(f"no such scenario file: {source}")
            try:
                with open(source) as fh:
                    source = json.load(fh)
            except OSError as exc:
                raise ScenarioSchemaError(f"cannot read scenario file: {exc}") from None
            except json.JSONDecodeError as exc:
                raise ScenarioSchemaError(f"{source}: invalid JSON: {exc}") from None
    data = _as_dict(source, "$")
    _check_keys(data, _TOP_FIELDS, "$")
    name = _require(data, "name", "$")
    if not isinstance(name, str) or not name:
        _fail("$.name", "must be a nonempty string")
    events = []
    for i, entry in enumerate(_as_list(data.get("events", []), "$.events")):
        events.append(_event_from(_as_dict(entry, f"$.events[{i}]"), f"$.events[{i}]"))
    kill_policy = None
    if data.get("kill_policy") is not None:
        kill_policy = _kill_policy_from(
            _as_dict(data["kill_policy"], "$.kill_policy"), "$.kill_policy"
        )
    link_faults = tuple(
        _link_fault_from(_as_dict(entry, f"$.link_faults[{i}]"), f"$.link_faults[{i}]")
        for i, entry in enumerate(_as_list(data.get("link_faults", []), "$.link_faults"))
    )
    adversary = None
    if data.get("adversary") is not None:
        adversary = _adversary_from(
            _as_dict(data["adversary"], "$.adversary"), "$.adversary"
        )
    return _build(
        Scenario,
        {
            "name": name,
            "description": data.get("description", ""),
            "events": tuple(events),
            "membership_policy": data.get("membership_policy", "leader_loss"),
            "kill_policy": kill_policy,
            "link_faults": link_faults,
            "adversary": adversary,
            "min_n": data.get("min_n", 2),
        },
        "$",
    )


# --------------------------------------------------------------------- #
# dumping

_EVENT_TYPES = {
    CrashEvent: "crash",
    RecoverEvent: "recover",
    JoinEvent: "join",
    PartitionEvent: "partition",
    ElectEvent: "elect",
    SlanderEvent: "slander",
}


def _clean(data: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` fields (they are all optional in the schema)."""
    return {k: v for k, v in data.items() if v is not None}


def _listify(value: Any) -> Any:
    """Tuples -> lists, recursively (JSON has no tuples)."""
    if isinstance(value, tuple):
        return [_listify(v) for v in value]
    return value


def scenario_to_json(scenario: Scenario) -> Dict[str, Any]:
    """The JSON document for a scenario (inverse of :func:`scenario_from_json`)."""
    events = []
    for event in scenario.events:
        body = {k: _listify(v) for k, v in _clean(asdict(event)).items()}
        events.append({"type": _EVENT_TYPES[type(event)], **body})
    doc: Dict[str, Any] = {
        "name": scenario.name,
        "description": scenario.description,
        "membership_policy": scenario.membership_policy,
        "min_n": scenario.min_n,
        "events": events,
    }
    if scenario.kill_policy is not None:
        doc["kill_policy"] = {
            k: _listify(v) for k, v in asdict(scenario.kill_policy).items()
        }
    if scenario.link_faults:
        doc["link_faults"] = [
            _clean({k: _listify(v) for k, v in asdict(rule).items()})
            for rule in scenario.link_faults
        ]
    if scenario.adversary is not None:
        plan = scenario.adversary
        doc["adversary"] = _clean(
            {
                "byzantine": _listify(plan.byzantine),
                "tampers": [
                    _clean({k: _listify(v) for k, v in asdict(rule).items()})
                    for rule in plan.tampers
                ]
                or None,
                "slanders": [
                    _clean({k: _listify(v) for k, v in asdict(window).items()})
                    for window in plan.slanders
                ]
                or None,
            }
        )
    return doc
