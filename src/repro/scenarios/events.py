"""The declarative scenario event model.

A :class:`Scenario` is an immutable description of *what happens to the
network over time*: a name, a tuple of timestamped events, and a handful
of ambient knobs (membership policy, in-run adversarial churn, lossy
links).  It contains no randomness and no engine state — the same
``(scenario, n, engine, seed)`` tuple always replays the same execution
(``tests/test_scenario_determinism.py``).

Five event types span the ROADMAP churn axes:

* :func:`crash` — crash-stop a node.  The target may be a concrete node
  index or the symbolic :data:`LEADER`, which the runner resolves to the
  currently agreed leader at fire time (for "kill whoever is in charge"
  timelines that cannot know indices in advance).
* :func:`recover` — a crashed node restarts with its *persisted epoch
  state* and rejoins.  Recovery follows the elect-lower-epoch contract:
  the rejoining node's persisted epoch can never exceed the component's
  current epoch, so it adopts the current leader as a follower instead
  of contesting leadership (the runner asserts this invariant).  The
  symbolic target :data:`LAST_CRASHED` resolves to the most recently
  crashed node that is still down.
* :func:`join` — a brand-new node (fresh ID, epoch 0) joins the clique.
* :func:`partition` — split the clique into components for a time
  window, with automatic heal at ``end``.
* :func:`elect` — force a fresh election on the current membership
  (repeated-election workloads).

Scenario time is the host engine's time axis: rounds on the synchronous
and fast engines, time units on the asynchronous engine.  Election acts
are *atomic* — an event whose timestamp falls inside a running election
takes effect at the act boundary; in-flight churn is modeled by the
in-run ``kill_policy`` and ``link_faults`` instead (see
``DESIGN.md`` "Scenarios subsystem" for the exact contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.faults.plan import LeaderKillPolicy, LinkFaults

__all__ = [
    "LEADER",
    "LAST_CRASHED",
    "CrashEvent",
    "RecoverEvent",
    "JoinEvent",
    "PartitionEvent",
    "ElectEvent",
    "SlanderEvent",
    "Scenario",
    "crash",
    "recover",
    "join",
    "partition",
    "elect",
    "slander",
]

#: Symbolic crash target: the currently agreed leader at fire time.
LEADER = "leader"
#: Symbolic recover target: the most recently crashed node still down.
LAST_CRASHED = "last_crashed"


def _check_at(at: float) -> None:
    if at < 0:
        raise ValueError("event times must be >= 0")


@dataclass(frozen=True)
class CrashEvent:
    """Crash-stop ``node`` (index or :data:`LEADER`) at time ``at``."""

    node: Union[int, str]
    at: float

    def __post_init__(self) -> None:
        _check_at(self.at)
        if isinstance(self.node, str):
            if self.node != LEADER:
                raise ValueError(f"unknown symbolic crash target {self.node!r}")
        elif self.node < 0:
            raise ValueError("crash target must be a node index >= 0")


@dataclass(frozen=True)
class RecoverEvent:
    """Restart ``node`` (index or :data:`LAST_CRASHED`) at time ``at``."""

    node: Union[int, str]
    at: float

    def __post_init__(self) -> None:
        _check_at(self.at)
        if isinstance(self.node, str):
            if self.node != LAST_CRASHED:
                raise ValueError(f"unknown symbolic recover target {self.node!r}")
        elif self.node < 0:
            raise ValueError("recover target must be a node index >= 0")


@dataclass(frozen=True)
class JoinEvent:
    """A new node (fresh ID unless ``node_id`` pins one) joins at ``at``."""

    at: float
    node_id: Optional[int] = None

    def __post_init__(self) -> None:
        _check_at(self.at)
        if self.node_id is not None and self.node_id < 1:
            raise ValueError("joining node IDs must be >= 1")


@dataclass(frozen=True)
class PartitionEvent:
    """Split into ``components`` during ``[start, end)``; heal at ``end``.

    Components name *initial* node indices; every current member of the
    clique at fire time must be covered (joined nodes inherit the
    component of nobody — scenarios that mix joins and partitions must
    order the partition first or list the join's index explicitly).
    """

    components: Tuple[Tuple[int, ...], ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_at(self.start)
        if len(self.components) < 2:
            raise ValueError("a partition needs at least two components")
        # Component and window rules are PartitionMask's (one source of
        # truth): non-empty disjoint components, end after start.
        from repro.faults.plan import PartitionMask

        PartitionMask(components=self.components, start=self.start, end=self.end)

    @property
    def at(self) -> float:
        return self.start


@dataclass(frozen=True)
class ElectEvent:
    """Force a fresh election on the current membership at ``at``."""

    at: float

    def __post_init__(self) -> None:
        _check_at(self.at)


@dataclass(frozen=True)
class SlanderEvent:
    """Byzantine ``accuser`` slanders ``victim`` as dead at ``at``.

    The victim may be a concrete node index or the symbolic
    :data:`LEADER` ("assassinate the reign by rumor").  The rumor is
    believed for ``duration`` time units *inside the triggered act*: the
    runner starts a re-election act at ``at + lag`` whose adversary plan
    carries the matching :class:`~repro.adversary.SlanderWindow`, so the
    honest majority re-elects while the slandered victim — still alive —
    either splits the brain (plain ``reelect``) or rejoins as a follower
    (``--quorum``).  The accuser must be up at fire time or the event is
    skipped (dead nodes spread no rumors).
    """

    accuser: int
    victim: Union[int, str]
    at: float
    duration: float = 1000.0

    def __post_init__(self) -> None:
        _check_at(self.at)
        if self.accuser < 0:
            raise ValueError("slander accuser must be a node index >= 0")
        if isinstance(self.victim, str):
            if self.victim != LEADER:
                raise ValueError(f"unknown symbolic slander victim {self.victim!r}")
        elif self.victim < 0:
            raise ValueError("slander victim must be a node index >= 0")
        elif self.victim == self.accuser:
            raise ValueError("a node cannot slander itself")
        if self.duration <= 0:
            raise ValueError("slander duration must be > 0")


Event = Union[
    CrashEvent, RecoverEvent, JoinEvent, PartitionEvent, ElectEvent, SlanderEvent
]


def crash(node: Union[int, str], at: float) -> CrashEvent:
    """Declare ``crash(node, t)`` — see :class:`CrashEvent`."""
    return CrashEvent(node=node, at=at)


def recover(node: Union[int, str], at: float) -> RecoverEvent:
    """Declare ``recover(node, t)`` — see :class:`RecoverEvent`."""
    return RecoverEvent(node=node, at=at)


def join(at: float, node_id: Optional[int] = None) -> JoinEvent:
    """Declare ``join(new_node, t)`` — see :class:`JoinEvent`."""
    return JoinEvent(at=at, node_id=node_id)


def partition(
    components: Tuple[Tuple[int, ...], ...], start: float, end: float
) -> PartitionEvent:
    """Declare ``partition(components, t_start, t_end)`` with auto-heal."""
    return PartitionEvent(components=tuple(tuple(c) for c in components), start=start, end=end)


def elect(at: float) -> ElectEvent:
    """Declare ``elect(t)`` — a forced re-election on the same clique."""
    return ElectEvent(at=at)


def slander(
    accuser: int, victim: Union[int, str], at: float, duration: float = 1000.0
) -> SlanderEvent:
    """Declare ``slander(accuser, victim, t)`` — see :class:`SlanderEvent`."""
    return SlanderEvent(accuser=accuser, victim=victim, at=at, duration=duration)


#: Re-election policies: elect only when leadership is lost, or on every
#: membership change (joins/recoveries/non-leader crashes included).
MEMBERSHIP_POLICIES = ("leader_loss", "membership_change")


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic timeline of events (see module docstring).

    ``membership_policy`` decides which events force a re-election:
    ``"leader_loss"`` (default) re-elects only when the agreed leader
    becomes unavailable, ``"membership_change"`` re-elects on every
    membership transition (joins and recoveries included) — the
    coordination-service flavor where the member list is part of the
    replicated state.

    ``kill_policy`` injects in-run adversarial churn (kill the
    frontrunner at its announcement) into the *initial* election act;
    ``link_faults`` apply to every act and must be wildcard rules
    (``src``/``dst`` of ``None``) because act-local node indices shift
    with the membership.

    ``adversary`` attaches a Byzantine
    :class:`~repro.adversary.AdversaryPlan` whose node indices name
    *initial* scenario nodes; the runner remaps them to act-local
    indices per act (members absent from an act simply drop out of the
    remapped plan).  Slander events add further act-local windows on
    top.
    """

    name: str
    description: str = ""
    events: Tuple[Event, ...] = ()
    membership_policy: str = "leader_loss"
    kill_policy: Optional[LeaderKillPolicy] = None
    link_faults: Tuple[LinkFaults, ...] = ()
    adversary: Optional[object] = None
    min_n: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.adversary is not None:
            from repro.adversary.plan import AdversaryPlan

            if not isinstance(self.adversary, AdversaryPlan):
                raise ValueError(
                    "Scenario.adversary must be a repro.adversary.AdversaryPlan"
                )
        if self.membership_policy not in MEMBERSHIP_POLICIES:
            raise ValueError(
                f"membership_policy must be one of {MEMBERSHIP_POLICIES}, "
                f"got {self.membership_policy!r}"
            )
        for rule in self.link_faults:
            if rule.src is not None or rule.dst is not None:
                raise ValueError(
                    "scenario link faults must be wildcard rules (src/dst None); "
                    "act-local node indices shift with the membership"
                )
        windows = sorted(
            (e for e in self.events if isinstance(e, PartitionEvent)),
            key=lambda e: e.start,
        )
        for a, b in zip(windows, windows[1:]):
            if b.start < a.end:
                raise ValueError("partition windows cannot overlap")

    def sorted_events(self) -> Tuple[Event, ...]:
        """Events in fire order (stable for equal timestamps)."""
        return tuple(sorted(self.events, key=lambda e: e.at))

    def summary(self) -> str:
        counts: dict = {}
        for e in self.events:
            key = type(e).__name__.replace("Event", "").lower()
            counts[key] = counts.get(key, 0) + 1
        parts = [f"{v}x {k}" for k, v in sorted(counts.items())]
        if self.kill_policy is not None:
            parts.append(f"kill-leader x{self.kill_policy.max_kills}")
        if self.link_faults:
            parts.append("lossy links")
        if self.adversary is not None:
            parts.append("byzantine")
        return ", ".join(parts) if parts else "single election"
