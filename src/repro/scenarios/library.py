"""The named scenario library.

Five ready-made timelines cover the ROADMAP churn axes — partitions
with measured re-convergence, crash-recovery with persisted epoch
state, dynamic membership, adversarial frontrunner churn, and repeated
elections on the same clique.  Each builder takes the initial clique
size ``n`` (event timings are size-independent: the registered inner
algorithms elect in O(ell) rounds regardless of ``n``, so the windows
below leave generous slack) and returns an immutable
:class:`~repro.scenarios.Scenario`.

Run them via ``python -m repro scenarios run NAME`` or
:func:`repro.scenarios.run_scenario`; sweep them in
``benchmarks/bench_scenario_churn.py``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.faults.plan import LeaderKillPolicy
from repro.scenarios.events import (
    LAST_CRASHED,
    LEADER,
    Scenario,
    crash,
    elect,
    join,
    partition,
    recover,
    slander,
)

__all__ = [
    "NAMED_SCENARIOS",
    "get_scenario",
    "partition_heal",
    "rolling_restart",
    "flapping_leader",
    "staggered_joins",
    "election_storm",
    "slandered_leader",
    "forged_frontrunner",
    "poisson_churn",
]


def partition_heal(n: int) -> Scenario:
    """Split the clique into two halves, heal, measure re-convergence.

    During the window each half elects its own leader (one engine run
    under a ``PartitionMask``); the heal triggers a fresh full-clique
    election, after which exactly one agreed leader must remain.
    """
    half = n // 2
    return Scenario(
        name="partition_heal",
        description="two-way split with automatic heal and re-convergence",
        events=(
            partition(
                (tuple(range(half)), tuple(range(half, n))), start=20.0, end=80.0
            ),
        ),
    )


def rolling_restart(n: int, restarts: int = 3) -> Scenario:
    """Crash the current leader, let it recover, repeat.

    Exercises crash-*recovery* with persisted epoch state: each crashed
    leader returns with a stale epoch and must rejoin as a follower
    (elect-lower-epoch) instead of reclaiming leadership by fiat.
    """
    restarts = max(1, min(restarts, n - 1))
    events: List = []
    t = 20.0
    for _ in range(restarts):
        events.append(crash(LEADER, t))
        events.append(recover(LAST_CRASHED, t + 30.0))
        t += 60.0
    return Scenario(
        name="rolling_restart",
        description="serially crash and recover each sitting leader",
        events=tuple(events),
    )


def flapping_leader(n: int, kills: int = 3) -> Scenario:
    """Kill every new leader the moment it announces victory.

    Pure in-run churn: one election act whose
    :class:`~repro.faults.LeaderKillPolicy` crashes the frontrunner at
    each announcement until ``kills`` are spent, so the act's re-election
    wrapper burns through ``kills + 1`` epochs before a survivor commits.
    """
    return Scenario(
        name="flapping_leader",
        description="adversarial kill-the-frontrunner churn inside one act",
        events=(),
        kill_policy=LeaderKillPolicy(delay=1.0, max_kills=kills),
        min_n=kills + 2,
    )


def staggered_joins(n: int, joins: int = 3) -> Scenario:
    """Grow the clique one node at a time under membership re-election.

    Uses ``membership_policy="membership_change"``: every join forces a
    fresh election over the grown clique, measuring the cost of dynamic
    membership beyond crashes.
    """
    events = tuple(join(20.0 + 30.0 * i) for i in range(max(1, joins)))
    return Scenario(
        name="staggered_joins",
        description="dynamic membership: joins force re-election",
        events=events,
        membership_policy="membership_change",
    )


def election_storm(n: int, repeats: int = 4) -> Scenario:
    """Repeated elections on the same clique (multi-election workload).

    No faults at all: ``elect`` events re-run the election every window,
    measuring steady-state election cost and verifying that repeated
    epochs never break leadership agreement between commits.
    """
    events = tuple(elect(20.0 + 30.0 * i) for i in range(max(1, repeats)))
    return Scenario(
        name="election_storm",
        description="repeated fresh elections on an unchanged clique",
        events=events,
    )


def slandered_leader(n: int, slanders: int = 2) -> Scenario:
    """Byzantine node 0 serially slanders each sitting leader as dead.

    Nobody actually crashes: the detectors lie, the honest majority
    re-elects, and the slandered ex-leader — alive and initially
    convinced of its reign — is the split-brain seed.  Run with
    ``--quorum`` the victim rejoins as a follower via coord catch-up
    (split-brain metric 0); without it the victim never learns the new
    reign and the act records a stall.
    """
    slanders = max(1, slanders)
    events = tuple(
        slander(0, LEADER, 20.0 + 40.0 * i, duration=1000.0)
        for i in range(slanders)
    )
    return Scenario(
        name="slandered_leader",
        description="Byzantine detector slander deposes live leaders by rumor",
        events=events,
        min_n=4,
    )


def forged_frontrunner(n: int) -> Scenario:
    """Byzantine node 0 forges the frontrunner ID, reigns, then dies.

    Every ``compete`` message node 0 sends claims an ID larger than the
    whole universe, so the honest referees crown the forger in the
    initial act (its *announcement* still carries the real ID — the
    coord envelope is authenticated).  The forger is then crashed and
    the honest survivors re-elect cleanly, measuring what one Byzantine
    reign costs end to end.
    """
    from repro.adversary.plan import AdversaryPlan, TamperRule

    return Scenario(
        name="forged_frontrunner",
        description="Byzantine node forges a winning ID, reigns, then crashes",
        events=(crash(0, 30.0),),
        adversary=AdversaryPlan(
            byzantine=(0,),
            tampers=(TamperRule(mode="forge", kinds=("compete",)),),
        ),
        min_n=4,
    )


def poisson_churn(
    n: int,
    rate: float = 0.04,
    horizon: float = 240.0,
    seed: int = 0,
    recovery_delay: float = 25.0,
) -> Scenario:
    """Randomized churn: leader crashes arrive as a Poisson process.

    Crash arrivals are drawn with exponential inter-arrival gaps of mean
    ``1/rate`` until ``horizon``; each crash targets the sitting leader
    and is followed ``recovery_delay`` later by the recovery of the most
    recently downed node, so the clique churns without shrinking away.
    The timeline is a pure function of ``(rate, horizon, seed)`` — the
    generator's randomness is its own, never the engines' (ROADMAP:
    "randomized churn generators, Poisson crash arrival").
    """
    if rate <= 0:
        raise ValueError("poisson_churn needs a positive arrival rate")
    if horizon <= 0:
        raise ValueError("poisson_churn needs a positive horizon")
    rng = random.Random(f"poisson:{rate}:{horizon}:{seed}")
    events: List = []
    t = 20.0
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        at = round(t, 3)
        events.append(crash(LEADER, at))
        events.append(recover(LAST_CRASHED, at + recovery_delay))
    return Scenario(
        name="poisson_churn",
        description=f"Poisson leader churn (rate={rate:g}, horizon={horizon:g})",
        events=tuple(events),
    )


NAMED_SCENARIOS: Dict[str, Callable[[int], Scenario]] = {
    "partition_heal": partition_heal,
    "rolling_restart": rolling_restart,
    "flapping_leader": flapping_leader,
    "staggered_joins": staggered_joins,
    "election_storm": election_storm,
    "slandered_leader": slandered_leader,
    "forged_frontrunner": forged_frontrunner,
    "poisson_churn": poisson_churn,
}


def get_scenario(name: str, n: int, **kwargs) -> Scenario:
    """Build a named scenario for clique size ``n``.

    Raises ``KeyError`` with the known names on a typo, mirroring the
    algorithm registries.
    """
    try:
        builder = NAMED_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
    return builder(n, **kwargs)
