"""Per-epoch convergence metrics for scenario executions.

The runner records one :class:`EpochRecord` per election act plus a
timeline of leadership transitions; this module turns them into the
re-convergence numbers the ROADMAP asks for:

* **failover latency** — disruption time to the commit of the next
  agreed leader, per failure-triggered epoch (detector lag included);
* **leadership-agreement intervals** — the maximal time windows during
  which every up node follows the same single leader, versus windows of
  split or absent leadership (partitions produce one leader *per
  component*, which counts as disagreement);
* **epoch churn** — how many leader commits the scenario caused in
  total, including leaders that were killed mid-scenario;
* **message/round overhead** — total traffic and rounds relative to a
  fault-free single election on the initial membership with the same
  seed (the "what did the churn cost" ratio).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.export import records_to_jsonl
from repro.analysis.runner import RunRecord

__all__ = [
    "CLOSING_WINDOW",
    "EpochRecord",
    "AgreementInterval",
    "ScenarioMetrics",
    "compute_metrics",
    "scenario_report",
]

#: Extra observation time appended after the last leadership transition
#: when computing agreement intervals, so the terminal state carries
#: nonzero weight in ``agreed_fraction``.
CLOSING_WINDOW = 8.0


@dataclass
class EpochRecord:
    """One election act: who ran, why, when, and what it cost."""

    epoch: int                    # first global epoch number this act minted
    trigger: str                  # initial|failover|partition|heal|elect|membership
    t_event: float                # the disruption that caused the act
    t_start: float                # when the election began (>= t_event + lag)
    duration: float               # engine-measured rounds / time units
    t_end: float                  # t_start + duration (commit time)
    members: List[int]            # global node indices that participated
    member_ids: List[int]
    leader_ids: List[int]         # every LEADER commit in the act (kills incl.)
    surviving_leader_id: Optional[int]
    messages: int
    record: RunRecord             # flattened engine record (JSON-safe extra)
    epochs_minted: int = 1        # commits + kill-aborted frontrunner epochs
    reelection_time: Optional[float] = None  # in-act first-crash -> last commit
    detection_latencies: List[float] = field(default_factory=list)
    in_act_crashes: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    partition_blocked: int = 0
    tampered_messages: int = 0    # Byzantine alterations inside the act
    concurrent_leaders: int = 1   # leaders alive at act end (> 1 = split brain)

    @property
    def failover_latency(self) -> float:
        """Disruption-to-commit latency of this act."""
        return self.t_end - self.t_event


@dataclass(frozen=True)
class AgreementInterval:
    """A maximal window of constant leadership state."""

    start: float
    end: float
    leaders: Tuple[int, ...]      # believed leader IDs across components
    agreed: bool                  # exactly one leader, followed by all up nodes

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass
class ScenarioMetrics:
    """The flattened re-convergence summary of one scenario run."""

    elections: int
    epoch_churn: int
    failover_latencies: List[float]
    mean_failover_latency: Optional[float]
    max_failover_latency: Optional[float]
    agreement_intervals: List[AgreementInterval]
    agreed_fraction: float
    span: float
    total_messages: int
    total_rounds: float
    baseline_messages: int
    baseline_rounds: float
    message_overhead: float
    round_overhead: float
    crashes: int
    recoveries: int
    joins: int
    dropped_messages: int
    duplicated_messages: int
    partition_blocked: int
    tampered_messages: int
    # Acts that ended with more than one leader simultaneously alive —
    # the split-brain count the quorum layer drives to zero.
    split_brain_acts: int
    final_leader_id: Optional[int]
    final_agreed: bool

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            k: v
            for k, v in self.__dict__.items()
            if k != "agreement_intervals"
        }
        payload["agreement_intervals"] = [
            {
                "start": iv.start,
                "end": iv.end,
                "leaders": list(iv.leaders),
                "agreed": iv.agreed,
            }
            for iv in self.agreement_intervals
        ]
        return payload


def _intervals_from_timeline(
    timeline: List[Tuple[float, Tuple[int, ...], bool]], span: float
) -> List[AgreementInterval]:
    """Collapse (time, leaders, agreed) transition points into intervals."""
    if not timeline:
        return []
    points = sorted(timeline, key=lambda p: p[0])
    intervals: List[AgreementInterval] = []
    for i, (t, leaders, agreed) in enumerate(points):
        end = points[i + 1][0] if i + 1 < len(points) else max(span, t)
        if end > t:
            intervals.append(
                AgreementInterval(start=t, end=end, leaders=leaders, agreed=agreed)
            )
    # Merge adjacent intervals with identical state (transition points
    # may repeat a state, e.g. a follower crash that changes nothing).
    merged: List[AgreementInterval] = []
    for iv in intervals:
        if merged and merged[-1].leaders == iv.leaders and merged[-1].agreed == iv.agreed:
            merged[-1] = AgreementInterval(
                start=merged[-1].start, end=iv.end, leaders=iv.leaders, agreed=iv.agreed
            )
        else:
            merged.append(iv)
    return merged


def compute_metrics(
    epochs: List[EpochRecord],
    timeline: List[Tuple[float, Tuple[int, ...], bool]],
    baseline: RunRecord,
    counts: Dict[str, int],
    final_leader_id: Optional[int],
    final_agreed: bool,
) -> ScenarioMetrics:
    """Assemble the summary (see the dataclass field docs)."""
    span = max((e.t_end for e in epochs), default=0.0)
    span = max(span, max((t for t, _l, _a in timeline), default=0.0))
    # Observe the terminal state for one closing window so "converged at
    # the very end" is distinguishable from "never converged".
    span += CLOSING_WINDOW
    intervals = _intervals_from_timeline(timeline, span)
    agreed_time = sum(iv.span for iv in intervals if iv.agreed)
    failovers = [
        e.failover_latency for e in epochs if e.trigger in ("failover", "heal", "partition")
    ]
    # In-act churn (kill policies): first crash to last commit, measured
    # by the failover trial from the actual event trace.
    failovers += [
        e.reelection_time
        for e in epochs
        if e.trigger not in ("failover", "heal", "partition")
        and e.reelection_time is not None
    ]
    total_messages = sum(e.messages for e in epochs)
    total_rounds = sum(e.duration for e in epochs)
    baseline_messages = max(1, baseline.messages)
    baseline_rounds = max(1.0, float(baseline.extra.get("rounds_executed", baseline.time)))
    return ScenarioMetrics(
        elections=len(epochs),
        epoch_churn=sum(e.epochs_minted for e in epochs),
        failover_latencies=failovers,
        mean_failover_latency=(sum(failovers) / len(failovers)) if failovers else None,
        max_failover_latency=max(failovers) if failovers else None,
        agreement_intervals=intervals,
        agreed_fraction=(agreed_time / span) if span > 0 else 0.0,
        span=span,
        total_messages=total_messages,
        total_rounds=total_rounds,
        baseline_messages=baseline.messages,
        baseline_rounds=float(baseline.extra.get("rounds_executed", baseline.time)),
        message_overhead=total_messages / baseline_messages,
        round_overhead=total_rounds / baseline_rounds,
        crashes=counts.get("crashes", 0),
        recoveries=counts.get("recoveries", 0),
        joins=counts.get("joins", 0),
        dropped_messages=sum(e.dropped_messages for e in epochs),
        duplicated_messages=sum(e.duplicated_messages for e in epochs),
        partition_blocked=sum(e.partition_blocked for e in epochs),
        tampered_messages=sum(e.tampered_messages for e in epochs),
        split_brain_acts=sum(1 for e in epochs if e.concurrent_leaders > 1),
        final_leader_id=final_leader_id,
        final_agreed=final_agreed,
    )


def scenario_report(result) -> Dict[str, Any]:
    """A JSON-safe report for one :class:`~repro.scenarios.ScenarioResult`.

    The per-act engine records ride along serialized through
    :func:`repro.analysis.export.records_to_jsonl`, so downstream
    tooling can load them with the standard record loaders.
    """
    records = [e.record for e in result.epochs]
    return {
        "scenario": result.scenario.name,
        "description": result.scenario.description,
        "engine": result.engine,
        "n": result.n_initial,
        "final_n": len(result.states),
        "seed": result.seed,
        "metrics": result.metrics.to_dict(),
        "epochs": [
            {
                "epoch": e.epoch,
                "trigger": e.trigger,
                "t_event": e.t_event,
                "t_start": e.t_start,
                "duration": e.duration,
                "t_end": e.t_end,
                "failover_latency": e.failover_latency,
                "members": e.members,
                "member_ids": e.member_ids,
                "leader_ids": e.leader_ids,
                "surviving_leader_id": e.surviving_leader_id,
                "messages": e.messages,
                "epochs_minted": e.epochs_minted,
                "reelection_time": e.reelection_time,
                "detection_latencies": e.detection_latencies,
                "in_act_crashes": e.in_act_crashes,
                "dropped_messages": e.dropped_messages,
                "partition_blocked": e.partition_blocked,
                "tampered_messages": e.tampered_messages,
                "concurrent_leaders": e.concurrent_leaders,
            }
            for e in result.epochs
        ],
        "records": [
            json.loads(line) for line in records_to_jsonl(records).splitlines()
        ],
        "notes": result.notes,
    }
