"""Execute a :class:`~repro.scenarios.Scenario` against a real engine.

The runner is the orchestration layer the ROADMAP's churn items share:
it walks the event timeline in fire order, keeps the *persistent* node
states (up/down, persisted epoch, believed leader) that outlive any
single engine run, and realizes every election epoch as one **act** — a
standard run of the synchronous, asynchronous, or fast engine over the
current membership, configured through the existing fault subsystem
(:class:`~repro.faults.FaultPlan` detector specs, ``LinkFaults``,
``LeaderKillPolicy`` churn, and the new ``PartitionMask``).

Execution contract
------------------

* **Acts are atomic.**  An event whose timestamp lands inside a running
  election takes effect at the act boundary (elections are serialized:
  an act never starts before the previous one ended).  In-flight churn
  is modeled *inside* acts by the scenario's ``kill_policy`` and
  ``link_faults``, which the engines apply with measured detection and
  re-election latencies.
* **Failure-triggered acts start after the detection lag.**  A leader
  crash at ``t`` is detected at ``t + lag`` (the act's detector spec),
  so measured failover latency composes the oracle lag with the real
  engine-measured election and commit time.
* **Partitions run as one act.**  The partition window is a single
  full-membership engine run carrying a :class:`~repro.faults.PartitionMask`
  — cross-component traffic is dropped by the runtime and the
  partition-aware detectors make the re-election wrapper elect one
  leader *per component* in the same run.  The heal triggers a fresh
  full-membership act at ``end + lag``.
* **Recovery is elect-lower-epoch.**  A recovering node rejoins with
  its persisted epoch, which can never exceed the group's current epoch
  (epochs only grow, and any leadership change the node missed bumped
  the group further).  It therefore adopts the current leader and epoch
  as a follower; it never contests leadership on rejoin.  The runner
  asserts the invariant.
* **Joins** allocate a fresh ID and epoch 0, then follow the same
  adoption path.  Under ``membership_policy="membership_change"`` every
  join/recovery additionally forces a re-election (the coordination-
  service flavor); under the default ``"leader_loss"`` only lost
  leadership does.

Everything is deterministic per ``(scenario, n, engine, seed)``: act
seeds are derived from the run seed and the act index, and all engine
randomness flows from them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import DetectorSpec, FaultPlan, PartitionMask
from repro.scenarios.events import (
    LAST_CRASHED,
    LEADER,
    CrashEvent,
    ElectEvent,
    JoinEvent,
    PartitionEvent,
    RecoverEvent,
    Scenario,
    SlanderEvent,
)
from repro.scenarios.metrics import EpochRecord, ScenarioMetrics, compute_metrics

__all__ = [
    "NodeState",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "run_scenario_batch",
]

ENGINES = ("sync", "async", "fast")


@dataclass
class NodeState:
    """Persistent per-node scenario state (outlives individual acts)."""

    index: int
    node_id: int
    up: bool = True
    epoch: int = 0                      # persisted across crash/recover
    leader: Optional[int] = None        # believed leader ID
    crashed_times: List[float] = field(default_factory=list)
    recovered_times: List[float] = field(default_factory=list)


@dataclass
class ScenarioResult:
    """Everything one scenario execution produced."""

    scenario: Scenario
    engine: str
    n_initial: int
    seed: int
    epochs: List[EpochRecord]
    states: List[NodeState]
    baseline: Any                       # RunRecord of the fault-free election
    metrics: ScenarioMetrics
    notes: List[str]

    @property
    def final_leader_id(self) -> Optional[int]:
        return self.metrics.final_leader_id

    @property
    def final_agreed(self) -> bool:
        return self.metrics.final_agreed


class ScenarioRunner:
    """Drive one scenario on one engine (see module docstring)."""

    def __init__(
        self,
        scenario: Scenario,
        n: int,
        *,
        engine: str = "sync",
        seed: int = 0,
        inner: Optional[str] = None,
        lag: float = 1.0,
        commit_rounds: int = 4,
        commit_delay: float = 4.0,
        poll_interval: float = 0.5,
        restart_rounds: Optional[int] = None,
        restart_delay: Optional[float] = None,
        quorum: bool = False,
        ids: Optional[Sequence[int]] = None,
        max_events: int = 5_000_000,
        recorder: Optional[Any] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if n < max(2, scenario.min_n):
            raise ValueError(
                f"scenario {scenario.name!r} needs n >= {max(2, scenario.min_n)}"
            )
        if lag < 0:
            raise ValueError("detector lag must be >= 0")
        if engine == "fast" and recorder is not None:
            raise ValueError(
                "the fast engine has no per-event recorder hooks — record "
                "scenario traces with --engine sync or async (fast runs "
                "expose aggregate telemetry only)"
            )
        self.scenario = scenario
        self.engine = engine
        self.n = n
        self.seed = seed
        if inner is None:
            inner = {
                "sync": "afek_gafni",
                "async": "async_tradeoff",
                "fast": "improved_tradeoff",
            }[engine]
        self.inner = inner
        self.lag = lag
        self.commit_rounds = commit_rounds
        self.commit_delay = commit_delay
        self.poll_interval = poll_interval
        self.restart_rounds = restart_rounds
        self.restart_delay = restart_delay
        self.quorum = quorum
        self.max_events = max_events
        self.recorder = recorder
        if ids is None:
            ids = list(range(1, n + 1))
        if len(ids) != n or len(set(ids)) != n:
            raise ValueError(f"need {n} distinct initial IDs")
        self._initial_ids = list(ids)

    # ------------------------------------------------------------------ #
    # state helpers

    def _up_states(self) -> List[NodeState]:
        return [st for st in self.states if st.up]

    def _id_to_state(self, node_id: int) -> Optional[NodeState]:
        # IDs are distinct and never reassigned, so the index built in
        # run() (and extended on joins) stays valid for the whole run —
        # a linear scan here made every believed-leader lookup O(n).
        return self._state_by_id.get(node_id)

    def _group_of(self, st: NodeState) -> List[NodeState]:
        """The up members that can currently reach ``st`` (incl. itself).

        Under a partition, a node outside every component is isolated —
        reachable by nobody, including other unlisted nodes.
        """
        up = self._up_states()
        if self._partition is None:
            return up
        comp = self._component_index(st.index)
        if comp is None:
            return [m for m in up if m.index == st.index]
        return [m for m in up if self._component_index(m.index) == comp]

    def _component_index(self, index: int) -> Optional[int]:
        assert self._partition is not None
        for c, comp in enumerate(self._partition.components):
            if index in comp:
                return c
        return None

    def _believed_leaders(self) -> Tuple[int, ...]:
        """Distinct believed-leader IDs whose nodes are actually up."""
        leaders = set()
        for st in self._up_states():
            if st.leader is None:
                continue
            owner = self._id_to_state(st.leader)
            if owner is not None and owner.up:
                leaders.add(st.leader)
        return tuple(sorted(leaders))

    def _is_agreed(self) -> bool:
        """Exactly one up leader, followed by every up node, no split."""
        if self._partition is not None:
            return False
        up = self._up_states()
        if not up:
            return False
        beliefs = {st.leader for st in up}
        if len(beliefs) != 1:
            return False
        leader = next(iter(beliefs))
        if leader is None:
            return False
        owner = self._id_to_state(leader)
        return owner is not None and owner.up

    def _mark(self, t: float) -> None:
        self._timeline.append((t, self._believed_leaders(), self._is_agreed()))

    def _note(self, text: str) -> None:
        self.notes.append(text)

    def _annotate(self, **fields: Any) -> None:
        """Stamp scenario coordinates onto the trace stream, if any."""
        annotate = getattr(self.recorder, "annotate", None)
        if annotate is not None:
            annotate(**fields)

    # ------------------------------------------------------------------ #
    # act execution

    def _act_seed(self, index: Any) -> int:
        return random.Random(f"scenario:{self.scenario.name}:{self.seed}:{index}").getrandbits(32)

    def _fast_trial(
        self,
        m: int,
        member_ids: Sequence[int],
        act_seed: int,
        plan: Optional[FaultPlan] = None,
    ):
        """One fast-engine election act.

        The single dispatch point for every fast-engine run the scenario
        makes — :func:`run_scenario_batch` overrides it per replica to
        collect concurrent acts into one batched engine execution.
        ``plan`` carries the act-local :class:`FaultPlan` (partitions,
        link rules, kill policies, tampering) into the engine's
        vectorized fault runtime; fault-free acts pass ``None``.
        """
        from repro.sweep.api import run
        from repro.sweep.spec import RunSpec

        return run(
            RunSpec(
                algorithm=self.inner,
                n=m,
                engine="fast",
                seeds=(act_seed,),
                ids=tuple(member_ids),
                faults=plan,
                quorum=self.quorum,
            )
        )

    @staticmethod
    def _act_plan_for_fast(plan: FaultPlan) -> Optional[FaultPlan]:
        """The act plan the fast engine receives: ``None`` when inert.

        The detector spec alone has no effect on the bare vectorized
        elections (the fast acts run the inner election directly, not a
        detector-driven re-election wrapper), so an act whose plan
        carries nothing but the detector keeps the plain fast path.
        """
        if (
            plan.links
            or plan.partitions
            or plan.policies
            or plan.adversary is not None
        ):
            return plan
        return None

    def _reelect_factory(self):
        if self.engine == "sync":
            if self.quorum:
                from repro.adversary import QuorumReElectionElection as cls
            else:
                from repro.faults import ReElectionElection as cls

            return lambda: cls(
                inner=self.inner,
                commit_rounds=self.commit_rounds,
                restart_rounds=self.restart_rounds,
            )
        if self.quorum:
            from repro.adversary import AsyncQuorumReElectionElection as acls
        else:
            from repro.faults import AsyncReElectionElection as acls

        return lambda: acls(
            inner=self.inner,
            commit_delay=self.commit_delay,
            poll_interval=self.poll_interval,
            restart_delay=self.restart_delay,
        )

    @staticmethod
    def _sanitize_record(record) -> None:
        """Make ``record.extra`` JSON-safe (exports ride through it)."""
        record.extra.pop("result", None)
        record.extra.pop("outputs", None)
        fm = record.extra.pop("fault_metrics", None)
        if fm is not None:
            record.extra["fault_summary"] = {
                "crashes": fm.crash_count,
                "policy_kills": len(fm.policy_kills),
                "dropped": fm.dropped_messages,
                "duplicated": fm.duplicated_messages,
                "partition_blocked": fm.partition_blocked,
                "tampered": fm.tampered_messages,
            }

    def _act_adversary(self, members: List[NodeState], slanders: Tuple = ()):
        """The act-local Byzantine plan: scenario plan + event slanders.

        Scenario-level adversary indices name *initial* nodes; this
        remaps them onto act-local positions (and drops entries whose
        nodes are not in the act).  ``slanders`` are extra
        :class:`~repro.adversary.SlanderWindow` specs, already in
        act-local time but still in global node indices.
        """
        from dataclasses import replace

        from repro.adversary.plan import AdversaryPlan

        plan = self.scenario.adversary
        if plan is None and not slanders:
            return None
        pos = {st.index: local for local, st in enumerate(members)}
        byzantine: List[int] = []
        tampers: List[Any] = []
        windows: List[Any] = []
        if plan is not None:
            byzantine = [pos[u] for u in plan.byzantine if u in pos]
            for rule in plan.tampers:
                if rule.src is not None and rule.src not in pos:
                    continue
                if rule.dst is not None and rule.dst not in pos:
                    continue
                if rule.src is None and not byzantine:
                    continue  # every byzantine sender left the act
                tampers.append(
                    replace(
                        rule,
                        src=None if rule.src is None else pos[rule.src],
                        dst=None if rule.dst is None else pos[rule.dst],
                    )
                )
            windows.extend(self._remap_slanders(plan.slanders, pos))
        windows.extend(self._remap_slanders(slanders, pos))
        if not tampers and not windows:
            return None
        act_plan = AdversaryPlan(
            byzantine=tuple(byzantine), tampers=tuple(tampers), slanders=tuple(windows)
        )
        try:
            act_plan.validate_for(len(members))
        except ValueError as exc:
            # The membership shrank under the adversary (e.g. crashes left
            # f >= n/2 of the act corrupted): the guarantees are void, so
            # the act runs honestly and the note records why.
            self._note(f"adversary dropped for this act: {exc}")
            return None
        return act_plan

    @staticmethod
    def _remap_slanders(slanders: Tuple, pos: Dict[int, int]) -> List[Any]:
        from dataclasses import replace

        out = []
        for window in slanders:
            if window.accuser not in pos:
                continue  # dead accusers spread no rumors
            victims = tuple(pos[v] for v in window.victims if v in pos)
            if not victims:
                continue
            out.append(
                replace(window, accuser=pos[window.accuser], victims=victims)
            )
        return out

    def _run_act(
        self,
        trigger: str,
        t_event: float,
        t_start: float,
        members: List[NodeState],
        *,
        masks: Tuple[PartitionMask, ...] = (),
        policies: Tuple = (),
        slanders: Tuple = (),
    ) -> EpochRecord:
        members = sorted(members, key=lambda st: st.index)
        m = len(members)
        member_ids = [st.node_id for st in members]
        act_index = len(self.epochs)
        act_seed = self._act_seed(act_index)
        plan = FaultPlan(
            links=self.scenario.link_faults,
            partitions=masks,
            policies=tuple(policies),
            detector=DetectorSpec(kind="perfect", lag=self.lag),
            adversary=self._act_adversary(members, slanders),
        )

        if self.engine == "fast":
            act_plan = self._act_plan_for_fast(plan)
            record = self._fast_trial(m, member_ids, act_seed, plan=act_plan)
            duration = float(record.extra["rounds_executed"])
            crashed_nodes = list(record.extra.get("crashed", []))
            leader_nodes = record.extra.pop("leader_nodes", [])
            fm = record.extra.get("fault_metrics")
            if act_plan is None:
                leader_ids = [record.elected_id] if record.elected_id is not None else []
                surviving = record.elected_id
                outputs = [surviving] * m
                concurrent = 1 if surviving is not None else 0
            else:
                leader_ids = list(record.extra.pop("leader_ids", []))
                surviving = record.extra.get("surviving_leader_id")
                vec = record.extra.get("outputs")
                outputs = list(vec) if vec is not None else [surviving] * m
                # Leaders still alive at act end (the fast engine has no
                # per-event stream for the unique-leader monitor replay).
                concurrent = sum(
                    1 for u in leader_nodes if u not in crashed_nodes
                )
            detection_latencies: List[float] = []
            in_act_crashes = len(crashed_nodes)
            dropped = fm.dropped_messages if fm else 0
            duplicated = fm.duplicated_messages if fm else 0
            blocked = fm.partition_blocked if fm else 0
            tampered = fm.tampered_messages if fm else 0
            aborted = sum(1 for u in crashed_nodes if u not in leader_nodes)
            epochs_minted = max(1, len(leader_ids) + aborted)
            reelection_time = None
        else:
            from repro.analysis.runner import RunRecord
            from repro.common import SimulationLimitExceeded
            from repro.faults import run_failover_trial

            kwargs: Dict[str, Any] = {}
            if self.engine == "async":
                kwargs["wake_times"] = {u: 0.0 for u in range(m)}
                kwargs["max_events"] = self.max_events
            self._annotate(
                act=act_index, trigger=trigger, epoch=self.epoch_counter + 1
            )
            try:
                report = run_failover_trial(
                    self.engine,
                    m,
                    self._reelect_factory(),
                    plan,
                    seed=act_seed,
                    ids=member_ids,
                    recorder=self.recorder,
                    **kwargs,
                )
            except SimulationLimitExceeded as exc:
                # A node wedged without ever learning a leader (the plain
                # wrapper under slander is the canonical case: the victim
                # is excluded from every coord broadcast).  Record the act
                # as stalled — nobody's belief is updated, agreement is
                # broken — instead of aborting the whole scenario.
                self._note(f"{trigger} act at t={t_event:g} stalled: {exc}")
                record = RunRecord(
                    n=m, seed=act_seed, messages=0, time=0.0,
                    unique_leader=False, elected_id=None, leaders=0,
                    decided=0, awake=m, params={},
                    extra={"rounds_executed": 0.0, "stalled": True},
                )
                self.epoch_counter += 1
                epoch = EpochRecord(
                    epoch=self.epoch_counter,
                    trigger=trigger,
                    t_event=t_event,
                    t_start=t_start,
                    duration=0.0,
                    t_end=t_start,
                    members=[st.index for st in members],
                    member_ids=member_ids,
                    leader_ids=[],
                    surviving_leader_id=None,
                    messages=0,
                    record=record,
                    epochs_minted=1,
                    reelection_time=None,
                    detection_latencies=[],
                    concurrent_leaders=0,
                )
                self.epochs.append(epoch)
                self.act_floor = t_start
                self._mark(t_start)
                return epoch
            record = report.record
            result = record.extra["result"]
            if self.engine == "sync":
                duration = float(record.extra["rounds_executed"])
            else:
                duration = float(record.time)
            leader_ids = list(result.leader_ids)
            surviving = result.surviving_leader_id
            outputs = [
                result.outputs[u]
                if result.decisions[u] is not None and result.outputs[u] is not None
                else (result.ids[u] if u in result.leaders else None)
                for u in range(m)
            ]
            fm = result.fault_metrics
            detection_latencies = list(report.detection_latencies)
            in_act_crashes = len(result.crashed)
            dropped = fm.dropped_messages if fm else 0
            duplicated = fm.duplicated_messages if fm else 0
            blocked = fm.partition_blocked if fm else 0
            tampered = fm.tampered_messages if fm else 0
            # Leaders simultaneously alive when the act ended: > 1 means
            # the act really split the brain (per-component leaders).
            # Routed through the unique_leader_per_epoch monitor over the
            # act's event stream, so the scenario metric and the monitor
            # verdict are one computation and can never disagree.
            from repro.monitor import MonitorSuite, UniqueLeaderMonitor

            unique_monitor = UniqueLeaderMonitor()
            MonitorSuite(
                monitors=[unique_monitor], n=m, ids=list(member_ids)
            ).replay(report.events).finish(result)
            concurrent = unique_monitor.concurrent_leaders
            # Every committed leader is an epoch, and so is every
            # frontrunner a kill policy aborted before its commit.
            aborted = sum(1 for u in result.crashed if u not in result.leaders)
            epochs_minted = max(1, len(leader_ids) + aborted)
            reelection_time = report.reelection_time
        self._sanitize_record(record)

        # Persist the outcome: every participant moves to the new epoch
        # and adopts the leader its own engine run committed to (per
        # component under a partition mask).
        first_epoch = self.epoch_counter + 1
        self.epoch_counter += epochs_minted
        for local, st in enumerate(members):
            crashed_in_act = local in record.extra.get("crashed", [])
            if crashed_in_act:
                st.up = False
                st.crashed_times.append(t_start + duration)
                self.counts["crashes"] += 1
                continue
            st.epoch = self.epoch_counter
            belief = outputs[local] if local < len(outputs) else None
            if belief is not None:
                st.leader = belief
            elif self.quorum:
                # Under quorum gating a None output is an abstention —
                # the node is leaderless, it did not silently adopt the
                # (unreachable) majority leader.
                st.leader = None
            else:
                st.leader = surviving
        t_end = t_start + duration
        epoch = EpochRecord(
            epoch=first_epoch,
            trigger=trigger,
            t_event=t_event,
            t_start=t_start,
            duration=duration,
            t_end=t_end,
            members=[st.index for st in members],
            member_ids=member_ids,
            leader_ids=leader_ids,
            surviving_leader_id=surviving,
            messages=record.messages,
            record=record,
            epochs_minted=epochs_minted,
            reelection_time=reelection_time,
            detection_latencies=detection_latencies,
            in_act_crashes=in_act_crashes,
            dropped_messages=dropped,
            duplicated_messages=duplicated,
            partition_blocked=blocked,
            tampered_messages=tampered,
            concurrent_leaders=concurrent,
        )
        self.epochs.append(epoch)
        self.act_floor = t_end
        self._mark(t_end)
        return epoch

    # ------------------------------------------------------------------ #
    # event handling

    def _resolve_crash_target(self, node) -> Optional[NodeState]:
        if node == LEADER:
            leaders = self._believed_leaders()
            if len(leaders) != 1:
                self._note(f"crash(leader) skipped: leaders={list(leaders)}")
                return None
            return self._id_to_state(leaders[0])
        if not 0 <= node < len(self.states):
            self._note(f"crash({node}) skipped: no such node")
            return None
        return self.states[node]

    def _resolve_recover_target(self, node) -> Optional[NodeState]:
        if node == LAST_CRASHED:
            down = [st for st in self.states if not st.up and st.crashed_times]
            if not down:
                self._note("recover(last_crashed) skipped: nobody is down")
                return None
            return max(down, key=lambda st: (st.crashed_times[-1], st.index))
        if not 0 <= node < len(self.states):
            self._note(f"recover({node}) skipped: no such node")
            return None
        return self.states[node]

    def _on_crash(self, ev: CrashEvent) -> None:
        st = self._resolve_crash_target(ev.node)
        if st is None or not st.up:
            if st is not None:
                self._note(f"crash({st.index}) skipped: already down")
            return
        if len(self._up_states()) <= 1:
            self._note(f"crash({st.index}) suppressed: last node standing")
            return
        was_leader = st.node_id in self._believed_leaders()
        st.up = False
        st.crashed_times.append(ev.at)
        self.counts["crashes"] += 1
        self._mark(ev.at)
        needs_election = was_leader or (
            self.scenario.membership_policy == "membership_change"
        )
        if not needs_election:
            return
        group = self._group_of(st) if self._partition is not None else self._up_states()
        if not group:
            self._note(f"crash({st.index}): empty survivor group, no election")
            return
        trigger = "failover" if was_leader else "membership"
        t_start = max(ev.at + self.lag, self.act_floor)
        masks = self._active_masks(group)
        self._run_act(trigger, ev.at, t_start, group, masks=masks)

    def _on_recover(self, ev: RecoverEvent) -> None:
        st = self._resolve_recover_target(ev.node)
        if st is None or st.up:
            if st is not None:
                self._note(f"recover({st.index}) skipped: already up")
            return
        st.up = True
        st.recovered_times.append(ev.at)
        self.counts["recoveries"] += 1
        # Elect-lower-epoch: the persisted epoch can never exceed the
        # group's — the node missed every transition while it was down.
        assert st.epoch <= self.epoch_counter, (
            f"recovered node {st.index} carries epoch {st.epoch} > "
            f"current {self.epoch_counter}"
        )
        stale_epoch = st.epoch
        group = self._group_of(st)
        peers = [m for m in group if m.index != st.index]
        leaders = sorted(
            {m.leader for m in peers if m.leader is not None}
        )
        st.leader = leaders[0] if len(leaders) == 1 else None
        st.epoch = max(m.epoch for m in group) if peers else st.epoch
        self._note(
            f"recover({st.index}): rejoined with persisted epoch {stale_epoch}, "
            f"adopted epoch {st.epoch} leader {st.leader}"
        )
        self._mark(ev.at)
        if self.scenario.membership_policy == "membership_change":
            t_start = max(ev.at, self.act_floor)
            self._run_act("membership", ev.at, t_start, group,
                          masks=self._active_masks(group))

    def _on_join(self, ev: JoinEvent) -> None:
        node_id = ev.node_id
        taken = {st.node_id for st in self.states}
        if node_id is None:
            node_id = max(taken) + 1
        elif node_id in taken:
            raise ValueError(f"join at t={ev.at}: node ID {node_id} already in use")
        st = NodeState(index=len(self.states), node_id=node_id)
        leaders = self._believed_leaders()
        st.leader = leaders[0] if len(leaders) == 1 else None
        st.epoch = self.epoch_counter
        self.states.append(st)
        self._state_by_id[st.node_id] = st
        self.counts["joins"] += 1
        self._mark(ev.at)
        if self.scenario.membership_policy == "membership_change":
            t_start = max(ev.at, self.act_floor)
            group = self._up_states() if self._partition is None else self._group_of(st)
            self._run_act("membership", ev.at, t_start, group,
                          masks=self._active_masks(group))

    def _active_masks(self, members: List[NodeState]) -> Tuple[PartitionMask, ...]:
        """The act-local partition mask, if a partition is active."""
        if self._partition is None:
            return ()
        local_components = []
        member_indexes = [st.index for st in members]
        for comp in self._partition.components:
            comp_set = set(comp)
            local = tuple(
                i for i, g in enumerate(member_indexes) if g in comp_set
            )
            if local:
                local_components.append(local)
        if len(local_components) < 2:
            return ()  # the act runs entirely inside one component
        return (PartitionMask(components=tuple(local_components), start=0.0, end=None),)

    def _on_partition(self, ev: PartitionEvent) -> None:
        if self._partition is not None:
            self._note(f"partition at t={ev.start} skipped: one is already active")
            return
        for comp in ev.components:
            for u in comp:
                if not 0 <= u < len(self.states):
                    raise ValueError(f"partition component member {u} does not exist")
        self._partition = ev
        self._mark(ev.start)  # the split itself breaks agreement
        members = self._up_states()
        t_start = max(ev.start, self.act_floor)
        self._run_act(
            "partition", ev.start, t_start, members, masks=self._active_masks(members)
        )

    def _on_heal(self, at: float) -> None:
        self._partition = None
        self._mark(at)
        members = self._up_states()
        t_start = max(at + self.lag, self.act_floor)
        self._run_act("heal", at, t_start, members)

    def _on_elect(self, ev: ElectEvent) -> None:
        members = self._up_states()
        t_start = max(ev.at, self.act_floor)
        self._run_act(
            "elect", ev.at, t_start, members, masks=self._active_masks(members)
        )

    def _on_slander(self, ev: SlanderEvent) -> None:
        """Byzantine rumor: run a re-election act under a slander window.

        The victim stays *up* — only the detectors lie about it.  The
        act elects among the honest majority; with ``quorum`` enabled
        the victim rejoins as a follower (coord catch-up), without it
        the act legitimately splits the brain (victim keeps its old
        belief, possibly its old reign).
        """
        from repro.adversary.plan import SlanderWindow

        if not 0 <= ev.accuser < len(self.states):
            self._note(f"slander by {ev.accuser} skipped: no such node")
            return
        accuser = self.states[ev.accuser]
        if not accuser.up:
            self._note(f"slander by {accuser.index} skipped: accuser is down")
            return
        if ev.victim == LEADER:
            leaders = self._believed_leaders()
            if len(leaders) != 1:
                self._note(f"slander(leader) skipped: leaders={list(leaders)}")
                return
            victim = self._id_to_state(leaders[0])
        elif not 0 <= ev.victim < len(self.states):
            self._note(f"slander({ev.victim}) skipped: no such node")
            return
        else:
            victim = self.states[ev.victim]
        if victim is None or not victim.up:
            self._note("slander skipped: victim is down (no rumor needed)")
            return
        if victim.index == accuser.index:
            self._note(f"slander({victim.index}) skipped: self-slander")
            return
        self._mark(ev.at)  # the rumor breaks agreement until re-election
        group = self._group_of(accuser) if self._partition is not None else self._up_states()
        if victim.index not in [st.index for st in group]:
            self._note("slander skipped: victim unreachable from accuser")
            return
        window = SlanderWindow(
            accuser=accuser.index, victims=(victim.index,), start=0.0,
            end=ev.duration,
        )
        t_start = max(ev.at + self.lag, self.act_floor)
        self._run_act(
            "slander", ev.at, t_start, group,
            masks=self._active_masks(group), slanders=(window,),
        )

    # ------------------------------------------------------------------ #
    # main loop

    def run(self) -> ScenarioResult:
        self.states = [
            NodeState(index=i, node_id=self._initial_ids[i]) for i in range(self.n)
        ]
        self._state_by_id = {st.node_id: st for st in self.states}
        self.epochs: List[EpochRecord] = []
        self.notes: List[str] = []
        self.counts = {"crashes": 0, "recoveries": 0, "joins": 0}
        self.epoch_counter = 0
        self.act_floor = 0.0
        self._partition: Optional[PartitionEvent] = None
        self._timeline: List[Tuple[float, Tuple[int, ...], bool]] = []
        self._mark(0.0)

        # The initial election (with the scenario's in-run churn policy).
        policies = (self.scenario.kill_policy,) if self.scenario.kill_policy else ()
        self._run_act("initial", 0.0, 0.0, self._up_states(), policies=policies)

        # Fire events in order; partition heals interleave at their end
        # times.  Windows are half-open ([start, end)), so a heal at t
        # processes *before* any event at t — a new partition may start
        # exactly where the previous one ended.
        agenda: List[Tuple[float, int, int, str, Any]] = []
        for i, ev in enumerate(self.scenario.sorted_events()):
            agenda.append((ev.at, 1, i, "event", ev))
            if isinstance(ev, PartitionEvent):
                agenda.append((ev.end, 0, i, "heal", ev))
        agenda.sort(key=lambda item: (item[0], item[1], item[2]))
        for _at, _prio, _seq, kind, ev in agenda:
            if kind == "heal":
                if self._partition is ev:
                    self._on_heal(ev.end)
                continue
            if isinstance(ev, CrashEvent):
                self._on_crash(ev)
            elif isinstance(ev, RecoverEvent):
                self._on_recover(ev)
            elif isinstance(ev, JoinEvent):
                self._on_join(ev)
            elif isinstance(ev, PartitionEvent):
                self._on_partition(ev)
            elif isinstance(ev, ElectEvent):
                self._on_elect(ev)
            elif isinstance(ev, SlanderEvent):
                self._on_slander(ev)

        baseline = self._run_baseline()
        leaders = self._believed_leaders()
        final_leader = leaders[0] if len(leaders) == 1 else None
        metrics = compute_metrics(
            self.epochs,
            self._timeline,
            baseline,
            self.counts,
            final_leader_id=final_leader,
            final_agreed=self._is_agreed(),
        )
        return ScenarioResult(
            scenario=self.scenario,
            engine=self.engine,
            n_initial=self.n,
            seed=self.seed,
            epochs=self.epochs,
            states=self.states,
            baseline=baseline,
            metrics=metrics,
            notes=self.notes,
        )

    def _run_baseline(self):
        """The fault-free single election the overhead ratios divide by."""
        seed = self._act_seed("baseline")
        if self.engine == "fast":
            record = self._fast_trial(self.n, self._initial_ids, seed)
        else:
            from repro.faults import run_failover_trial

            plan = FaultPlan(detector=DetectorSpec(kind="perfect", lag=self.lag))
            kwargs: Dict[str, Any] = {}
            if self.engine == "async":
                kwargs["wake_times"] = {u: 0.0 for u in range(self.n)}
                kwargs["max_events"] = self.max_events
            self._annotate(act=None, epoch=None, trigger="baseline")
            report = run_failover_trial(
                self.engine,
                self.n,
                self._reelect_factory(),
                plan,
                seed=seed,
                ids=self._initial_ids,
                recorder=self.recorder,
                **kwargs,
            )
            record = report.record
            self._annotate(trigger=None)
        self._sanitize_record(record)
        return record


def run_scenario(
    scenario: Scenario, n: int, *, engine: str = "sync", seed: int = 0, **config: Any
) -> ScenarioResult:
    """One-call convenience wrapper around :class:`ScenarioRunner`."""
    return ScenarioRunner(scenario, n, engine=engine, seed=seed, **config).run()


def run_scenario_batch(
    scenario: Scenario,
    n: int,
    seeds: Sequence[int],
    *,
    engine: str = "fast",
    **config: Any,
) -> List[ScenarioResult]:
    """Run one timeline under many seeds, batching fast-engine acts.

    One replica :class:`ScenarioRunner` per seed executes in lockstep;
    whenever several replicas are waiting on an election act with the
    same membership and the same act fault plan (the common case —
    event timelines are mostly seed-independent), their acts run as
    **one** batched :class:`~repro.fastsync.FastSyncNetwork` execution
    with one lane per replica.  Results are always exactly the
    sequential ones: batched lanes are bit-identical to single runs in
    exact mode, so acts are only grouped while the membership fits the
    engine's exact limit (``n ≤ 2048``) and the group carries no fault
    plan; larger acts — where scale mode's batched sampler draws a
    different stream — faulted act groups (the vectorized fault
    runtime's RNG replay is single-lane, so the executor serializes
    them seed by seed), and replicas whose memberships diverged
    (e.g. after ``crash(LEADER)`` under a randomized inner election)
    fall back to single-lane runs.

    Only the ``fast`` engine has a batched path; other engines (or a
    single seed) run sequentially.
    """
    if engine != "fast" or len(seeds) <= 1:
        return [
            ScenarioRunner(scenario, n, engine=engine, seed=s, **config).run()
            for s in seeds
        ]

    import threading

    from repro.fastsync.engine import DEFAULT_EXACT_LIMIT
    from repro.sweep.api import execute_spec, run
    from repro.sweep.spec import RunSpec

    runners = [
        ScenarioRunner(scenario, n, engine=engine, seed=s, **config) for s in seeds
    ]
    total = len(runners)
    lock = threading.Condition()
    pending: Dict[int, Tuple[int, Tuple[int, ...], int, Optional[FaultPlan]]] = {}
    replies: Dict[int, Any] = {}
    done: List[int] = []
    results: List[Optional[ScenarioResult]] = [None] * total
    errors: List[BaseException] = []

    def dispatch_for(idx: int):
        def dispatch(
            m: int,
            member_ids: Sequence[int],
            act_seed: int,
            plan: Optional[FaultPlan] = None,
        ):
            with lock:
                pending[idx] = (m, tuple(member_ids), act_seed, plan)
                lock.notify_all()
                while idx not in replies and not errors:
                    lock.wait()
                if errors:
                    raise RuntimeError("scenario batch aborted")
                return replies.pop(idx)

        return dispatch

    def worker(idx: int) -> None:
        try:
            runners[idx]._fast_trial = dispatch_for(idx)
            results[idx] = runners[idx].run()
        except BaseException as exc:  # propagate to the coordinator
            errors.append(exc)
        finally:
            with lock:
                done.append(idx)
                lock.notify_all()

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True) for i in range(total)
    ]
    for t in threads:
        t.start()
    # Acts are grouped into batched runs only below the engine's exact
    # limit, where lanes replay single runs bit for bit; scale-mode
    # batched sampling draws a different stream, so bigger acts run
    # single-lane to keep the results == sequential-sweep contract.
    exact_limit = DEFAULT_EXACT_LIMIT
    while True:
        with lock:
            while len(pending) + len(done) < total and not errors:
                lock.wait()
            if errors:
                lock.notify_all()
                break
            if not pending:  # every replica finished
                break
            # Group the waiting acts by membership + act-plan signature
            # (plans are frozen dataclasses, so they hash and compare by
            # value); each group becomes one batched engine run (lanes in
            # replica order).  Faulted groups still go through the
            # batched spec: the executor serializes them seed-by-seed —
            # the fault runtime is single-lane — with identical records.
            groups: Dict[
                Tuple[int, Tuple[int, ...], Optional[FaultPlan]], List[int]
            ] = {}
            for idx in sorted(pending):
                m, ids, _, act_plan = pending[idx]
                groups.setdefault((m, ids, act_plan), []).append(idx)
            inner = runners[0].inner
            quorum = runners[0].quorum
            try:
                for (m, ids, act_plan), members in groups.items():
                    if len(members) == 1 or m > exact_limit:
                        for idx in members:
                            replies[idx] = run(
                                RunSpec(
                                    algorithm=inner,
                                    n=m,
                                    engine="fast",
                                    seeds=(pending[idx][2],),
                                    ids=ids,
                                    faults=act_plan,
                                    quorum=quorum,
                                )
                            )
                    else:
                        act_seeds = tuple(pending[idx][2] for idx in members)
                        records = execute_spec(
                            RunSpec(
                                algorithm=inner,
                                n=m,
                                engine="fast",
                                seeds=act_seeds,
                                batch=len(act_seeds),
                                ids=ids,
                                faults=act_plan,
                                quorum=quorum,
                            )
                        )
                        for idx, record in zip(members, records):
                            replies[idx] = record
            except BaseException as exc:
                # Unblock every waiting replica (their dispatch raises
                # and the worker threads exit) before re-raising below.
                errors.append(exc)
                lock.notify_all()
                break
            pending.clear()
            lock.notify_all()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return [r for r in results if r is not None]
