"""Sharded multi-process sweep scheduling behind the RunSpec API.

One declarative :class:`RunSpec` describes an election run on any
engine; :func:`run` executes one, :func:`sweep` shards a grid of them
across worker processes with bit-identical results for every worker
count.  See DESIGN.md ("Sweep scheduler & backend seam") for the
scheduling model and the equivalence contract, and
:mod:`repro.fastsync.xp` for the array-backend seam underneath the fast
engine's kernels.
"""

from repro.sweep.api import execute_spec, run, sweep
from repro.sweep.scheduler import SweepCell, run_cells
from repro.sweep.spec import RunSpec, canonical_record

__all__ = [
    "RunSpec",
    "run",
    "sweep",
    "execute_spec",
    "canonical_record",
    "SweepCell",
    "run_cells",
]
